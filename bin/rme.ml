let () = Stdlib.exit (Rme_cli.Cli.eval ())
