type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let num_int i = Num (float_of_int i)

(* ---------- printing ---------- *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else
    (* Shortest representation that round-trips a double. *)
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let to_string v =
  let b = Buffer.create 256 in
  let pad n = Buffer.add_string b (String.make (2 * n) ' ') in
  let rec go depth = function
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (if x then "true" else "false")
    | Num f -> Buffer.add_string b (number_to_string f)
    | Str s -> escape_string b s
    | List [] -> Buffer.add_string b "[]"
    | List items ->
        Buffer.add_string b "[\n";
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_string b ",\n";
            pad (depth + 1);
            go (depth + 1) item)
          items;
        Buffer.add_char b '\n';
        pad depth;
        Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
        Buffer.add_string b "{\n";
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_string b ",\n";
            pad (depth + 1);
            escape_string b k;
            Buffer.add_string b ": ";
            go (depth + 1) item)
          fields;
        Buffer.add_char b '\n';
        pad depth;
        Buffer.add_char b '}'
  in
  go 0 v;
  Buffer.add_char b '\n';
  Buffer.contents b

(* ---------- parsing ---------- *)

exception Parse of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    if
      !pos + String.length word <= n
      && String.sub s !pos (String.length word) = word
    then (
      pos := !pos + String.length word;
      v)
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents b
      | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' | '\\' | '/' ->
              Buffer.add_char b e;
              go ()
          | 'n' ->
              Buffer.add_char b '\n';
              go ()
          | 'r' ->
              Buffer.add_char b '\r';
              go ()
          | 't' ->
              Buffer.add_char b '\t';
              go ()
          | 'b' ->
              Buffer.add_char b '\b';
              go ()
          | 'f' ->
              Buffer.add_char b '\012';
              go ()
          | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              (* Encode the code point as UTF-8; surrogate pairs are not
                 recombined — bench files never emit them. *)
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else if code < 0x800 then (
                Buffer.add_char b (Char.chr (0xc0 lor (code lsr 6)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f))))
              else (
                Buffer.add_char b (Char.chr (0xe0 lor (code lsr 12)));
                Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f))));
              go ()
          | _ -> fail "bad escape")
      | c ->
          Buffer.add_char b c;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some f -> Num f
    | None -> fail (Printf.sprintf "bad number %S" text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (
          advance ();
          Obj [])
        else
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          fields []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (
          advance ();
          List [])
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse (at, msg) ->
      Error (Printf.sprintf "JSON parse error at offset %d: %s" at msg)

(* ---------- accessors ---------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
let obj_bindings = function Obj fields -> fields | _ -> []
