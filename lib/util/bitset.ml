(* Flat mutable bitset: one bit per member, 32 members per word so the
   index arithmetic is shifts and masks (OCaml ints are 63-bit; using a
   32-bit stride keeps every word well inside the untagged range). *)

let word_bits = 32
let word_shift = 5
let word_mask = word_bits - 1

type t = { mutable words : int array }

let words_for capacity = (max capacity 1 + word_mask) lsr word_shift

let create ~capacity =
  if capacity < 0 then invalid_arg "Bitset.create: negative capacity";
  { words = Array.make (words_for capacity) 0 }

let capacity t = Array.length t.words * word_bits

let mem t i =
  let w = i lsr word_shift in
  w < Array.length t.words && t.words.(w) land (1 lsl (i land word_mask)) <> 0

let grow t w =
  let n = Array.length t.words in
  let n' = max (w + 1) (2 * n) in
  let words = Array.make n' 0 in
  Array.blit t.words 0 words 0 n;
  t.words <- words

let add t i =
  if i < 0 then invalid_arg "Bitset.add: negative member";
  let w = i lsr word_shift in
  if w >= Array.length t.words then grow t w;
  t.words.(w) <- t.words.(w) lor (1 lsl (i land word_mask))

let remove t i =
  let w = i lsr word_shift in
  if w < Array.length t.words then
    t.words.(w) <- t.words.(w) land lnot (1 lsl (i land word_mask))

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let is_empty t =
  let rec go i = i >= Array.length t.words || (t.words.(i) = 0 && go (i + 1)) in
  go 0

let cardinal t =
  let c = ref 0 in
  Array.iter (fun w -> c := !c + Bitword.popcount w) t.words;
  !c

let iter f t =
  let words = t.words in
  for w = 0 to Array.length words - 1 do
    let bits = words.(w) in
    if bits <> 0 then
      let base = w lsl word_shift in
      for b = 0 to word_mask do
        if bits land (1 lsl b) <> 0 then f (base + b)
      done
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let equal a b =
  let la = Array.length a.words and lb = Array.length b.words in
  let rec go i =
    if i >= la && i >= lb then true
    else
      let wa = if i < la then a.words.(i) else 0
      and wb = if i < lb then b.words.(i) else 0 in
      wa = wb && go (i + 1)
  in
  go 0

let copy t = { words = Array.copy t.words }

let copy_into ~src ~dst =
  let ls = Array.length src.words and ld = Array.length dst.words in
  if ld < ls then dst.words <- Array.copy src.words
  else begin
    Array.blit src.words 0 dst.words 0 ls;
    Array.fill dst.words ls (ld - ls) 0
  end

let to_intset t = fold Intset.add t Intset.empty
let pp ppf t = Intset.pp ppf (to_intset t)
