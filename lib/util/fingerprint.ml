let of_strings parts =
  let buf = Buffer.create 256 in
  List.iter
    (fun s ->
      Buffer.add_string buf (string_of_int (String.length s));
      Buffer.add_char buf ':';
      Buffer.add_string buf s)
    parts;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let short s = if String.length s <= 12 then s else String.sub s 0 12
