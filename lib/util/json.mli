(** Minimal JSON values for the bench perf harness.

    Just enough of RFC 8259 to write and re-read `BENCH_<n>.json`
    files without an external dependency: objects, arrays, strings
    with the standard escapes, floats printed so they round-trip, and
    the three literals. Not a general-purpose parser — inputs it
    rejects are reported with a character offset. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val num_int : int -> t
(** Integer-valued number (printed without an exponent or fraction). *)

val to_string : t -> string
(** Render with two-space indentation and a trailing newline. *)

val of_string : string -> (t, string) result

val member : string -> t -> t option
(** First binding of the key in an [Obj]; [None] on other variants. *)

val to_float : t -> float option
val to_str : t -> string option
val obj_bindings : t -> (string * t) list
(** Bindings of an [Obj], [] on other variants. *)
