(** Stable content fingerprints for cache invalidation.

    The persistent result store ({!Rme_store.Store}) versions every
    shard it writes by a fingerprint of the code's semantics-bearing
    identity; on open, shards whose fingerprint differs from the
    running binary's are skipped rather than silently served. This
    module is the hashing primitive: a digest over an ordered list of
    strings, unambiguous under concatenation (each part is
    length-prefixed before hashing). *)

val of_strings : string list -> string
(** [of_strings parts] is a hex digest of the parts in order. Two
    lists differ in the digest whenever they differ as lists — parts
    cannot bleed into each other. *)

val short : string -> string
(** The first 12 hex characters — enough to tell stores apart in file
    names and log lines. Identity on shorter strings. *)
