(** Fault-injection hooks for resilience tests.

    Production code paths (store flush, cell compute, worker serve)
    carry named injection sites that are inert unless armed through
    the [RME_FAULT] environment variable — a comma-separated list of
    [name] or [name:int] tokens, e.g.
    [RME_FAULT="crash-after-flush:3,slow-cell:20"].

    The integer is interpreted per site:
    - for {!fire} sites it is a one-based trigger count — the site
      fires exactly on its [n]-th call, never again;
    - for {!armed}/{!param} sites it is a free parameter (e.g. a delay
      in milliseconds), left untouched by queries.

    All queries are thread-safe. The environment is read once,
    lazily; {!set_spec} replaces the active spec from in-process
    tests without touching the environment. *)

val armed : string -> bool
(** Whether the site appears in the active spec. Never consumes a
    trigger count. *)

val fire : string -> bool
(** [fire name] is [true] when the fault should strike at this call:
    on every call for a bare [name] spec, exactly on the [n]-th call
    for [name:n]. [false] for sites not in the spec. *)

val param : string -> int option
(** The site's integer argument, if armed with one. *)

val set_spec : string option -> unit
(** Replace the active spec ([None] disarms everything) — for tests
    that inject faults into their own process. Subsequent queries use
    it instead of [RME_FAULT]. *)
