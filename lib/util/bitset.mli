(** Mutable fixed-width bitsets over small non-negative ints.

    The hot-path complement to {!Intset}: where [Intset] is a persistent
    functional set used for schedule bookkeeping, [Bitset] is a flat
    [int array] of bit words used where allocation per operation is
    unacceptable — the RMR cache's page-presence tracking, notably.
    Membership, insertion and removal are O(1); iteration is ascending,
    matching [Intset]'s ordering so the two agree wherever both appear. *)

type t

val create : capacity:int -> t
(** [create ~capacity] is the empty set able to hold members in
    [0 .. capacity - 1]. [add] grows the backing store on demand, so
    [capacity] is a sizing hint, not a hard bound. *)

val capacity : t -> int
(** Current backing capacity (always a multiple of the word width). *)

val mem : t -> int -> bool
(** O(1). Members beyond the current capacity are absent, not an error. *)

val add : t -> int -> unit
(** O(1) amortised; grows the backing store if [i >= capacity]. *)

val remove : t -> int -> unit
(** O(1); removing an absent member is a no-op. *)

val clear : t -> unit
(** Empty the set in place, keeping the backing store. *)

val is_empty : t -> bool
val cardinal : t -> int

val iter : (int -> unit) -> t -> unit
(** Visits members in ascending order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** Folds members in ascending order. *)

val equal : t -> t -> bool
(** Extensional equality; capacities need not match. *)

val copy : t -> t

val copy_into : src:t -> dst:t -> unit
(** Make [dst] extensionally equal to [src], reusing [dst]'s backing
    store when it is large enough. *)

val to_intset : t -> Intset.t
val pp : Format.formatter -> t -> unit
