(* CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) over native
   ints. OCaml ints are at least 63 bits on every platform we target,
   so the 32-bit register needs no boxing; all published values are
   masked to 32 bits. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc s pos len =
  let t = Lazy.force table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c := t.((!c lxor Char.code (String.unsafe_get s i)) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF land 0xFFFFFFFF

let string s = update 0 s 0 (String.length s)

let sub s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.sub";
  update 0 s pos len

let to_hex c = Printf.sprintf "%08x" (c land 0xFFFFFFFF)
let hex_of_string s = to_hex (string s)
