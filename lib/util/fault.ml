(* Fault-injection hooks, driven by the RME_FAULT environment variable
   (or [set_spec] from in-process tests). The spec is a comma list of
   site names, each with an optional integer argument:

     RME_FAULT="crash-after-flush:3,slow-cell:20"

   Sites are just names agreed between the injection point and the
   test; this module only parses the spec and answers queries. The
   integer is interpreted per site — a one-based trigger count for
   [fire] sites, a parameter (e.g. milliseconds) for [param] sites. *)

type spec = { name : string; mutable count : int option }

let guard = Mutex.create ()
let specs : spec list ref = ref []
let loaded = ref false

let parse s =
  String.split_on_char ',' s
  |> List.filter_map (fun tok ->
         let tok = String.trim tok in
         if tok = "" then None
         else
           match String.index_opt tok ':' with
           | None -> Some { name = tok; count = None }
           | Some i ->
               let name = String.sub tok 0 i in
               let arg = String.sub tok (i + 1) (String.length tok - i - 1) in
               if name = "" then None
               else Some { name; count = int_of_string_opt arg })

(* The env is read once, lazily, so a spec set before the first query
   wins and repeated queries cost one list scan, no syscalls. *)
let ensure_loaded () =
  if not !loaded then begin
    (specs :=
       match Sys.getenv_opt "RME_FAULT" with
       | None | Some "" -> []
       | Some s -> parse s);
    loaded := true
  end

let set_spec s =
  Mutex.lock guard;
  (specs := match s with None -> [] | Some s -> parse s);
  loaded := true;
  Mutex.unlock guard

let find name =
  ensure_loaded ();
  List.find_opt (fun sp -> sp.name = name) !specs

let armed name =
  Mutex.lock guard;
  let r = find name <> None in
  Mutex.unlock guard;
  r

let param name =
  Mutex.lock guard;
  let r = match find name with Some sp -> sp.count | None -> None in
  Mutex.unlock guard;
  r

let fire name =
  Mutex.lock guard;
  let r =
    match find name with
    | None -> false
    | Some sp -> (
        match sp.count with
        | None -> true
        | Some n when n <= 0 -> false
        | Some n ->
            sp.count <- Some (n - 1);
            n = 1)
  in
  Mutex.unlock guard;
  r
