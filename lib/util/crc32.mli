(** CRC-32 (IEEE 802.3 / zlib variant: reflected, polynomial
    [0xEDB88320], initial value and final xor [0xFFFFFFFF]).

    Used by the result store to checksum each record line, so that a
    torn or bit-flipped shard line is detected per line instead of
    condemning the whole file. The checksum is an integrity check
    against accidental corruption, not an authentication mechanism. *)

val string : string -> int
(** CRC-32 of a whole string; the standard test vector is
    [string "123456789" = 0xcbf43926]. *)

val sub : string -> pos:int -> len:int -> int
(** CRC-32 of a substring. Raises [Invalid_argument] on bad bounds. *)

val update : int -> string -> int -> int -> int
(** [update crc s pos len] extends [crc] (a previous [string]/[update]
    result; [0] for an empty prefix) over [s.[pos .. pos+len-1]]. *)

val to_hex : int -> string
(** Canonical rendering: exactly 8 lowercase hex digits. *)

val hex_of_string : string -> string
(** [to_hex (string s)]. *)
