(** A small fixed-size domain pool with shared-counter work distribution.

    [map_array] fans independent tasks out over OCaml 5 domains and
    returns results in index order, so the output is identical to a
    sequential run no matter how the domains interleave. The calling
    domain participates in the work (the pool only ever adds [jobs - 1]
    helper domains), which also guarantees progress even when every
    helper is busy serving another map.

    Tasks must be independent: they may not assume any ordering among
    themselves, and any shared state they touch must be domain-safe.
    The experiment engine satisfies this by giving every trial cell its
    own memory, RNG and RMR accounting. *)

type t

val create : jobs:int -> t
(** [create ~jobs] returns a pool of total parallelism [jobs] (the
    caller plus [jobs - 1] spawned domains). [jobs <= 0] selects
    [Domain.recommended_domain_count ()]. [jobs = 1] spawns nothing and
    makes every [map_array] run sequentially in the caller. Worker
    domains are joined by {!shutdown}, which is also registered with
    [at_exit]. *)

val jobs : t -> int
(** Total parallelism, including the calling domain. *)

val auto_chunk : jobs:int -> int -> int
(** [auto_chunk ~jobs n] is the chunk size {!map_array} picks for [n]
    tasks when none is given: about four chunks per worker, capped at
    64, floored at 1. Exposed so other schedulers over the same cells
    (the multi-process coordinator) size their batches identically. *)

val map_array : ?chunk:int -> t -> int -> (int -> 'a) -> 'a array
(** [map_array t n f] computes [[| f 0; ...; f (n-1) |]]. Contiguous
    index chunks are handed out through a shared atomic counter, so
    load balances dynamically; results land at their own index, keeping
    the output order canonical regardless of chunking or interleaving.

    [chunk] is the number of indices claimed per fetch. When omitted
    (or [<= 0]) it is picked automatically from the task count: about
    four chunks per worker, capped at 64 — so batches of microsecond
    tasks (trial cells at n <= 8) stop paying one atomic fetch each,
    while small batches of coarse tasks degrade to chunk 1 and keep
    full dynamic balance. If any [f i] raises, one of the exceptions
    is re-raised in the caller after all started tasks finish. *)

val map_list : ?chunk:int -> t -> ('a -> 'b) -> 'a list -> 'b list
(** [map_list t f xs] is {!map_array} over a list, preserving order. *)

val shutdown : t -> unit
(** Drain outstanding work, stop and join the helper domains.
    Idempotent; the pool must not be used afterwards. *)
