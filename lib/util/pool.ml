type job = unit -> unit

type t = {
  jobs : int;
  queue : job Queue.t;
  lock : Mutex.t;
  work_ready : Condition.t;
  mutable workers : unit Domain.t array;
  mutable closed : bool;
}

let worker t () =
  let rec next () =
    Mutex.lock t.lock;
    let rec wait () =
      if Queue.is_empty t.queue && not t.closed then begin
        Condition.wait t.work_ready t.lock;
        wait ()
      end
    in
    wait ();
    match Queue.take_opt t.queue with
    | Some job ->
        Mutex.unlock t.lock;
        job ();
        next ()
    | None ->
        (* Closed and drained. *)
        Mutex.unlock t.lock
  in
  next ()

let shutdown t =
  Mutex.lock t.lock;
  let was_closed = t.closed in
  t.closed <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.lock;
  if not was_closed then Array.iter Domain.join t.workers

let create ~jobs =
  let jobs = if jobs <= 0 then max 1 (Domain.recommended_domain_count ()) else jobs in
  let t =
    {
      jobs;
      queue = Queue.create ();
      lock = Mutex.create ();
      work_ready = Condition.create ();
      workers = [||];
      closed = false;
    }
  in
  if jobs > 1 then begin
    t.workers <- Array.init (jobs - 1) (fun _ -> Domain.spawn (worker t));
    (* Helper domains blocked on the condition variable would otherwise
       keep the runtime alive (or be killed mid-wait) at program exit. *)
    at_exit (fun () -> shutdown t)
  end;
  t

let jobs t = t.jobs

let sequential n f =
  if n = 0 then [||]
  else begin
    let out = Array.make n (f 0) in
    for i = 1 to n - 1 do
      out.(i) <- f i
    done;
    out
  end

(* Auto chunk size: aim for a handful of chunks per worker so tiny
   tasks amortise the atomic fetch, while keeping enough chunks in
   flight that uneven work still balances. Coarse tasks come in small
   batches (n close to jobs), which auto-resolves to chunk 1. *)
let auto_chunk ~jobs n = max 1 (min 64 (n / (jobs * 4)))

let map_array ?chunk t n f =
  if n <= 1 || t.jobs = 1 then sequential n f
  else begin
    let chunk =
      match chunk with
      | Some c when c > 0 -> c
      | Some _ | None -> auto_chunk ~jobs:t.jobs n
    in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let pending = Atomic.make n in
    let failure = Atomic.make None in
    let fin_lock = Mutex.create () in
    let fin = Condition.create () in
    let rec drain () =
      let base = Atomic.fetch_and_add next chunk in
      if base < n then begin
        let hi = min n (base + chunk) in
        for i = base to hi - 1 do
          match f i with
          | v -> results.(i) <- Some v
          | exception e ->
              let bt = Printexc.get_raw_backtrace () in
              ignore (Atomic.compare_and_set failure None (Some (e, bt)))
        done;
        if Atomic.fetch_and_add pending (base - hi) = hi - base then begin
          Mutex.lock fin_lock;
          Condition.broadcast fin;
          Mutex.unlock fin_lock
        end;
        drain ()
      end
    in
    Mutex.lock t.lock;
    for _ = 1 to min (t.jobs - 1) (n - 1) do
      Queue.add drain t.queue
    done;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.lock;
    drain ();
    (* The caller ran out of fresh indices; tasks may still be in flight
       in helper domains. *)
    Mutex.lock fin_lock;
    while Atomic.get pending > 0 do
      Condition.wait fin fin_lock
    done;
    Mutex.unlock fin_lock;
    (match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end

let map_list ?chunk t f xs =
  let arr = Array.of_list xs in
  Array.to_list (map_array ?chunk t (Array.length arr) (fun i -> f arr.(i)))
