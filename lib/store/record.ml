module Crc32 = Rme_util.Crc32

(* Format version of the shard file syntax itself (header + line
   grammar) — distinct from the semantic fingerprint callers derive
   from the code computing the values.

   Version history:
   - 1: [<section> <key> := <value>] per line, no checksum.
   - 2: same payload followed by [ #<crc32>] — 8 lowercase hex digits
     of the CRC-32 of the payload — so a torn or bit-flipped line is
     detected per line instead of condemning the whole shard. *)

let magic = "# rme-store"
let current_version = 2
let header ~fingerprint = Printf.sprintf "%s %d %s" magic current_version fingerprint
let entry_sep = " := "
let crc_sep = " #"
let crc_suffix_len = String.length crc_sep + 8

(* [`Ok (version, fingerprint)] for any well-formed header, current or
   old; [`Future] for a well-formed header of a version this code does
   not know (skip, don't quarantine: a newer writer shares the
   directory); [`Bad] otherwise. *)
let parse_header line =
  let ml = String.length magic in
  if String.length line < ml + 2 || String.sub line 0 ml <> magic || line.[ml] <> ' '
  then `Bad
  else
    match String.index_from_opt line (ml + 1) ' ' with
    | None -> `Bad
    | Some sp -> (
        match int_of_string_opt (String.sub line (ml + 1) (sp - ml - 1)) with
        | None -> `Bad
        | Some v ->
            let fp = String.sub line (sp + 1) (String.length line - sp - 1) in
            if fp = "" then `Bad
            else if v >= 1 && v <= current_version then `Ok (v, fp)
            else `Future)

(* One entry per line: [<section> <key> := <value>]. The key itself is
   space-separated fields, so the section is the first token and the
   key runs up to the (first) separator. *)
let decode_payload line =
  let find_sub () =
    let n = String.length line and sl = String.length entry_sep in
    let rec go i =
      if i + sl > n then None
      else if String.sub line i sl = entry_sep then Some i
      else go (i + 1)
    in
    go 0
  in
  match find_sub () with
  | None -> None
  | Some i -> (
      let lhs = String.sub line 0 i in
      let value =
        String.sub line (i + String.length entry_sep)
          (String.length line - i - String.length entry_sep)
      in
      match String.index_opt lhs ' ' with
      | None -> None
      | Some j ->
          let section = String.sub lhs 0 j in
          let key = String.sub lhs (j + 1) (String.length lhs - j - 1) in
          if section = "" || key = "" then None else Some (section, key, value))

let encode_line ~section ~key ~value =
  let payload = String.concat "" [ section; " "; key; entry_sep; value ] in
  String.concat "" [ payload; crc_sep; Crc32.to_hex (Crc32.string payload) ]

(* Split [payload #crc] and verify. The suffix position is fixed (the
   checksum is always the last 10 bytes), so a value containing ['#']
   can never confuse the parse. *)
let decode_line ~version line =
  if version <= 1 then decode_payload line
  else
    let n = String.length line in
    if n < crc_suffix_len then None
    else
      let split = n - crc_suffix_len in
      if
        line.[split] = ' '
        && line.[split + 1] = '#'
        && String.sub line (split + 2) 8 = Crc32.to_hex (Crc32.sub line ~pos:0 ~len:split)
      then decode_payload (String.sub line 0 split)
      else None
