module Rmr = Rme_memory.Rmr
module H = Rme_sim.Harness

(* ---------------- scalars ---------------- *)

let float_enc f = Printf.sprintf "%h" f
let float_dec s = float_of_string_opt s
let int_dec s = int_of_string_opt s
let bool_dec s = bool_of_string_opt s

(* ---------------- escaping ---------------- *)

let must_escape c = c = ' ' || c = '=' || c = '%' || c = '\n' || c = '\r'

let escape s =
  if String.exists must_escape s then begin
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        if must_escape c then Buffer.add_string buf (Printf.sprintf "%%%02x" (Char.code c))
        else Buffer.add_char buf c)
      s;
    Buffer.contents buf
  end
  else s

let unescape s =
  if not (String.contains s '%') then Some s
  else begin
    let buf = Buffer.create (String.length s) in
    let n = String.length s in
    let rec go i =
      if i >= n then Some (Buffer.contents buf)
      else if s.[i] = '%' then
        if i + 2 < n then
          match int_of_string_opt ("0x" ^ String.sub s (i + 1) 2) with
          | Some code ->
              Buffer.add_char buf (Char.chr code);
              go (i + 3)
          | None -> None
        else None
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
    in
    go 0
  end

(* ---------------- domain encodings ---------------- *)

let model_enc = function Rmr.Cc -> "cc" | Rmr.Dsm -> "dsm"

let model_dec = function
  | "cc" -> Some Rmr.Cc
  | "dsm" -> Some Rmr.Dsm
  | _ -> None

(* [prefix[body]] helpers for the bracketed crash-policy spellings. *)
let bracketed ~prefix s =
  let pl = String.length prefix and n = String.length s in
  if n >= pl + 2 && String.sub s 0 pl = prefix && s.[pl] = '[' && s.[n - 1] = ']' then
    Some (String.sub s (pl + 1) (n - pl - 2))
  else None

let split_on c s = if s = "" then [] else String.split_on_char c s

let crash_policy_enc = function
  | H.No_crashes -> "none"
  | H.Crash_prob { prob; seed } ->
      Printf.sprintf "prob[%s;%d]" (float_enc prob) seed
  | H.Crash_script l ->
      Printf.sprintf "script[%s]"
        (String.concat "," (List.map (fun (s, p) -> Printf.sprintf "%d:%d" s p) l))
  | H.System_crash_script l ->
      Printf.sprintf "sys[%s]" (String.concat "," (List.map string_of_int l))
  | H.System_crash_prob { prob; seed; max } ->
      Printf.sprintf "sysprob[%s;%d;%d]" (float_enc prob) seed max

let crash_policy_dec s =
  let ( let* ) = Option.bind in
  let opt_all f l =
    List.fold_right
      (fun x acc ->
        let* acc = acc in
        let* y = f x in
        Some (y :: acc))
      l (Some [])
  in
  if s = "none" then Some H.No_crashes
  else
    match bracketed ~prefix:"prob" s with
    | Some body -> (
        match split_on ';' body with
        | [ p; seed ] ->
            let* prob = float_dec p in
            let* seed = int_dec seed in
            Some (H.Crash_prob { prob; seed })
        | _ -> None)
    | None -> (
        match bracketed ~prefix:"script" s with
        | Some body ->
            let* l =
              opt_all
                (fun tok ->
                  match split_on ':' tok with
                  | [ a; b ] ->
                      let* a = int_dec a in
                      let* b = int_dec b in
                      Some (a, b)
                  | _ -> None)
                (split_on ',' body)
            in
            Some (H.Crash_script l)
        | None -> (
            match bracketed ~prefix:"sysprob" s with
            | Some body -> (
                match split_on ';' body with
                | [ p; seed; max ] ->
                    let* prob = float_dec p in
                    let* seed = int_dec seed in
                    let* max = int_dec max in
                    Some (H.System_crash_prob { prob; seed; max })
                | _ -> None)
            | None -> (
                match bracketed ~prefix:"sys" s with
                | Some body ->
                    let* l = opt_all int_dec (split_on ',' body) in
                    Some (H.System_crash_script l)
                | None -> None)))

(* ---------------- field lists ---------------- *)

let fields kvs = String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) kvs)

let parse_fields s =
  let ( let* ) = Option.bind in
  let toks = split_on ' ' s in
  List.fold_right
    (fun tok acc ->
      let* acc = acc in
      let* i = String.index_opt tok '=' in
      if i = 0 then None
      else
        Some ((String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1)) :: acc))
    toks (Some [])

let lookup kvs k = List.assoc_opt k kvs
