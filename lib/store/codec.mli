(** Canonical, human-debuggable serialisation primitives for the
    persistent result store.

    Entries on disk are single text lines built from space-separated
    [key=value] fields, so a store can be inspected with [cat] and
    survives compiler upgrades (no [Marshal] anywhere — the encodings
    below are stable strings by construction). Two properties matter:

    - {e canonical}: equal OCaml values encode to equal strings, so a
      key encoded by one process matches the same key encoded by
      another (the store looks entries up by encoded key);
    - {e exact}: decoding an encoding returns the original value
      bit-for-bit — floats use hexadecimal notation ([%h]), which
      round-trips exactly, keeping cached tables byte-identical to
      recomputed ones.

    Every decoder is total: malformed input yields [None], which the
    store layer treats as corruption (recompute, never crash). *)

(** {1 Scalar encodings} *)

val float_enc : float -> string
(** Hexadecimal float notation — exact round-trip, still greppable. *)

val float_dec : string -> float option

val int_dec : string -> int option
val bool_dec : string -> bool option

(** {1 String escaping}

    Free-form strings (lock names) are percent-escaped so they can
    never contain the structural characters (space, [=], [%],
    newline) of the field syntax. *)

val escape : string -> string
val unescape : string -> string option

(** {1 Domain encodings} *)

val model_enc : Rme_memory.Rmr.model -> string
val model_dec : string -> Rme_memory.Rmr.model option

val crash_policy_enc : Rme_sim.Harness.crash_policy -> string
(** Every variant gets a distinct, space-free spelling:
    [none], [prob[p;seed]], [script[s:p,...]], [sys[s,...]],
    [sysprob[p;seed;max]]. *)

val crash_policy_dec : string -> Rme_sim.Harness.crash_policy option

(** {1 Field lists} *)

val fields : (string * string) list -> string
(** [fields [(k1,v1); ...]] is ["k1=v1 k2=v2 ..."]. Keys and values
    must be space-free (escape free-form strings first). *)

val parse_fields : string -> (string * string) list option
(** Inverse of {!fields}; [None] on any token without [=]. *)

val lookup : (string * string) list -> string -> string option
