(** The on-disk trial-cell result store.

    A store directory persists computed results ([section] × encoded
    key → encoded value, all canonical strings — see {!Codec}) across
    processes, so repeated bench runs and CI jobs only compute new
    cells. The design goals, in order:

    - {b never wrong}: every shard file records the code fingerprint
      it was written under; shards with a different fingerprint are
      skipped (counted in {!stats}), so a store can never serve
      numbers computed by different code. Unparseable content is
      quarantined and recomputed, never trusted.
    - {b never torn}: writers only ever publish a shard by writing a
      temporary file and [rename]-ing it into place (atomic on POSIX),
      so readers see old-or-new, never half a file.
    - {b shareable without locks}: each open handle owns a uniquely
      named shard file and rewrites only that; two engines (a [-j4]
      bench and a CI job, say) can share a directory concurrently and
      neither can lose the other's entries. Duplicate keys across
      shards are harmless — results are deterministic functions of
      their key — and resolve deterministically (sorted file order,
      later wins).
    - {b debuggable}: shards are sorted text, one entry per line
      ([section key-fields := value-fields]); [cat] works.

    On open, every [*.rme] shard in the directory is parsed. Corrupt
    files (bad header, malformed line, truncated tail) are moved to
    [quarantine/] — their salvageable prefix entries are kept and
    re-persisted through this handle's own shard, so a torn tail costs
    at most the torn entries. *)

type t

type stats = {
  entries : int;
      (** live entries: loaded from disk plus pending, overlaps counted
          once. *)
  shards_loaded : int;  (** clean shards read at open. *)
  stale_shards : int;  (** skipped: fingerprint mismatch. *)
  quarantined : int;  (** corrupt files moved to [quarantine/]. *)
  disk_hits : int;  (** successful {!find} lookups on this handle. *)
  added : int;  (** entries this handle will (re)write on {!flush}. *)
}

val open_ : dir:string -> fingerprint:string -> t
(** Create [dir] if needed (recursively) and load every readable
    shard written under [fingerprint]. Raises [Sys_error] on hard
    filesystem failures (callers degrade to cache-off). *)

val dir : t -> string
val fingerprint : t -> string

val find : t -> section:string -> string -> string option
(** [find t ~section key] — thread-safe lookup by encoded key. Checks
    this handle's pending buffer first, then the disk view: an entry
    {!add}ed but not yet flushed is served (and shadows any value the
    handle loaded from disk under the same key). *)

val add : t -> section:string -> key:string -> value:string -> unit
(** Record an entry in the pending buffer; it is visible to {!find} on
    this handle immediately and reaches disk at the next {!flush}.
    Keys and values must be single-line strings without [" := "]
    (guaranteed by the {!Codec} field syntax). *)

val flush : t -> unit
(** Atomically (re)publish this handle's shard with everything added
    so far. No-op when nothing changed since the last flush. *)

val stats : t -> stats

val iter : t -> (section:string -> key:string -> value:string -> unit) -> unit
(** Iterate over live entries (testing/inspection; unspecified order). *)

val write_shard :
  fingerprint:string -> path:string -> (string * string * string) list -> unit
(** Write [(section, key, value)] entries as a complete,
    current-version shard file at [path], atomically (tmp + rename) —
    the one shard writer, shared with {!Fsck}'s heal/compact. Raises
    [Sys_error] on filesystem failure. *)
