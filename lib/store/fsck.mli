(** Offline store inspection and repair — the engine room of the
    [rme store verify|repair|compact|stats] subcommands.

    {!scan} is strictly read-only (unlike {!Store.open_}, which
    quarantines corrupt files as a side effect of loading); mutation
    happens only in {!repair} and {!compact}. All three assume no live
    engine is concurrently writing to the directory.

    Classification distinguishes the two ways a shard goes bad:

    - a {e torn tail} — every bad line at the very end of the file, the
      signature of external truncation (power loss under a non-atomic
      filesystem, a partial copy). Healed in place by republishing the
      valid prefix.
    - {e corruption} — a bad line in the interior, meaning storage
      mutated data that once verified. The file is quarantined and the
      lines whose checksums still verify are salvaged into a fresh
      shard. *)

type shard_class =
  | Clean of int  (** intact entries. *)
  | Stale  (** other fingerprint or future format version; left alone. *)
  | Torn of { good : int; dropped : int }
  | Corrupt of { good : int; bad : int }
  | Unreadable  (** bad or missing header, or unreadable file. *)

type report = {
  scanned : int;
  clean : int;
  stale : int;
  torn : int;
  corrupt : int;
  unreadable : int;
  entries : int;
      (** distinct intact entries across readable shards of this
          fingerprint. *)
  lost_lines : int;  (** entry lines dropped as torn or corrupt. *)
  healed : int;  (** {!repair} only: torn shards rewritten in place. *)
  quarantined : int;  (** {!repair} only: files moved to [quarantine/]. *)
  salvaged : int;
      (** {!repair} only: entries recovered out of corrupt shards. *)
  sections : (string * int) list;  (** distinct entries per section. *)
  files : (string * shard_class) list;  (** per shard file, by name. *)
}

val scan : dir:string -> fingerprint:string -> report
(** Classify every [*.rme] shard under [dir] without touching
    anything. *)

val repair : dir:string -> fingerprint:string -> report
(** Heal torn shards in place, quarantine corrupt and unreadable ones
    (salvaging their checksum-valid lines into a fresh shard), leave
    clean and stale shards alone. The report reflects the {e pre}-repair
    classification plus the actions taken. *)

val compact : dir:string -> fingerprint:string -> int * int
(** Merge all clean shards of the given fingerprint into a single
    shard (runs {!repair} first): [(shards merged, entries written)].
    The merged shard is published before any source is deleted, so a
    crash mid-compact leaves duplicates, never a loss. No-op when
    fewer than two clean shards exist. *)
