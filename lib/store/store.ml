type stats = {
  entries : int;
  shards_loaded : int;
  stale_shards : int;
  quarantined : int;
  disk_hits : int;
  added : int;
}

type t = {
  dir : string;
  fingerprint : string;
  shard : string;  (* absolute path of the shard this handle owns *)
  guard : Mutex.t;
  entries : (string * string, string) Hashtbl.t;
      (* the disk view: entries loaded from shard files at open *)
  added : (string * string, string) Hashtbl.t;
      (* the pending buffer: entries this handle wrote (or salvaged)
         and owns until [flush]; shadows [entries] on lookup *)
  mutable dirty : bool;
  mutable shards_loaded : int;
  mutable stale_shards : int;
  mutable quarantined : int;
  mutable disk_hits : int;
}

let mkdir_p dir =
  let rec go d =
    if d <> "" && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Sys.mkdir d 0o755 with Sys_error _ when Sys.is_directory d -> ()
    end
  in
  go dir

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> In_channel.input_all ic)

(* Parse a whole shard (any readable header version — see {!Record}).
   [`Corrupt salvaged] carries the valid prefix: complete, well-formed
   lines before the first bad one. A missing final newline marks a
   truncated tail (every writer ends the file with one), so the tail
   line is rejected, not half-trusted. *)
let parse_shard ~fingerprint content =
  match String.index_opt content '\n' with
  | None -> `Corrupt []
  | Some i -> (
      let hdr = String.sub content 0 i in
      match Record.parse_header hdr with
      | `Bad -> `Corrupt []
      | `Future -> `Stale
      | `Ok (version, fp) ->
          if fp <> fingerprint then `Stale
          else
            let body = String.sub content (i + 1) (String.length content - i - 1) in
            let rec go acc = function
              | [] | [ "" ] -> `Ok (List.rev acc)
              | [ _truncated_tail ] -> `Corrupt (List.rev acc)
              | line :: rest -> (
                  match Record.decode_line ~version line with
                  | Some e -> go (e :: acc) rest
                  | None -> `Corrupt (List.rev acc))
            in
            go [] (String.split_on_char '\n' body))

let quarantine_counter = Atomic.make 0

let quarantine t path =
  let qdir = Filename.concat t.dir "quarantine" in
  mkdir_p qdir;
  let dest =
    Filename.concat qdir
      (Printf.sprintf "%s.%d-%d" (Filename.basename path) (Unix.getpid ())
         (Atomic.fetch_and_add quarantine_counter 1))
  in
  (* Another process may quarantine the same file first; losing the
     race is fine — the file is gone either way. *)
  try Sys.rename path dest with Sys_error _ -> ()

let load t =
  let files = try Sys.readdir t.dir with Sys_error _ -> [||] in
  Array.sort compare files;
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".rme" then begin
        let path = Filename.concat t.dir f in
        match read_file path with
        | exception Sys_error _ -> ()
        | content -> (
            match parse_shard ~fingerprint:t.fingerprint content with
            | `Stale -> t.stale_shards <- t.stale_shards + 1
            | `Ok es ->
                t.shards_loaded <- t.shards_loaded + 1;
                List.iter (fun (s, k, v) -> Hashtbl.replace t.entries (s, k) v) es
            | `Corrupt salvaged ->
                t.quarantined <- t.quarantined + 1;
                quarantine t path;
                (* The file is gone; its valid prefix goes into the
                   pending buffer, making this handle responsible for
                   re-persisting it. *)
                List.iter
                  (fun (s, k, v) ->
                    Hashtbl.replace t.added (s, k) v;
                    t.dirty <- true)
                  salvaged)
      end)
    files

let instance_counter = Atomic.make 0

let open_ ~dir ~fingerprint =
  mkdir_p dir;
  let shard =
    (* Unique per open handle: pid separates processes, the counter
       separates handles within one, and the time token defends
       against pid reuse across runs. *)
    Filename.concat dir
      (Printf.sprintf "shard-%d-%x-%d.rme" (Unix.getpid ())
         (int_of_float (Unix.gettimeofday () *. 1e6) land 0xffffff)
         (Atomic.fetch_and_add instance_counter 1))
  in
  let t =
    {
      dir;
      fingerprint;
      shard;
      guard = Mutex.create ();
      entries = Hashtbl.create 256;
      added = Hashtbl.create 64;
      dirty = false;
      shards_loaded = 0;
      stale_shards = 0;
      quarantined = 0;
      disk_hits = 0;
    }
  in
  load t;
  t

let dir t = t.dir
let fingerprint t = t.fingerprint

let with_guard t f =
  Mutex.lock t.guard;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.guard) f

let find t ~section key =
  with_guard t (fun () ->
      let hit =
        match Hashtbl.find_opt t.added (section, key) with
        | Some _ as v -> v
        | None -> Hashtbl.find_opt t.entries (section, key)
      in
      (match hit with Some _ -> t.disk_hits <- t.disk_hits + 1 | None -> ());
      hit)

let add t ~section ~key ~value =
  with_guard t (fun () ->
      Hashtbl.replace t.added (section, key) value;
      t.dirty <- true)

(* Write [entries] as a complete shard file at [path], atomically
   (tmp + rename). Shared with {!Fsck}, which heals and compacts
   through the same writer. *)
let write_shard ~fingerprint ~path entries =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Record.header ~fingerprint);
  Buffer.add_char buf '\n';
  List.iter
    (fun (s, k, v) ->
      Buffer.add_string buf (Record.encode_line ~section:s ~key:k ~value:v);
      Buffer.add_char buf '\n')
    entries;
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try Buffer.output_buffer oc buf
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc;
  if Rme_util.Fault.fire "store-rename-eio" then begin
    (try Sys.remove tmp with Sys_error _ -> ());
    raise (Sys_error (path ^ ": injected I/O error (RME_FAULT store-rename-eio)"))
  end;
  Sys.rename tmp path

let flush t =
  with_guard t (fun () ->
      if t.dirty then begin
        if Rme_util.Fault.fire "store-eio" then
          raise (Sys_error (t.shard ^ ": injected I/O error (RME_FAULT store-eio)"));
        Hashtbl.fold (fun (s, k) v acc -> (s, k, v) :: acc) t.added []
        |> List.sort compare
        |> write_shard ~fingerprint:t.fingerprint ~path:t.shard;
        t.dirty <- false;
        (* The durability point: everything added so far has just been
           published atomically. A crash here must lose nothing — the
           fault-injection suite kills the process at exactly this
           instant and asserts the resumed run finds every entry. *)
        if Rme_util.Fault.fire "crash-after-flush" then Unix._exit 70
      end)

let stats t =
  with_guard t (fun () ->
      let overlap =
        Hashtbl.fold
          (fun sk _ acc -> if Hashtbl.mem t.entries sk then acc + 1 else acc)
          t.added 0
      in
      {
        entries = Hashtbl.length t.entries + Hashtbl.length t.added - overlap;
        shards_loaded = t.shards_loaded;
        stale_shards = t.stale_shards;
        quarantined = t.quarantined;
        disk_hits = t.disk_hits;
        added = Hashtbl.length t.added;
      })

let iter t f =
  with_guard t (fun () ->
      Hashtbl.iter
        (fun (s, k) v ->
          if not (Hashtbl.mem t.added (s, k)) then f ~section:s ~key:k ~value:v)
        t.entries;
      Hashtbl.iter (fun (s, k) v -> f ~section:s ~key:k ~value:v) t.added)
