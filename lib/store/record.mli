(** The shard file syntax — shared between the {!Store} reader/writer
    and the {!Fsck} offline toolkit.

    A shard is line-oriented text: a header line
    [# rme-store <version> <fingerprint>] followed by one entry per
    line. Version 1 lines are bare [<section> <key> := <value>];
    version 2 (current) appends [ #<crc32>] — the CRC-32 of the
    payload as 8 lowercase hex digits — so each line carries its own
    integrity check. Readers accept both versions; writers emit only
    the current one. *)

val magic : string
val current_version : int

val header : fingerprint:string -> string
(** The header line every newly written shard starts with. *)

val parse_header : string -> [ `Ok of int * string | `Future | `Bad ]
(** Classify a header line: [`Ok (version, fingerprint)] for a format
    this code reads, [`Future] for a well-formed header of a newer
    version (to be skipped, not quarantined), [`Bad] for anything
    else. *)

val encode_line : section:string -> key:string -> value:string -> string
(** A current-version entry line (checksummed), without the trailing
    newline. *)

val decode_line : version:int -> string -> (string * string * string) option
(** Parse one entry line under the given header version:
    [(section, key, value)], or [None] for a malformed line or (v2) a
    checksum mismatch. *)
