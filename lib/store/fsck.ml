(* Offline store inspection and repair — what [rme store
   verify|repair|compact|stats] run. Unlike {!Store.open_} (which
   quarantines as a side effect of loading), {!scan} is strictly
   read-only; mutation happens only in {!repair} and {!compact}.

   These are offline tools: they assume no live engine is writing to
   the directory while they run. *)

type shard_class =
  | Clean of int  (* intact entries *)
  | Stale  (* other fingerprint or future format version; left alone *)
  | Torn of { good : int; dropped : int }
      (* valid prefix, then only bad/unterminated tail lines *)
  | Corrupt of { good : int; bad : int }
      (* bad lines in the interior: not a tear, actual corruption *)
  | Unreadable  (* bad or missing header, or the file cannot be read *)

type report = {
  scanned : int;
  clean : int;
  stale : int;
  torn : int;
  corrupt : int;
  unreadable : int;
  entries : int;  (* distinct intact entries across readable shards *)
  lost_lines : int;  (* entry lines dropped as torn or corrupt *)
  healed : int;  (* repair: torn shards rewritten in place *)
  quarantined : int;  (* repair: files moved to quarantine/ *)
  salvaged : int;  (* repair: entries recovered out of corrupt shards *)
  sections : (string * int) list;  (* distinct entries per section, sorted *)
  files : (string * shard_class) list;  (* per file, sorted by name *)
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> In_channel.input_all ic)

(* Classify one shard's content. The distinction that matters: a torn
   tail (external truncation of an atomically published file — every
   bad line at the very end) is healed by dropping the tail, while an
   interior bad line means the storage corrupted data we already
   trusted once, so the whole file is suspect and gets quarantined,
   keeping only lines whose checksums still verify. *)
let classify ~fingerprint content =
  match String.index_opt content '\n' with
  | None -> `Unreadable
  | Some i -> (
      match Record.parse_header (String.sub content 0 i) with
      | `Bad -> `Unreadable
      | `Future -> `Stale
      | `Ok (_, fp) when fp <> fingerprint -> `Stale
      | `Ok (version, _) ->
          let body = String.sub content (i + 1) (String.length content - i - 1) in
          let items =
            let rec go acc = function
              | [] | [ "" ] -> List.rev acc
              | [ tail ] ->
                  (* No final newline: an unterminated tail line is
                     never trusted, even if it happens to parse. *)
                  List.rev ((tail, None) :: acc)
              | l :: rest -> go ((l, Record.decode_line ~version l) :: acc) rest
            in
            go [] (String.split_on_char '\n' body)
          in
          let total = List.length items in
          let good = List.filter_map snd items in
          let n_good = List.length good in
          let n_bad = total - n_good in
          if n_bad = 0 then `Body (Clean n_good, good)
          else
            let first_bad =
              let rec go i = function
                | (_, None) :: _ -> i
                | _ :: rest -> go (i + 1) rest
                | [] -> i
              in
              go 0 items
            in
            if first_bad + n_bad = total then
              (* All bad lines form a suffix: the valid prefix is
                 exactly the first [first_bad] entries. *)
              `Body (Torn { good = n_good; dropped = n_bad }, good)
            else `Body (Corrupt { good = n_good; bad = n_bad }, good))

let shard_files dir =
  let files = try Sys.readdir dir with Sys_error _ -> [||] in
  Array.sort compare files;
  Array.to_list files
  |> List.filter (fun f ->
         Filename.check_suffix f ".rme"
         && not (Sys.is_directory (Filename.concat dir f)))

let classify_file ~fingerprint path =
  match read_file path with
  | exception Sys_error _ -> `Unreadable
  | content -> classify ~fingerprint content

let empty_report =
  {
    scanned = 0;
    clean = 0;
    stale = 0;
    torn = 0;
    corrupt = 0;
    unreadable = 0;
    entries = 0;
    lost_lines = 0;
    healed = 0;
    quarantined = 0;
    salvaged = 0;
    sections = [];
    files = [];
  }

(* Walk the directory, classify every shard, and aggregate. [on_file]
   lets {!repair} act on each classification as it is made. *)
let survey ~dir ~fingerprint ~on_file =
  let tbl : (string * string, string) Hashtbl.t = Hashtbl.create 256 in
  let acc = ref empty_report in
  List.iter
    (fun f ->
      let path = Filename.concat dir f in
      let cls, entries =
        match classify_file ~fingerprint path with
        | `Unreadable -> (Unreadable, [])
        | `Stale -> (Stale, [])
        | `Body (cls, entries) -> (cls, entries)
      in
      List.iter (fun (s, k, v) -> Hashtbl.replace tbl (s, k) v) entries;
      let r = !acc in
      acc :=
        {
          r with
          scanned = r.scanned + 1;
          clean = (r.clean + match cls with Clean _ -> 1 | _ -> 0);
          stale = (r.stale + match cls with Stale -> 1 | _ -> 0);
          torn = (r.torn + match cls with Torn _ -> 1 | _ -> 0);
          corrupt = (r.corrupt + match cls with Corrupt _ -> 1 | _ -> 0);
          unreadable = (r.unreadable + match cls with Unreadable -> 1 | _ -> 0);
          lost_lines =
            (r.lost_lines
            + match cls with
              | Torn { dropped; _ } -> dropped
              | Corrupt { bad; _ } -> bad
              | _ -> 0);
          files = (f, cls) :: r.files;
        };
      on_file ~path ~cls ~entries acc)
    (shard_files dir);
  let sections = Hashtbl.create 8 in
  Hashtbl.iter
    (fun (s, _) _ ->
      Hashtbl.replace sections s (1 + Option.value ~default:0 (Hashtbl.find_opt sections s)))
    tbl;
  let r = !acc in
  ( {
      r with
      entries = Hashtbl.length tbl;
      sections = List.sort compare (Hashtbl.fold (fun s n l -> (s, n) :: l) sections []);
      files = List.rev r.files;
    },
    tbl )

let scan ~dir ~fingerprint =
  fst (survey ~dir ~fingerprint ~on_file:(fun ~path:_ ~cls:_ ~entries:_ _ -> ()))

let mkdir_p dir =
  let rec go d =
    if d <> "" && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Sys.mkdir d 0o755 with Sys_error _ when Sys.is_directory d -> ()
    end
  in
  go dir

let file_counter = Atomic.make 0

let quarantine_file ~dir path =
  let qdir = Filename.concat dir "quarantine" in
  mkdir_p qdir;
  let dest =
    Filename.concat qdir
      (Printf.sprintf "%s.%d-%d" (Filename.basename path) (Unix.getpid ())
         (Atomic.fetch_and_add file_counter 1))
  in
  try Sys.rename path dest with Sys_error _ -> ()

let fresh_shard ~dir prefix =
  Filename.concat dir
    (Printf.sprintf "%s-%d-%x-%d.rme" prefix (Unix.getpid ())
       (int_of_float (Unix.gettimeofday () *. 1e6) land 0xffffff)
       (Atomic.fetch_and_add file_counter 1))

let repair ~dir ~fingerprint =
  let on_file ~path ~cls ~entries acc =
    match cls with
    | Clean _ | Stale -> ()
    | Torn _ ->
        (* Heal in place: republish the valid prefix under the same
           name (atomic rename, so a crash mid-heal leaves the torn
           original, not less). *)
        Store.write_shard ~fingerprint ~path entries;
        acc := { !acc with healed = !acc.healed + 1 }
    | Corrupt _ ->
        quarantine_file ~dir path;
        if entries <> [] then
          Store.write_shard ~fingerprint ~path:(fresh_shard ~dir "healed")
            (List.sort_uniq compare entries);
        acc :=
          {
            !acc with
            quarantined = !acc.quarantined + 1;
            salvaged = !acc.salvaged + List.length entries;
          }
    | Unreadable ->
        quarantine_file ~dir path;
        acc := { !acc with quarantined = !acc.quarantined + 1 }
  in
  fst (survey ~dir ~fingerprint ~on_file)

let compact ~dir ~fingerprint =
  (* Heal first so a torn tail is not silently discarded by way of
     deleting its source file below. *)
  let _ = repair ~dir ~fingerprint in
  let sources = ref [] in
  let report, tbl =
    survey ~dir ~fingerprint ~on_file:(fun ~path ~cls ~entries:_ _ ->
        match cls with
        | Clean _ -> sources := path :: !sources
        | Stale | Torn _ | Corrupt _ | Unreadable -> ())
  in
  ignore report;
  let sources = List.rev !sources in
  let n_sources = List.length sources in
  let entries =
    Hashtbl.fold (fun (s, k) v l -> (s, k, v) :: l) tbl [] |> List.sort compare
  in
  if n_sources > 1 then begin
    (* Publish the merged shard before deleting any source: a crash in
       between leaves duplicates, never a loss. *)
    Store.write_shard ~fingerprint ~path:(fresh_shard ~dir "compact") entries;
    List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) sources
  end;
  (n_sources, List.length entries)
