module Intset = Rme_util.Intset
module Vec = Rme_util.Vec
module Memory = Rme_memory.Memory
module Op = Rme_memory.Op
module Rmr = Rme_memory.Rmr

type config = {
  n : int;
  width : int;
  model : Rmr.model;
  k : int;
  local_cap : int;
  completion_cap : int;
  max_rounds : int;
}

(* The contention threshold is the paper's k = w^d; any k > w works for
   the construction (a w-bit object offers only w "slots" worth of
   one-RMR distinct announcements, so with more than w poised processes
   per group the pigeonhole argument behind the Process-Hiding Lemma has
   room to operate, while groups of exactly w can be unhideable — e.g.
   w processes each FAA-ing a distinct bit). *)
let default_config ~n ~width model =
  {
    n;
    width;
    model;
    k = max 2 (width + 1);
    local_cap = 10_000;
    completion_cap = 100_000;
    max_rounds = 200;
  }

type round_kind = Low_contention | High_read | High_hide

let round_kind_name = function
  | Low_contention -> "low"
  | High_read -> "high-read"
  | High_hide -> "high-hide"

type round_info = {
  index : int;
  kind : round_kind;
  active_before : int;
  active_after : int;
  newly_finished : int;
  newly_removed : int;
  replays : int;
}

type round_meta = {
  boundary : int;  (* committed directive count at end of the round *)
  meta_active : Intset.t;
  meta_finished : Intset.t;
  meta_removed : Intset.t;
}

type committed_schedule = {
  ctx : Schedule.context;
  directives : (Schedule.directive * Schedule.record) array;
  metas : round_meta list;  (* oldest first *)
}

type result = {
  rounds : round_info list;
  rounds_completed : int;
  survivors : Intset.t;
  survivor_min_rmrs : int;
  finished : int;
  removed : int;
  escaped : int;
  replay_checked_steps : int;
  predicted_lower_bound : float;
  schedule : committed_schedule;
}

(* Removals discovered mid-plan: the round must be replanned from a
   replayed base schedule without these processes. *)
exception Restart of Intset.t

(* ------------------------------------------------------------------ *)
(* Hiding plans: the per-group instantiation of the Process-Hiding
   Lemma. Given the current value of the contended object and the poised
   operations of a group, find step sets A (the pretended execution) and
   B + z (the real one) with the same resulting value, such that z is
   outside the crash set V = A + B. *)

type hide_plan = {
  steppers : int list; (* execution order of B + z *)
  hp_z : int;
  v : int list; (* V = A + B, each to crash and complete *)
  y_next : int;
}

(* The search pool for hiding plans is capped at this many members;
   subsets are enumerated over pool {e indices}, so the index subsets for
   every pool size can be shared across all calls (and across domains:
   the table below is computed once at module initialisation and
   immutable afterwards). *)
let max_pool = 16

let index_subsets : int list list array =
  Array.init (max_pool + 1) (fun n ->
      let acc = ref [] in
      for i = 0 to n - 1 do
        acc := [ i ] :: !acc;
        for j = i + 1 to n - 1 do
          acc := [ i; j ] :: !acc;
          for l = j + 1 to n - 1 do
            acc := [ i; j; l ] :: !acc
          done
        done
      done;
      List.rev !acc)

let find_hiding ~width ~y0 ~members ~forbidden =
  (* [members]: (pid, poised op) ascending by pid, all non-read. *)
  let ops = members in
  let pids = List.map fst members in
  (* Indexing the members once replaces the per-element [List.assoc] of
     subset evaluation with O(1) array reads. *)
  let arr = Array.of_list members in
  let pool = min max_pool (Array.length arr) in
  let by_value = Hashtbl.create 64 in
  List.iter
    (fun idxs ->
      let y =
        List.fold_left
          (fun y i -> Op.next_value ~width (snd arr.(i)) y)
          y0 idxs
      in
      let s = List.map (fun i -> fst arr.(i)) idxs in
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_value y) in
      Hashtbl.replace by_value y (s :: prev))
    index_subsets.(pool);
  let candidate = ref None in
  Hashtbl.iter
    (fun y subsets ->
      if !candidate = None then begin
        let rec pairs = function
          | [] -> ()
          | s2 :: rest ->
              List.iter
                (fun s1 ->
                  if !candidate = None && s1 <> s2 then begin
                    let zs =
                      List.filter
                        (fun z ->
                          (not (List.mem z s1)) && not (Intset.mem z forbidden))
                        s2
                    in
                    match zs with
                    | z :: _ ->
                        let v =
                          List.sort_uniq compare
                            (s1 @ List.filter (fun x -> x <> z) s2)
                        in
                        candidate :=
                          Some { steppers = s2; hp_z = z; v; y_next = y }
                    | [] -> ()
                  end)
                rest;
              if !candidate = None then pairs rest
        in
        pairs subsets
      end)
    by_value;
  match !candidate with
  | Some _ as c -> c
  | None -> begin
      (* Fallback: an absorbing operation (write/FAS) hides anything that
         steps before it — the Chan–Woelfel technique. *)
      let absorbing =
        List.find_opt
          (fun (_, op) ->
            match op with Op.Write _ | Op.Fas _ -> true | _ -> false)
          ops
      in
      match absorbing with
      | Some (alpha, alpha_op) -> begin
          let z =
            List.find_opt (fun p -> p <> alpha && not (Intset.mem p forbidden)) pids
          in
          match z with
          | Some z ->
              let y_mid = Op.next_value ~width (List.assoc z ops) y0 in
              let y_next = Op.next_value ~width alpha_op y_mid in
              Some { steppers = [ z; alpha ]; hp_z = z; v = [ alpha ]; y_next }
          | None -> None
        end
      | None -> None
    end

(* ------------------------------------------------------------------ *)

let run config factory =
  if config.k < 2 then invalid_arg "Adversary.run: k must be >= 2";
  let ctx =
    {
      Schedule.n = config.n;
      width = config.width;
      model = config.model;
      factory;
      local_cap = config.local_cap;
      completion_cap = config.completion_cap;
    }
  in
  let committed : (Schedule.directive * Schedule.record) Vec.t = Vec.create () in
  let metas = ref [] in
  let removed = ref Intset.empty in
  let finished = ref Intset.empty in
  let active = ref (Intset.of_range 0 (config.n - 1)) in
  let escaped = ref Intset.empty in
  let total_checked = ref 0 in
  (* One scratch play serves every attempt. Right after a commit the
     scratch {e is} the committed state (the commit's planning executed
     on it), so the next attempt resumes it as-is — replay becomes free
     at every round boundary. Any change to [removed] since that commit
     — a mid-plan [Restart], or processes dropped at the commit itself —
     invalidates the resume and forces a full filtered replay from step
     0 on the reset machine: that replay is the executable witness that
     the removals affected nobody kept, so it is performed exactly when
     it verifies something new. *)
  let scratch = Schedule.fresh_play ctx in
  let committed_removed = ref Intset.empty in
  let clean = ref true in
  let replay () =
    if not (!clean && Intset.equal !removed !committed_removed) then begin
      Schedule.replay_into scratch ctx
        ~keep:(fun p -> not (Intset.mem p !removed))
        committed;
      total_checked := !total_checked + scratch.Schedule.checked
    end;
    (* The attempt about to run will mutate the scratch past the
       committed prefix. *)
    clean := false;
    scratch
  in
  (* -------------------------------------------------------------- *)
  (* Plan (and tentatively execute) one round on [play]. Raises
     [Restart] when processes must be removed first. On success returns
     the round's directives, its kind, the new finished list and the
     surviving active list. *)
  let plan_round (play : Schedule.play) =
    let directives : (Schedule.directive * Schedule.record) Vec.t = Vec.create () in
    let actives = Intset.to_sorted_list !active in
    let active_set = !active in
    let discovery_check ~observer ~loc ~exempt =
      let vis =
        Intset.diff
          (Intset.remove observer
             (Intset.inter (Schedule.visible_at play loc) active_set))
          exempt
      in
      if not (Intset.is_empty vis) then Some vis else None
    in
    let push_step pid hidden_as (info : Machine.step_info) =
      ignore
        (Vec.push directives
           ( Schedule.D_step { pid; hidden_as },
             Schedule.R_step { loc = info.Machine.loc; old_value = info.Machine.old_value }
           ))
    in
    let complete_with_checks pid ~exempt =
      let ok, count =
        Schedule.do_complete play ctx ~pid ~on_step:(fun info ->
            match discovery_check ~observer:pid ~loc:info.Machine.loc ~exempt with
            | Some vis -> raise (Restart vis)
            | None -> ())
      in
      (ok, count)
    in
    (* Setup phase: run every active to its next RMR-incurring step. *)
    let cs_ready = ref [] in
    List.iter
      (fun pid ->
        let taken = ref 0 in
        let continue = ref true in
        while !continue do
          match Machine.peek play.Schedule.m ~pid with
          | None ->
              escaped := Intset.add pid !escaped;
              raise (Restart (Intset.singleton pid))
          | Some (loc, _op) ->
              if Machine.poised_rmr play.Schedule.m ~pid then continue := false
              else if !taken >= config.local_cap then
                (* Locally stuck: waiting on a grant that will never come
                   inside this construction; drop the waiter. *)
                raise (Restart (Intset.singleton pid))
              else begin
                (match discovery_check ~observer:pid ~loc ~exempt:Intset.empty with
                | Some _ ->
                    (* Removing the observer keeps everyone else intact. *)
                    raise (Restart (Intset.singleton pid))
                | None -> ());
                ignore (Schedule.do_local play ~pid);
                incr taken
              end
        done;
        if !taken > 0 then
          ignore (Vec.push directives (Schedule.D_local pid, Schedule.R_local !taken));
        if Machine.phase play.Schedule.m ~pid = Machine.In_cs then
          cs_ready := pid :: !cs_ready)
      actives;
    (* Processes poised on their critical-section step are finished
       deliberately (the proof "forces them to run to completion"). *)
    let new_finished = ref [] in
    List.iter
      (fun pid ->
        let ok, count = complete_with_checks pid ~exempt:Intset.empty in
        if not ok then raise (Restart (Intset.singleton pid));
        ignore (Vec.push directives (Schedule.D_complete pid, Schedule.R_complete count));
        new_finished := pid :: !new_finished)
      (List.rev !cs_ready);
    let actives = List.filter (fun p -> not (List.mem p !cs_ready)) actives in
    if actives = [] then (directives, Low_contention, !new_finished, [])
    else begin
      let poised =
        List.map
          (fun pid ->
            match Machine.peek play.Schedule.m ~pid with
            | Some (loc, op) -> (pid, loc, op)
            | None -> raise (Schedule.Diverged "active process lost its poised step"))
          actives
      in
      let by_loc = Hashtbl.create 32 in
      List.iter
        (fun (pid, loc, op) ->
          let prev = Option.value ~default:[] (Hashtbl.find_opt by_loc loc) in
          Hashtbl.replace by_loc loc ((pid, op) :: prev))
        poised;
      let high_locs =
        Hashtbl.fold
          (fun loc members acc ->
            if List.length members >= config.k then loc :: acc else acc)
          by_loc []
        |> List.sort compare
      in
      let high_count =
        List.fold_left
          (fun acc loc -> acc + List.length (Hashtbl.find by_loc loc))
          0 high_locs
      in
      if high_locs <> [] && 2 * high_count >= List.length actives then begin
        (* ---------------- high contention ---------------- *)
        let to_remove = ref Intset.empty in
        List.iter
          (fun (pid, loc, _) ->
            if not (List.mem loc high_locs) then
              to_remove := Intset.add pid !to_remove)
          poised;
        List.iter
          (fun loc ->
            (match Memory.owner (Machine.memory play.Schedule.m) loc with
            | Some o when Intset.mem o active_set ->
                to_remove := Intset.add o !to_remove
            | Some _ | None -> ());
            Intset.iter
              (fun q -> to_remove := Intset.add q !to_remove)
              (Intset.inter (Schedule.visible_at play loc) active_set))
          high_locs;
        let groups = ref [] in
        List.iter
          (fun loc ->
            let members =
              Hashtbl.find by_loc loc
              |> List.filter (fun (p, _) -> not (Intset.mem p !to_remove))
              |> List.sort compare
            in
            let rec chunk = function
              | rest when List.length rest < config.k ->
                  List.iter
                    (fun (p, _) -> to_remove := Intset.add p !to_remove)
                    rest
              | rest ->
                  let g = List.filteri (fun i _ -> i < config.k) rest in
                  let rest' = List.filteri (fun i _ -> i >= config.k) rest in
                  groups := (loc, g) :: !groups;
                  chunk rest'
            in
            chunk members)
          high_locs;
        let groups = List.rev !groups in
        let has_reader g = List.exists (fun (_, op) -> Op.is_read op) g in
        let reader_groups = List.filter (fun (_, g) -> has_reader g) groups in
        if 2 * List.length reader_groups >= List.length groups then begin
          (* Read case: only read-poised members of reader groups stay;
             reads are unobservable, so they all step. *)
          let keep = ref Intset.empty in
          List.iter
            (fun (_, g) ->
              List.iter
                (fun (p, op) -> if Op.is_read op then keep := Intset.add p !keep)
                g)
            reader_groups;
          List.iter
            (fun (p, _, _) ->
              if not (Intset.mem p !keep) then
                to_remove := Intset.add p !to_remove)
            poised;
          if not (Intset.is_empty (Intset.inter !to_remove active_set)) then
            raise (Restart !to_remove);
          List.iter
            (fun pid ->
              let info = Schedule.do_step play ~pid ~hidden_as:[] in
              push_step pid [] info)
            (Intset.to_sorted_list !keep);
          (directives, High_read, !new_finished, Intset.to_sorted_list !keep)
        end
        else begin
          (* Hide case. *)
          List.iter
            (fun (_, g) ->
              if has_reader g then
                List.iter (fun (p, _) -> to_remove := Intset.add p !to_remove) g)
            groups;
          if not (Intset.is_empty (Intset.inter !to_remove active_set)) then
            raise (Restart !to_remove);
          let groups = List.filter (fun (_, g) -> not (has_reader g)) groups in
          let width = config.width in
          let survivors = ref [] in
          let plans = ref [] in
          let by_obj = Hashtbl.create 8 in
          List.iter
            (fun (loc, g) ->
              let prev = Option.value ~default:[] (Hashtbl.find_opt by_obj loc) in
              Hashtbl.replace by_obj loc (g :: prev))
            groups;
          Hashtbl.iter
            (fun loc gs ->
              let y = ref (Memory.value (Machine.memory play.Schedule.m) loc) in
              List.iter
                (fun g ->
                  match find_hiding ~width ~y0:!y ~members:g ~forbidden:!removed with
                  | Some plan ->
                      y := plan.y_next;
                      plans := (loc, g, plan) :: !plans
                  | None ->
                      raise
                        (Restart
                           (List.fold_left
                              (fun acc (p, _) -> Intset.add p acc)
                              Intset.empty g)))
                (List.rev gs))
            by_obj;
          let plans = List.rev !plans in
          let all_v =
            List.concat_map (fun (_, _, plan) -> plan.v) plans
            |> List.sort_uniq compare
          in
          let v_set =
            List.fold_left (fun a p -> Intset.add p a) Intset.empty all_v
          in
          List.iter
            (fun (_loc, _g, plan) ->
              List.iter
                (fun pid ->
                  let info = Schedule.do_step play ~pid ~hidden_as:plan.v in
                  push_step pid plan.v info)
                plan.steppers;
              survivors := plan.hp_z :: !survivors)
            plans;
          List.iter
            (fun pid ->
              Machine.crash play.Schedule.m ~pid;
              ignore (Vec.push directives (Schedule.D_crash pid, Schedule.R_crash)))
            all_v;
          List.iter
            (fun pid ->
              let ok, count = complete_with_checks pid ~exempt:v_set in
              if not ok then raise (Restart (Intset.add pid v_set));
              ignore
                (Vec.push directives
                   (Schedule.D_complete pid, Schedule.R_complete count));
              new_finished := pid :: !new_finished)
            all_v;
          (directives, High_hide, !new_finished, List.sort compare !survivors)
        end
      end
      else begin
        (* ---------------- low contention ---------------- *)
        let chosen = ref [] in
        let to_remove = ref Intset.empty in
        let loc_readers = Hashtbl.create 32 in
        let loc_writer = Hashtbl.create 32 in
        List.iter
          (fun (pid, loc, op) ->
            let owner_conflict =
              match Memory.owner (Machine.memory play.Schedule.m) loc with
              | Some o -> o <> pid && Intset.mem o active_set
              | None -> false
            in
            let visible_conflict =
              not
                (Intset.is_empty
                   (Intset.remove pid
                      (Intset.inter (Schedule.visible_at play loc) active_set)))
            in
            let write_taken = Hashtbl.mem loc_writer loc in
            let read_taken = Hashtbl.mem loc_readers loc in
            if owner_conflict || visible_conflict then
              to_remove := Intset.add pid !to_remove
            else if Op.is_read op then begin
              if write_taken then to_remove := Intset.add pid !to_remove
              else begin
                Hashtbl.replace loc_readers loc ();
                chosen := pid :: !chosen
              end
            end
            else if write_taken || read_taken then
              to_remove := Intset.add pid !to_remove
            else begin
              Hashtbl.replace loc_writer loc ();
              chosen := pid :: !chosen
            end)
          poised;
        if not (Intset.is_empty !to_remove) then raise (Restart !to_remove);
        let survivors = ref [] in
        List.iter
          (fun pid ->
            let info = Schedule.do_step play ~pid ~hidden_as:[] in
            push_step pid [] info;
            if Machine.phase play.Schedule.m ~pid = Machine.In_cs then begin
              let ok, count = complete_with_checks pid ~exempt:Intset.empty in
              if not ok then raise (Restart (Intset.singleton pid));
              ignore
                (Vec.push directives
                   (Schedule.D_complete pid, Schedule.R_complete count));
              new_finished := pid :: !new_finished
            end
            else survivors := pid :: !survivors)
          (List.rev !chosen);
        (directives, Low_contention, !new_finished, List.sort compare !survivors)
      end
    end
  in
  (* -------------------------------------------------------------- *)
  let rounds = ref [] in
  let last_commit_min_rmrs = ref max_int in
  let round_index = ref 0 in
  let continue = ref true in
  while
    !continue && !round_index < config.max_rounds && Intset.cardinal !active >= 2
  do
    incr round_index;
    let active_before = Intset.cardinal !active in
    let active_snapshot = !active in
    let removed_snapshot = !removed in
    let attempts = ref 0 in
    let committed_this = ref false in
    while not !committed_this do
      incr attempts;
      if !attempts > config.n + 4 then
        raise (Schedule.Diverged "round did not stabilise after n restarts");
      let play = replay () in
      match plan_round play with
      | directives, kind, new_finished, survivors ->
          (* Commit. Actives that neither survived nor finished are
             removed from the schedule outright (the proof's switch to a
             sub-schedule without them); subsequent replays re-verify
             that nobody ever observed them. *)
          Vec.iter (fun dr -> ignore (Vec.push committed dr)) directives;
          List.iter (fun p -> finished := Intset.add p !finished) new_finished;
          let survivor_set =
            List.fold_left (fun acc p -> Intset.add p acc) Intset.empty survivors
          in
          let dropped =
            List.fold_left
              (fun acc p -> Intset.remove p acc)
              (Intset.diff !active survivor_set)
              new_finished
          in
          (* The scratch now holds exactly the committed state: mark it
             resumable for the keep-set this attempt replayed under, and
             record the survivor statistics it will be asked for later
             (reading them now spares any end-of-run reconstruction). *)
          clean := true;
          committed_removed := !removed;
          last_commit_min_rmrs :=
            Intset.fold
              (fun p acc -> min acc (Machine.total_rmrs play.Schedule.m ~pid:p))
              survivor_set max_int;
          removed := Intset.union !removed dropped;
          active := survivor_set;
          committed_this := true;
          metas :=
            {
              boundary = Vec.length committed;
              meta_active = !active;
              meta_finished = !finished;
              meta_removed = !removed;
            }
            :: !metas;
          rounds :=
            {
              index = !round_index;
              kind;
              active_before;
              active_after = Intset.cardinal !active;
              newly_finished = List.length new_finished;
              newly_removed =
                active_before - Intset.cardinal !active
                - List.length new_finished;
              replays = !attempts;
            }
            :: !rounds
      | exception Restart more ->
          let fresh = Intset.diff more !removed in
          if Intset.is_empty fresh then
            raise (Schedule.Diverged "restart requested without new removals");
          removed := Intset.union !removed fresh;
          active := Intset.diff !active fresh;
          if Intset.cardinal !active < 2 then begin
            (* This round cannot be built; abandon it and keep the
               survivors of the last committed round — they already hold
               the RMRs the committed rounds forced. *)
            active := active_snapshot;
            removed := removed_snapshot;
            committed_this := true;
            decr round_index;
            continue := false
          end
    done
  done;
  (* Final witness: one full filtered replay of the complete committed
     schedule under the final keep-set, asserting every kept record.
     (Survivor statistics were stashed at the last commit instead of
     being read back here: this witness excludes the directives of
     processes dropped at that commit, whose cache effects the committed
     execution included, so its RMR totals are not the committed ones.) *)
  if Vec.length committed > 0 then begin
    Schedule.replay_into scratch ctx
      ~keep:(fun p -> not (Intset.mem p !removed))
      committed;
    total_checked := !total_checked + scratch.Schedule.checked
  end;
  let survivor_min_rmrs = !last_commit_min_rmrs in
  {
    rounds = List.rev !rounds;
    rounds_completed = !round_index;
    survivors = !active;
    survivor_min_rmrs =
      (if survivor_min_rmrs = max_int then 0 else survivor_min_rmrs);
    finished = Intset.cardinal !finished;
    removed = Intset.cardinal !removed;
    escaped = Intset.cardinal !escaped;
    replay_checked_steps = !total_checked;
    predicted_lower_bound = Bounds.theorem1_lower ~n:config.n ~w:config.width;
    schedule =
      { ctx; directives = Vec.to_array committed; metas = List.rev !metas };
  }
