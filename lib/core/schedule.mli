(** Replayable schedules — the common substrate of the adversary and the
    explicit schedule-table checker.

    A schedule is a sequence of {e directives} (the paper's schedule: a
    sequence over [{p, p̂}], enriched with "run to completion" macro
    steps), paired with {e records} of what each directive observed when
    first executed. Replaying a schedule — possibly with some processes
    filtered out — re-executes the directives and {e asserts} that every
    kept step observes exactly what it originally observed. A successful
    filtered replay is the executable witness of invariants (I3)/(I5):
    removing the filtered processes did not affect anyone kept. *)

type context = {
  n : int;
  width : int;
  model : Rme_memory.Rmr.model;
  factory : Rme_sim.Lock_intf.factory;
  local_cap : int;
  completion_cap : int;
}

type directive =
  | D_local of int
      (** Run the process to its next RMR-incurring step (setup phase). *)
  | D_step of { pid : int; hidden_as : int list }
      (** One shared-memory step. A non-empty [hidden_as] marks a step
          whose effect is officially attributed to those (about to crash
          and finish) processes — the Process-Hiding switch. *)
  | D_crash of int
  | D_complete of int  (** Run to super-passage completion. *)

type record =
  | R_local of int  (** local steps taken *)
  | R_step of { loc : int; old_value : int }
  | R_crash
  | R_complete of int  (** steps taken *)

val pid_of_directive : directive -> int

exception Diverged of string
(** Raised when a replay observes something different from the record —
    a violation of the construction's invariants. *)

(** A play: a machine plus the visibility map. [visible] tracks, per
    location, the processes whose effect on its value an observer could
    still learn about. *)
type play = {
  m : Machine.t;
  mutable visible : (int, Rme_util.Intset.t) Hashtbl.t;
  mutable checked : int;  (** record assertions verified *)
}

val fresh_play : context -> play

val visible_at : play -> int -> Rme_util.Intset.t

val do_local : play -> pid:int -> Machine.step_info
(** One setup-phase step; raises [Diverged] if it incurs an RMR. *)

val do_step : play -> pid:int -> hidden_as:int list -> Machine.step_info

val do_complete :
  play ->
  context ->
  pid:int ->
  on_step:(Machine.step_info -> unit) ->
  bool * int
(** Run to completion under the context's cap; returns (completed,
    steps). Updates visibility for every step. *)

val exec_replay :
  play ->
  context ->
  ?on_event:(pid:int -> Machine.step_info -> unit) ->
  directive * record ->
  unit
(** Re-execute one recorded directive, asserting its record. *)

val replay :
  context ->
  ?keep:(int -> bool) ->
  ?on_event:(pid:int -> Machine.step_info -> unit) ->
  (directive * record) array ->
  play
(** Replay a whole schedule from a fresh machine, skipping directives of
    processes for which [keep] is false (default: keep everyone). *)

val reset_play : play -> unit
(** Return the play to its just-created state in place ([Machine.reset]
    plus an empty visibility map), without building a new machine. *)

val replay_into :
  play ->
  context ->
  ?keep:(int -> bool) ->
  ?on_event:(pid:int -> Machine.step_info -> unit) ->
  (directive * record) Rme_util.Vec.t ->
  unit
(** [replay] into an existing play: resets it, then re-executes the kept
    directives, asserting every record ([play.checked] counts them).
    Reads the committed schedule directly, with no array copy. *)

type play_snapshot
(** A play at a point in time: machine snapshot plus visibility map. *)

val snapshot_play : play -> play_snapshot

val restore_play : play -> play_snapshot -> unit
(** Restore the machine and visibility map. [checked] is reset to 0 —
    a restore verifies nothing; only executed replays count. *)
