module Memory = Rme_memory.Memory
module Op = Rme_memory.Op
module Rmr = Rme_memory.Rmr
module Prog = Rme_sim.Prog
module Lock_intf = Rme_sim.Lock_intf

type phase = In_entry | In_cs | In_exit | In_recovery | Completed

type step_info = {
  loc : Memory.loc;
  op : Op.t;
  old_value : int;
  new_value : int;
  rmr : bool;
}

type prog_state =
  | P_entry of unit Prog.t
  | P_cs of unit Prog.t
  | P_exit of unit Prog.t
  | P_recovery of Lock_intf.resume Prog.t
  | P_done

type proc = {
  pid : int;
  mutable state : prog_state;
  mutable crash_count : int;
  mutable cs_entries : int;
}

type t = {
  memory : Memory.t;
  rmr : Rmr.t;
  lock : Lock_intf.instance;
  cs_loc : Memory.loc;
  n : int;
  procs : proc array;
}

let create ~n ~width ~model factory =
  if not (Lock_intf.supports factory ~n ~width) then
    invalid_arg
      (Printf.sprintf "Machine.create: lock %s needs width >= %d for n = %d"
         factory.Lock_intf.name
         (factory.Lock_intf.min_width ~n)
         n);
  let memory = Memory.create ~width in
  let lock = factory.Lock_intf.make memory ~n in
  let cs_loc = Memory.alloc memory ~name:"cs-cell" ~init:0 in
  let rmr = Rmr.create model ~n in
  let procs =
    Array.init n (fun pid ->
        {
          pid;
          state = P_entry (lock.Lock_intf.entry ~pid);
          crash_count = 0;
          cs_entries = 0;
        })
  in
  { memory; rmr; lock; cs_loc; n; procs }

let memory t = t.memory
let rmr t = t.rmr
let n t = t.n

let cs_program t ~pid = Prog.write t.cs_loc (pid land 1)

(* Resolve [Return] transitions until the process is poised on a step or
   done. The CS program always contains a step, so this terminates. *)
let rec settle t p =
  match p.state with
  | P_done -> ()
  | P_entry (Prog.Return ()) ->
      p.cs_entries <- p.cs_entries + 1;
      p.state <- P_cs (cs_program t ~pid:p.pid);
      settle t p
  | P_cs (Prog.Return ()) ->
      p.state <- P_exit (t.lock.Lock_intf.exit ~pid:p.pid);
      settle t p
  | P_exit (Prog.Return ()) -> p.state <- P_done
  | P_recovery (Prog.Return resume) -> begin
      (match resume with
      | Lock_intf.Resume_entry ->
          p.state <- P_entry (t.lock.Lock_intf.entry ~pid:p.pid)
      | Lock_intf.In_cs ->
          p.cs_entries <- p.cs_entries + 1;
          p.state <- P_cs (cs_program t ~pid:p.pid)
      | Lock_intf.Resume_exit ->
          p.state <- P_exit (t.lock.Lock_intf.exit ~pid:p.pid)
      | Lock_intf.Passage_done -> p.state <- P_done);
      settle t p
    end
  | P_entry (Prog.Step _) | P_cs (Prog.Step _) | P_exit (Prog.Step _)
  | P_recovery (Prog.Step _) ->
      ()

let phase t ~pid =
  let p = t.procs.(pid) in
  settle t p;
  match p.state with
  | P_entry _ -> In_entry
  | P_cs _ -> In_cs
  | P_exit _ -> In_exit
  | P_recovery _ -> In_recovery
  | P_done -> Completed

let completed t ~pid = phase t ~pid = Completed

let peek t ~pid =
  let p = t.procs.(pid) in
  settle t p;
  match p.state with
  | P_done -> None
  | P_entry pr -> Prog.peek pr
  | P_cs pr -> Prog.peek pr
  | P_exit pr -> Prog.peek pr
  | P_recovery pr -> Prog.peek pr

(* Like [peek |> would_incur] but without materialising the option —
   this runs once per simulated step in both drivers. *)
let poised_rmr t ~pid =
  let p = t.procs.(pid) in
  settle t p;
  match p.state with
  | P_done -> false
  | P_entry (Prog.Step (loc, op, _))
  | P_cs (Prog.Step (loc, op, _))
  | P_exit (Prog.Step (loc, op, _))
  | P_recovery (Prog.Step (loc, op, _)) ->
      Rmr.would_incur t.rmr ~pid ~loc ~owner:(Memory.owner t.memory loc)
        ~is_read:(Op.is_read op)
  | P_entry (Prog.Return _)
  | P_cs (Prog.Return _)
  | P_exit (Prog.Return _)
  | P_recovery (Prog.Return _) ->
      assert false (* settled above *)

let perform t ~pid loc op =
  let old = Memory.apply t.memory ~pid loc op in
  let rmr =
    Rmr.record t.rmr ~pid ~loc ~owner:(Memory.owner t.memory loc)
      ~is_read:(Op.is_read op)
  in
  { loc; op; old_value = old; new_value = Memory.value t.memory loc; rmr }

let step t ~pid =
  let p = t.procs.(pid) in
  settle t p;
  match p.state with
  | P_done -> invalid_arg "Machine.step: process already completed"
  | P_entry (Prog.Step (loc, op, k)) ->
      let info = perform t ~pid loc op in
      p.state <- P_entry (k info.old_value);
      info
  | P_cs (Prog.Step (loc, op, k)) ->
      let info = perform t ~pid loc op in
      p.state <- P_cs (k info.old_value);
      info
  | P_exit (Prog.Step (loc, op, k)) ->
      let info = perform t ~pid loc op in
      p.state <- P_exit (k info.old_value);
      info
  | P_recovery (Prog.Step (loc, op, k)) ->
      let info = perform t ~pid loc op in
      p.state <- P_recovery (k info.old_value);
      info
  | P_entry (Prog.Return _)
  | P_cs (Prog.Return _)
  | P_exit (Prog.Return _)
  | P_recovery (Prog.Return _) ->
      assert false (* settled above *)

let crash t ~pid =
  let p = t.procs.(pid) in
  (match p.state with
  | P_done -> invalid_arg "Machine.crash: process already completed"
  | P_entry _ | P_cs _ | P_exit _ | P_recovery _ -> ());
  p.crash_count <- p.crash_count + 1;
  Rmr.on_crash t.rmr ~pid;
  p.state <- P_recovery (t.lock.Lock_intf.recover ~pid)

let run_while_local t ~pid ~cap =
  let rec loop taken =
    if taken >= cap then taken
    else begin
      match peek t ~pid with
      | None -> taken
      | Some _ ->
          if poised_rmr t ~pid then taken
          else begin
            ignore (step t ~pid);
            loop (taken + 1)
          end
    end
  in
  loop 0

let run_to_completion t ~pid ~cap ~on_step =
  let rec loop taken =
    if completed t ~pid then true
    else if taken >= cap then false
    else begin
      on_step (step t ~pid);
      loop (taken + 1)
    end
  in
  loop 0

let crashes t ~pid = t.procs.(pid).crash_count

let cs_entries t ~pid = t.procs.(pid).cs_entries

let total_rmrs t ~pid = Rmr.total t.rmr ~pid

let reset t =
  Memory.reset_values t.memory;
  Rmr.reset t.rmr;
  Array.iter
    (fun p ->
      p.state <- P_entry (t.lock.Lock_intf.entry ~pid:p.pid);
      p.crash_count <- 0;
      p.cs_entries <- 0)
    t.procs

(* Program states are immutable values ([Prog.t] is a pure free monad and
   lock instances close only over location handles), so a snapshot can
   share them; all mutable run state lives in [memory], [rmr] and the
   per-process counters captured here. *)
type snapshot = {
  s_memory : Memory.checkpoint;
  s_rmr : Rmr.snapshot;
  s_procs : (prog_state * int * int) array; (* state, crashes, cs entries *)
}

let snapshot t =
  {
    s_memory = Memory.checkpoint t.memory;
    s_rmr = Rmr.snapshot t.rmr;
    s_procs = Array.map (fun p -> (p.state, p.crash_count, p.cs_entries)) t.procs;
  }

let restore t s =
  if Array.length s.s_procs <> t.n then
    invalid_arg "Machine.restore: snapshot from a different machine";
  Memory.restore t.memory s.s_memory;
  Rmr.restore t.rmr s.s_rmr;
  Array.iteri
    (fun i (state, crash_count, cs_entries) ->
      let p = t.procs.(i) in
      p.state <- state;
      p.crash_count <- crash_count;
      p.cs_entries <- cs_entries)
    s.s_procs
