module Intset = Rme_util.Intset
module Op = Rme_memory.Op

type context = {
  n : int;
  width : int;
  model : Rme_memory.Rmr.model;
  factory : Rme_sim.Lock_intf.factory;
  local_cap : int;
  completion_cap : int;
}

type directive =
  | D_local of int
  | D_step of { pid : int; hidden_as : int list }
  | D_crash of int
  | D_complete of int

type record =
  | R_local of int
  | R_step of { loc : int; old_value : int }
  | R_crash
  | R_complete of int

let pid_of_directive = function
  | D_local p | D_step { pid = p; _ } | D_crash p | D_complete p -> p

exception Diverged of string

let diverged fmt = Printf.ksprintf (fun m -> raise (Diverged m)) fmt

type play = {
  m : Machine.t;
  mutable visible : (int, Intset.t) Hashtbl.t;
  mutable checked : int;
}

let fresh_play ctx =
  {
    m = Machine.create ~n:ctx.n ~width:ctx.width ~model:ctx.model ctx.factory;
    visible = Hashtbl.create 256;
    checked = 0;
  }

let visible_at play loc =
  Option.value ~default:Intset.empty (Hashtbl.find_opt play.visible loc)

let update_visible play ~pid ~loc ~op ~old_value =
  match op with
  | Op.Read -> ()
  | Op.Write _ | Op.Fas _ -> Hashtbl.replace play.visible loc (Intset.singleton pid)
  | Op.Cas { expected; _ } ->
      if old_value = expected then
        Hashtbl.replace play.visible loc (Intset.singleton pid)
  | Op.Faa _ | Op.Rmw _ ->
      Hashtbl.replace play.visible loc (Intset.add pid (visible_at play loc))

let do_local play ~pid =
  let info = Machine.step play.m ~pid in
  if info.Machine.rmr then
    diverged "local step of p%d incurred an RMR" pid;
  update_visible play ~pid ~loc:info.Machine.loc ~op:info.Machine.op
    ~old_value:info.Machine.old_value;
  info

let do_step play ~pid ~hidden_as =
  let info = Machine.step play.m ~pid in
  (match hidden_as with
  | [] ->
      update_visible play ~pid ~loc:info.Machine.loc ~op:info.Machine.op
        ~old_value:info.Machine.old_value
  | v ->
      (* Officially, the crash-bound A-processes produced this value. *)
      Hashtbl.replace play.visible info.Machine.loc
        (List.fold_left (fun acc p -> Intset.add p acc) Intset.empty v));
  info

let do_complete play ctx ~pid ~on_step =
  let count = ref 0 in
  let ok =
    Machine.run_to_completion play.m ~pid ~cap:ctx.completion_cap
      ~on_step:(fun info ->
        incr count;
        update_visible play ~pid ~loc:info.Machine.loc ~op:info.Machine.op
          ~old_value:info.Machine.old_value;
        on_step info)
  in
  (ok, !count)

let exec_replay play ctx ?(on_event = fun ~pid:_ _ -> ()) (d, r) =
  match (d, r) with
  | D_local pid, R_local expected ->
      let taken = ref 0 in
      let continue = ref true in
      while !continue do
        match Machine.peek play.m ~pid with
        | None -> continue := false
        | Some _ ->
            if Machine.poised_rmr play.m ~pid || !taken >= expected then
              continue := false
            else begin
              let info = do_local play ~pid in
              on_event ~pid info;
              incr taken
            end
      done;
      if !taken <> expected then
        diverged "replay: p%d took %d local steps, expected %d" pid !taken
          expected;
      play.checked <- play.checked + 1
  | D_step { pid; hidden_as }, R_step { loc; old_value } ->
      let info = do_step play ~pid ~hidden_as in
      on_event ~pid info;
      if info.Machine.loc <> loc || info.Machine.old_value <> old_value then
        diverged "replay: p%d observed (R%d, %d), expected (R%d, %d)" pid
          info.Machine.loc info.Machine.old_value loc old_value;
      play.checked <- play.checked + 1
  | D_crash pid, R_crash -> Machine.crash play.m ~pid
  | D_complete pid, R_complete expected ->
      let ok, count =
        do_complete play ctx ~pid ~on_step:(fun info -> on_event ~pid info)
      in
      if not ok then diverged "replay: p%d did not complete" pid;
      if count <> expected then
        diverged "replay: p%d completed in %d steps, expected %d" pid count
          expected;
      play.checked <- play.checked + 1
  | D_local _, (R_step _ | R_crash | R_complete _)
  | D_step _, (R_local _ | R_crash | R_complete _)
  | D_crash _, (R_local _ | R_step _ | R_complete _)
  | D_complete _, (R_local _ | R_step _ | R_crash) ->
      diverged "replay: directive/record mismatch"

let replay ctx ?(keep = fun _ -> true) ?on_event directives =
  let play = fresh_play ctx in
  Array.iter
    (fun dr ->
      if keep (pid_of_directive (fst dr)) then exec_replay play ctx ?on_event dr)
    directives;
  play

let reset_play play =
  Machine.reset play.m;
  Hashtbl.reset play.visible;
  play.checked <- 0

let replay_into play ctx ?(keep = fun _ -> true) ?on_event directives =
  reset_play play;
  Rme_util.Vec.iter
    (fun dr ->
      if keep (pid_of_directive (fst dr)) then exec_replay play ctx ?on_event dr)
    directives

type play_snapshot = {
  ps_machine : Machine.snapshot;
  ps_visible : (int, Intset.t) Hashtbl.t;
}

let snapshot_play play =
  {
    ps_machine = Machine.snapshot play.m;
    ps_visible = Hashtbl.copy play.visible;
  }

let restore_play play s =
  Machine.restore play.m s.ps_machine;
  (* The snapshot's table stays pristine: hand the play a copy. *)
  play.visible <- Hashtbl.copy s.ps_visible;
  play.checked <- 0
