(** An adversary-controlled simulation of one-shot mutual exclusion.

    Unlike {!Rme_sim.Harness}, which owns the interleaving policy, the
    [Machine] exposes single-step control: the lower-bound adversary peeks
    at each process's poised operation, executes chosen steps one at a
    time, injects crash steps, and runs selected processes to completion —
    exactly the moves of the proof's schedule construction.

    Processes run {e one-shot} mutual exclusion (assumptions (A2)/(A3) of
    the paper): a single super-passage, whose critical section performs
    exactly one RMR-incurring step. *)

type phase = In_entry | In_cs | In_exit | In_recovery | Completed

type step_info = {
  loc : Rme_memory.Memory.loc;
  op : Rme_memory.Op.t;
  old_value : int;
  new_value : int;
  rmr : bool;
}

type t

val create :
  n:int ->
  width:int ->
  model:Rme_memory.Rmr.model ->
  Rme_sim.Lock_intf.factory ->
  t

val memory : t -> Rme_memory.Memory.t
val rmr : t -> Rme_memory.Rmr.t
val n : t -> int

val phase : t -> pid:int -> phase

val completed : t -> pid:int -> bool

val peek : t -> pid:int -> (Rme_memory.Memory.loc * Rme_memory.Op.t) option
(** The poised shared-memory operation of a process, resolving pending
    phase transitions first. [None] once completed. *)

val poised_rmr : t -> pid:int -> bool
(** Whether the poised operation would incur an RMR right now. *)

val step : t -> pid:int -> step_info
(** Execute the poised operation. Raises [Invalid_argument] on a
    completed process. *)

val crash : t -> pid:int -> unit
(** Crash step: discards the continuation (local state reset), drops the
    CC cache, starts the recover protocol. *)

val run_while_local : t -> pid:int -> cap:int -> int
(** Execute steps of [pid] as long as they would {e not} incur an RMR
    (the setup phase of a round), at most [cap] of them; returns how many
    were taken. Stops early when the process completes or becomes poised
    on an RMR-incurring step. *)

val run_to_completion : t -> pid:int -> cap:int -> on_step:(step_info -> unit) -> bool
(** Run [pid] until its super-passage completes (entry, one CS step,
    exit), calling [on_step] on every shared-memory step. Returns [false]
    if the cap was exhausted first (the process is blocked on someone). *)

val crashes : t -> pid:int -> int

val cs_entries : t -> pid:int -> int
(** How many times the process has entered the critical section
    (invariant (I7) requires 0 for every active process). *)

val total_rmrs : t -> pid:int -> int

val reset : t -> unit
(** Return the machine to its just-created state in place — memory back
    to initial values, RMR accounting zeroed, every process poised at
    the top of its entry section — without re-running the lock
    constructor. The workhorse of replay: re-executing a schedule needs
    a fresh machine per attempt, and construction (allocation plus name
    formatting for every cell) would otherwise dominate. *)

type snapshot
(** Complete machine state at a point in time. Program states are
    immutable and shared, not copied; memory values, RMR counters and
    CC cache state are deep-copied. *)

val snapshot : t -> snapshot

val restore : t -> snapshot -> unit
(** Restore a snapshot taken from this machine (or one of identical
    construction). Raises [Invalid_argument] on a mismatched one. *)
