module Memory = Rme_memory.Memory
module Op = Rme_memory.Op
module Rmr = Rme_memory.Rmr
module Splitmix = Rme_util.Splitmix
module Vec = Rme_util.Vec

type policy = Round_robin | Random_policy of int

type crash_policy =
  | No_crashes
  | Crash_prob of { prob : float; seed : int }
  | Crash_script of (int * int) list
  | System_crash_script of int list
  | System_crash_prob of { prob : float; seed : int; max : int }

type config = {
  n : int;
  width : int;
  model : Rmr.model;
  superpassages : int;
  policy : policy;
  crashes : crash_policy;
  allow_cs_crash : bool;
  max_crashes_per_process : int;
  step_budget : int;
  deadline : float option;
  record_trace : bool;
  cs : (pid:int -> attempt:int -> unit Prog.t) option;
}

(* The default scheduler-turn budget: a constant floor for tiny runs
   plus an n^2 term (each of n processes may legitimately wait out
   O(n) critical sections under contention). Exposed so experiments
   and front-ends can scale or override it. *)
let default_step_budget ~n = 20_000 + (4_000 * n * n)

let default_config ~n ~width model =
  {
    n;
    width;
    model;
    superpassages = 1;
    policy = Round_robin;
    crashes = No_crashes;
    allow_cs_crash = false;
    max_crashes_per_process = 1;
    step_budget = default_step_budget ~n;
    deadline = None;
    record_trace = false;
    cs = None;
  }

type proc_stats = {
  pid : int;
  passages : int;
  crashes : int;
  total_rmrs : int;
  passage_rmrs : int array;
  max_passage_rmr : int;
  cs_entries : int;
  max_bypass : int;
}

type result = {
  ok : bool;
  completed : bool;
  timed_out : bool;
  steps : int;
  violations : string list;
  procs : proc_stats array;
  max_passage_rmr : int;
  mean_passage_rmr : float;
  total_crashes : int;
  trace : Trace.t option;
  memory : Memory.t;
  model : Rmr.model;
}

type phase =
  | Remainder
  | Entry of unit Prog.t
  | Cs of unit Prog.t
  | Exit of unit Prog.t
  | Recovery of Lock_intf.resume Prog.t
  | Finished

type proc = {
  p_pid : int;
  mutable p_phase : phase;
  mutable p_left : int;
  mutable p_crashes : int;
  mutable p_cs_entries : int;
  mutable p_cs_rmrs : int; (* CS-step RMRs in the current passage *)
  mutable p_in_passage : bool;
  p_passage_rmrs : int Vec.t;
  mutable p_pending_crashes : int list; (* script: step thresholds, sorted *)
  mutable p_cs_this_sp : bool; (* CS entered during the current super-passage *)
  mutable p_requested_at : int; (* global CS-entry count when this super-passage began *)
  mutable p_max_bypass : int;
  mutable p_spin_loc : int;
      (* Stutter detection: when >= 0, the process is spinning — it read
         [p_spin_val] from this location and is poised to read it again.
         Re-executing the read before the value changes provably
         reproduces the same state (continuations depend only on the
         value read), so the scheduler skips it; this both matches the
         per-invalidation RMR counting convention and keeps large
         simulations near-linear. -1 when not spinning (two plain int
         fields rather than an option: this is written on every step). *)
  mutable p_spin_val : int;
}

let section_of_phase = function
  | Entry _ -> Trace.In_entry
  | Cs _ -> Trace.In_cs
  | Exit _ -> Trace.In_exit
  | Recovery _ -> Trace.In_recovery
  | Remainder | Finished -> Trace.In_entry (* unreachable in practice *)

(* The single critical-section step of assumption (A2): one RMR-incurring
   operation on a location outside the lock's object set. *)
let cs_program cs_loc ~pid = Prog.write cs_loc (pid land 1)

let validate config (factory : Lock_intf.factory) =
  if not (Lock_intf.supports factory ~n:config.n ~width:config.width) then
    invalid_arg
      (Printf.sprintf
         "Harness.run: lock %s needs width >= %d for n = %d (got %d)"
         factory.name
         (factory.min_width ~n:config.n)
         config.n config.width);
  match config.crashes with
  | No_crashes -> ()
  | Crash_prob _ | Crash_script _ | System_crash_script _ | System_crash_prob _
    ->
      if not factory.recoverable then
        invalid_arg
          (Printf.sprintf
             "Harness.run: lock %s is not recoverable; cannot inject crashes"
             factory.name)

let run config (factory : Lock_intf.factory) =
  validate config factory;
  let memory = Memory.create ~width:config.width in
  let lock = factory.make memory ~n:config.n in
  let cs_loc = Memory.alloc memory ~name:"cs-cell" ~init:0 in
  let rmr = Rmr.create config.model ~n:config.n in
  let trace = if config.record_trace then Some (Trace.create ()) else None in
  let violations = ref [] in
  let violate fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  (* [holder] is the logical lock holder: set when a process first enters
     the critical section of a super-passage, cleared when its exit
     protocol completes. Crashes do not clear it: a crashed holder still
     excludes everyone else until it recovers and releases. *)
  let holder = ref None in
  let global_cs_entries = ref 0 in
  let crash_rng =
    match config.crashes with
    | Crash_prob { seed; _ } | System_crash_prob { seed; _ } ->
        Some (Splitmix.create seed)
    | No_crashes | Crash_script _ | System_crash_script _ -> None
  in
  let scripted pid =
    match config.crashes with
    | Crash_script l ->
        List.filter_map (fun (s, p) -> if p = pid then Some s else None) l
        |> List.sort compare
    | No_crashes | Crash_prob _ | System_crash_script _ | System_crash_prob _ ->
        []
  in
  let sys_pending =
    ref
      (match config.crashes with
      | System_crash_script l -> List.sort compare l
      | No_crashes | Crash_prob _ | Crash_script _ | System_crash_prob _ -> [])
  in
  let sys_crashes = ref 0 in
  let procs =
    Array.init config.n (fun pid ->
        {
          p_pid = pid;
          p_phase = Remainder;
          p_left = config.superpassages;
          p_crashes = 0;
          p_cs_entries = 0;
          p_cs_rmrs = 0;
          p_in_passage = false;
          p_passage_rmrs = Vec.create ();
          p_pending_crashes = scripted pid;
          p_cs_this_sp = false;
          p_requested_at = 0;
          p_max_bypass = 0;
          p_spin_loc = -1;
          p_spin_val = 0;
        })
  in
  let steps = ref 0 in
  let end_passage p =
    if p.p_in_passage then begin
      let count = Rmr.passage rmr ~pid:p.p_pid - p.p_cs_rmrs in
      ignore (Vec.push p.p_passage_rmrs count);
      p.p_in_passage <- false
    end
  in
  let begin_passage p =
    Rmr.start_passage rmr ~pid:p.p_pid;
    p.p_cs_rmrs <- 0;
    p.p_in_passage <- true
  in
  let cs_body p =
    let pid = p.p_pid in
    match config.cs with
    | Some body -> body ~pid ~attempt:(config.superpassages - p.p_left)
    | None -> cs_program cs_loc ~pid
  in
  let enter_cs p =
    (match !holder with
    | Some q when q <> p.p_pid ->
        violate "mutual exclusion violated: p%d entered CS while p%d holds the lock"
          p.p_pid q
    | Some _ | None -> ());
    holder := Some p.p_pid;
    p.p_cs_entries <- p.p_cs_entries + 1;
    if not p.p_cs_this_sp then begin
      (* First CS entry of this super-passage: how many other entries
         happened since the request? *)
      p.p_max_bypass <-
        max p.p_max_bypass (!global_cs_entries - p.p_requested_at);
      incr global_cs_entries
    end;
    p.p_cs_this_sp <- true;
    p.p_phase <- Cs (cs_body p)
  in
  let release_holder p =
    match !holder with
    | Some q when q = p.p_pid -> holder := None
    | Some _ | None -> ()
  in
  let finish_superpassage p =
    (* Every super-passage must pass through the critical section exactly
       once; a recover protocol that skips to Passage_done without the CS
       having run has lost a request. *)
    if not p.p_cs_this_sp then
      violate "p%d completed a super-passage without entering the critical section"
        p.p_pid;
    p.p_cs_this_sp <- false;
    end_passage p;
    release_holder p;
    p.p_left <- p.p_left - 1;
    p.p_phase <- (if p.p_left = 0 then Finished else Remainder)
  in
  (* Resolve phase transitions until the process is poised on a
     shared-memory step (or finished). Each [Cs] program contains at least
     one step, so the cascade terminates. *)
  let rec settle p =
    match p.p_phase with
    | Finished -> ()
    | Remainder ->
        if p.p_left > 0 then begin
          begin_passage p;
          p.p_requested_at <- !global_cs_entries;
          p.p_phase <- Entry (lock.Lock_intf.entry ~pid:p.p_pid);
          settle p
        end
        else p.p_phase <- Finished
    | Entry (Prog.Return ()) ->
        enter_cs p;
        settle p
    | Cs (Prog.Return ()) ->
        (* The critical section is over once the process starts its exit
           protocol; mutual exclusion constrains the CS only. A crash
           *inside* the CS, by contrast, keeps the holder set: the crashed
           process must re-enter before anyone else may. *)
        release_holder p;
        p.p_phase <- Exit (lock.Lock_intf.exit ~pid:p.p_pid);
        settle p
    | Exit (Prog.Return ()) -> finish_superpassage p
    | Recovery (Prog.Return resume) -> begin
        match resume with
        | Lock_intf.Resume_entry ->
            p.p_phase <- Entry (lock.Lock_intf.entry ~pid:p.p_pid);
            settle p
        | Lock_intf.In_cs ->
            enter_cs p;
            settle p
        | Lock_intf.Resume_exit ->
            p.p_phase <- Exit (lock.Lock_intf.exit ~pid:p.p_pid);
            settle p
        | Lock_intf.Passage_done -> finish_superpassage p
      end
    | Entry (Prog.Step _) | Cs (Prog.Step _) | Exit (Prog.Step _)
    | Recovery (Prog.Step _) ->
        ()
  in
  let crashable p =
    factory.recoverable
    && p.p_crashes < config.max_crashes_per_process
    &&
    match p.p_phase with
    | Entry _ | Exit _ | Recovery _ -> true
    | Cs _ -> config.allow_cs_crash
    | Remainder | Finished -> false
  in
  let crash_fires p =
    crashable p
    &&
    match config.crashes with
    | No_crashes | System_crash_script _ | System_crash_prob _ -> false
    | Crash_prob { prob; _ } -> (
        match crash_rng with
        | Some rng -> Splitmix.float rng < prob
        | None -> false)
    | Crash_script _ -> (
        match p.p_pending_crashes with
        | s :: rest when s <= !steps ->
            p.p_pending_crashes <- rest;
            true
        | _ :: _ | [] -> false)
  in
  let do_crash p =
    let section = section_of_phase p.p_phase in
    p.p_crashes <- p.p_crashes + 1;
    end_passage p;
    Rmr.on_crash rmr ~pid:p.p_pid;
    (match trace with
    | Some t -> Trace.record t (Trace.Crash { pid = p.p_pid; section })
    | None -> ());
    begin_passage p;
    p.p_spin_loc <- -1;
    p.p_phase <- Recovery (lock.Lock_intf.recover ~pid:p.p_pid)
  in
  (* Perform one atomic shared-memory operation for [p], with accounting
     and tracing, and return the pre-operation value. *)
  let perform p loc op section =
    let old = Memory.apply memory ~pid:p.p_pid loc op in
    let incurred =
      Rmr.record rmr ~pid:p.p_pid ~loc ~owner:(Memory.owner memory loc)
        ~is_read:(Op.is_read op)
    in
    if incurred && section = Trace.In_cs then p.p_cs_rmrs <- p.p_cs_rmrs + 1;
    (match trace with
    | Some t ->
        Trace.record t
          (Trace.Step
             {
               pid = p.p_pid;
               loc;
               op;
               old_value = old;
               new_value = Memory.value memory loc;
               rmr = incurred;
               section;
             })
    | None -> ());
    old
  in
  (* Location of a poised read, -1 otherwise — queried twice per step. *)
  let poised_read_loc = function
    | Entry (Prog.Step (loc, Op.Read, _))
    | Cs (Prog.Step (loc, Op.Read, _))
    | Exit (Prog.Step (loc, Op.Read, _))
    | Recovery (Prog.Step (loc, Op.Read, _)) ->
        loc
    | Entry _ | Cs _ | Exit _ | Recovery _ | Remainder | Finished -> -1
  in
  let execute p =
    let was_read = poised_read_loc p.p_phase in
    (match p.p_phase with
    | Entry (Prog.Step (loc, op, k)) ->
        p.p_phase <- Entry (k (perform p loc op Trace.In_entry))
    | Cs (Prog.Step (loc, op, k)) ->
        p.p_phase <- Cs (k (perform p loc op Trace.In_cs))
    | Exit (Prog.Step (loc, op, k)) ->
        p.p_phase <- Exit (k (perform p loc op Trace.In_exit))
    | Recovery (Prog.Step (loc, op, k)) ->
        p.p_phase <- Recovery (k (perform p loc op Trace.In_recovery))
    | Remainder | Finished
    | Entry (Prog.Return _)
    | Cs (Prog.Return _)
    | Exit (Prog.Return _)
    | Recovery (Prog.Return _) ->
        assert false);
    if was_read >= 0 && poised_read_loc p.p_phase = was_read then begin
      p.p_spin_loc <- was_read;
      p.p_spin_val <- Memory.value memory was_read
    end
    else p.p_spin_loc <- -1
  in
  let sched_rng =
    match config.policy with
    | Random_policy seed -> Some (Splitmix.create seed)
    | Round_robin -> None
  in
  let rr_cursor = ref 0 in
  let still_spinning p =
    if p.p_spin_loc < 0 then false
    else if Memory.value memory p.p_spin_loc = p.p_spin_val then true
    else begin
      p.p_spin_loc <- -1;
      false
    end
  in
  (* Candidate pids in ascending order, rebuilt into one shared buffer
     every step — the scheduler allocates nothing per iteration. *)
  let cand = Array.make config.n 0 in
  let runnable () =
    let len = ref 0 in
    let spinners = ref 0 in
    for pid = 0 to config.n - 1 do
      match procs.(pid).p_phase with
      | Finished -> ()
      | Remainder ->
          if procs.(pid).p_left > 0 then begin
            cand.(!len) <- pid;
            incr len
          end
          else procs.(pid).p_phase <- Finished
      | Entry _ | Cs _ | Exit _ | Recovery _ ->
          if still_spinning procs.(pid) then incr spinners
          else begin
            cand.(!len) <- pid;
            incr len
          end
    done;
    (* If every unfinished process is a blocked spinner, nothing can ever
       change: surface them so the step budget flags the deadlock. *)
    if !len = 0 && !spinners > 0 then
      for pid = 0 to config.n - 1 do
        match procs.(pid).p_phase with
        | Entry _ | Cs _ | Exit _ | Recovery _ ->
            cand.(!len) <- pid;
            incr len
        | Remainder | Finished -> ()
      done;
    !len
  in
  let pick len =
    match (config.policy, sched_rng) with
    | Round_robin, _ ->
        (* Advance a global cursor; pick the first candidate at or after it. *)
        let rec find i =
          if i >= len then cand.(0)
          else if cand.(i) >= !rr_cursor then cand.(i)
          else find (i + 1)
        in
        let pid = find 0 in
        rr_cursor := (pid + 1) mod config.n;
        pid
    | Random_policy _, Some rng -> cand.(Splitmix.int rng len)
    | Random_policy _, None -> assert false
  in
  let completed = ref false in
  let timed_out = ref false in
  (* Budget check, consulted only while runnable work remains — so
     exhausting it always means the run was cut short. The wall-clock
     deadline is polled every 1024 turns: cheap enough to leave on,
     frequent enough that a pathological cell overshoots its budget by
     at most one poll interval. *)
  let budget_left () =
    if !steps >= config.step_budget then begin
      timed_out := true;
      false
    end
    else
      match config.deadline with
      | Some d when !steps land 1023 = 0 && Unix.gettimeofday () > d ->
          timed_out := true;
          false
      | _ -> true
  in
  (* System-wide crash: every process outside the remainder crashes at
     the same instant, and the lock's epoch counter — the Golab–Hendler
     system support — is incremented. *)
  let system_crash_fires () =
    match config.crashes with
    | System_crash_script _ -> (
        match !sys_pending with
        | s :: rest when s <= !steps ->
            sys_pending := rest;
            true
        | _ :: _ | [] -> false)
    | System_crash_prob { prob; max; _ } -> (
        !sys_crashes < max
        &&
        match crash_rng with
        | Some rng -> Splitmix.float rng < prob
        | None -> false)
    | No_crashes | Crash_prob _ | Crash_script _ -> false
  in
  let do_system_crash () =
    incr sys_crashes;
    (match lock.Lock_intf.system_epoch with
    | Some epoch ->
        (* The system's epoch increment is a real non-read operation on
           shared memory: it invalidates cache copies (processes in the
           remainder may hold one) and appears in the trace. It is
           attributed to no process's RMR count. *)
        let old = Memory.apply memory ~pid:0 epoch (Op.Faa 1) in
        (match Rmr.cache rmr with
        | Some c ->
            ignore (Rme_memory.Cache.access c ~pid:0 ~loc:epoch ~is_read:false)
        | None -> ());
        (match trace with
        | Some t ->
            Trace.record t
              (Trace.Step
                 {
                   pid = 0;
                   loc = epoch;
                   op = Op.Faa 1;
                   old_value = old;
                   new_value = Memory.value memory epoch;
                   rmr = true;
                   section = Trace.In_recovery;
                 })
        | None -> ())
    | None -> ());
    Array.iter
      (fun p ->
        settle p;
        match p.p_phase with
        | Entry _ | Cs _ | Exit _ | Recovery _ -> do_crash p
        | Remainder | Finished -> ())
      procs
  in
  let rec loop () =
    let len = runnable () in
    if len = 0 then completed := true
    else if budget_left () then begin
      if system_crash_fires () then do_system_crash ();
      let pid = pick len in
      let p = procs.(pid) in
      settle p;
      (match p.p_phase with
      | Finished | Remainder -> () (* settled into completion *)
      | Entry _ | Cs _ | Exit _ | Recovery _ ->
          if crash_fires p then do_crash p else execute p;
          (* Settle eagerly so "runnable" reflects completion. *)
          settle p);
      incr steps;
      loop ()
    end
  in
  loop ();
  let proc_stats p =
    let arr = Vec.to_array p.p_passage_rmrs in
    {
      pid = p.p_pid;
      passages = Array.length arr;
      crashes = p.p_crashes;
      total_rmrs = Rmr.total rmr ~pid:p.p_pid;
      passage_rmrs = arr;
      max_passage_rmr = Array.fold_left max 0 arr;
      cs_entries = p.p_cs_entries;
      max_bypass = p.p_max_bypass;
    }
  in
  let stats = Array.map proc_stats procs in
  let all_passages =
    Array.to_list stats
    |> List.concat_map (fun s -> Array.to_list s.passage_rmrs)
  in
  let max_passage_rmr = List.fold_left max 0 all_passages in
  let mean_passage_rmr =
    match all_passages with
    | [] -> 0.0
    | l -> float_of_int (List.fold_left ( + ) 0 l) /. float_of_int (List.length l)
  in
  let violations = List.rev !violations in
  {
    ok = !completed && violations = [];
    completed = !completed;
    timed_out = !timed_out;
    steps = !steps;
    violations;
    procs = stats;
    max_passage_rmr;
    mean_passage_rmr;
    total_crashes = Array.fold_left (fun acc p -> acc + p.p_crashes) 0 procs;
    trace;
    memory;
    model = config.model;
  }
