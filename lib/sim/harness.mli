(** The workload scheduler: runs [n] processes through super-passages of a
    lock under a chosen interleaving policy and crash regime, accounting
    RMRs per passage and checking the two RME correctness properties the
    paper requires (mutual exclusion and deadlock-freedom).

    Passage accounting follows the paper's definitions exactly: a passage
    begins with the first shared-memory step of the entry or recover
    protocol and ends with the next crash step or with the completion of
    the exit protocol. The one critical-section step each process performs
    (assumption (A2)) is excluded from the passage's RMR count, since the
    paper measures the RMR complexity of the mutual exclusion protocol
    itself. *)

type policy =
  | Round_robin
  | Random_policy of int  (** Uniform choice among runnable processes. *)

type crash_policy =
  | No_crashes
  | Crash_prob of { prob : float; seed : int }
      (** Before each shared-memory step of a crashable section, crash
          instead with this probability (subject to the per-process cap). *)
  | Crash_script of (int * int) list
      (** [(s, p)]: process [p] crashes the first time it is about to take
          a step at global step index [>= s]. *)
  | System_crash_script of int list
      (** System-wide crash model: at each listed global step index,
          {e every} process outside the remainder section crashes
          simultaneously, and the lock's [system_epoch] counter (if any)
          is incremented — the Golab–Hendler model [11]. *)
  | System_crash_prob of { prob : float; seed : int; max : int }
      (** System-wide crashes with the given per-turn probability, at
          most [max] of them. *)

type config = {
  n : int;
  width : int;
  model : Rme_memory.Rmr.model;
  superpassages : int;  (** Super-passages each process must complete. *)
  policy : policy;
  crashes : crash_policy;
  allow_cs_crash : bool;
      (** Whether crash injection may also strike inside the critical
          section (exercises critical-section re-entry). *)
  max_crashes_per_process : int;
  step_budget : int;
      (** Scheduler turns before the run is declared stuck; generous
          budgets make the deadlock-freedom check meaningful. *)
  deadline : float option;
      (** Absolute wall-clock cutoff ([Unix.gettimeofday] scale),
          polled every 1024 turns: when exceeded with runnable work
          remaining, the run stops with [timed_out] set, exactly as if
          the step budget ran out. [None] (the default) means steps
          only. Note that a wall-clock cutoff is inherently
          nondeterministic — callers that persist results must treat a
          timed-out result as retryable, never as the cell's final
          value (see the engine's resume semantics). *)
  record_trace : bool;
  cs : (pid:int -> attempt:int -> unit Prog.t) option;
      (** The critical-section body. [None] gives the paper's assumption
          (A2): a single RMR-incurring write to a scratch cell. Supplying
          a program models a real protected workload; after a crash
          inside the CS the whole body re-runs (critical-section
          re-entry), so bodies should be written idempotently, as real
          NVRAM workloads are. [attempt] is the 0-based super-passage
          index of the process — a stable request identity that re-runs
          of the same super-passage share (the role a client-supplied
          request ID plays in a real recoverable service). *)
}

val default_config : n:int -> width:int -> Rme_memory.Rmr.model -> config
(** One super-passage per process, round-robin, no crashes, a step
    budget of {!default_step_budget}, and no wall-clock deadline. *)

val default_step_budget : n:int -> int
(** The budget formula [default_config] applies: a constant floor for
    tiny runs plus an [n^2] term (each of [n] processes may
    legitimately wait out [O(n)] critical sections under contention).
    Exposed so experiments and front-ends can scale or override it
    deliberately rather than copying the formula. *)

type proc_stats = {
  pid : int;
  passages : int;
  crashes : int;
  total_rmrs : int;  (** All RMRs including critical-section steps. *)
  passage_rmrs : int array;
      (** RMRs of each completed passage, critical-section steps
          excluded. *)
  max_passage_rmr : int;
  cs_entries : int;
  max_bypass : int;
      (** Fairness: the most critical-section entries by other processes
          between one of this process's super-passage requests and its
          own CS entry. FIFO locks keep this below [n]; unfair locks do
          not. *)
}

type result = {
  ok : bool;  (** Completed within budget with no violations. *)
  completed : bool;
  timed_out : bool;
      (** The run was cut short — step budget exhausted or wall-clock
          deadline passed — with runnable work remaining. Implies
          [not completed]; a deadlocked protocol surfaces here rather
          than hanging the harness. *)
  steps : int;
  violations : string list;
  procs : proc_stats array;
  max_passage_rmr : int;  (** Maximum over all passages of all processes. *)
  mean_passage_rmr : float;
  total_crashes : int;
  trace : Trace.t option;
  memory : Rme_memory.Memory.t;
  model : Rme_memory.Rmr.model;
}

val run : config -> Lock_intf.factory -> result
(** Raises [Invalid_argument] if the lock does not support the configured
    word width for [n] processes, or if crashes are requested of a
    non-recoverable lock. *)
