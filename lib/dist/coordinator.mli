(** The coordinator side of multi-process cell sharding.

    A coordinator owns a fixed set of worker slots. Each slot runs an
    [argv]-spawned subprocess speaking the {!Protocol} over pipes
    (worker stdin/stdout); stderr is inherited, so worker warnings
    surface normally. Batches of [(section, encoded-key)] tasks are
    handed out chunk-wise and the encoded results collected.

    Robust by construction — every failure mode degrades, none
    escalates:

    - {b handshake}: a worker must answer [hello] with [ready
      <fingerprint>] matching the coordinator's own before any work is
      sent. A mismatched fingerprint permanently disqualifies the slot
      (respawning the same binary cannot fix it).
    - {b death} (exit, SIGKILL): detected as EOF on the result pipe;
      the in-flight batch is requeued to the survivors.
    - {b hang}: a batch (or handshake) outliving its deadline gets the
      worker killed and its batch requeued.
    - {b torn / garbage frames}: an undecodable frame or an over-limit
      length drops the worker and requeues its batch — a corrupt
      stream is never resynchronised.
    - {b respawn}: lost slots are respawned with exponential backoff,
      bounded by a total respawn budget.
    - {b total loss}: tasks that no worker can serve come back as
      [None] from {!run}; the caller computes them in-process.

    The coordinator is single-threaded: {!run} multiplexes all worker
    pipes with [select] over non-blocking descriptors, so a peer that
    sends half a frame and stalls can never block it. *)

type config = {
  workers : int;  (** number of worker slots (>= 1). *)
  argv : string array;  (** worker command line, [argv.(0)] = program. *)
  fingerprint : string;  (** required worker code fingerprint. *)
  batch_deadline : float;  (** seconds a worker may hold one batch. *)
  handshake_deadline : float;  (** seconds from spawn to [ready]. *)
  max_respawns : int;  (** total respawn budget across the run. *)
  backoff_base : float;  (** first respawn delay; doubles per attempt. *)
  chunk : int option;  (** tasks per batch; [None] = auto from count. *)
}

val default_config :
  ?batch_deadline:float ->
  ?handshake_deadline:float ->
  ?max_respawns:int ->
  ?backoff_base:float ->
  ?chunk:int ->
  workers:int ->
  argv:string array ->
  fingerprint:string ->
  unit ->
  config
(** Defaults: 300 s batch deadline (cells at crossover scale are slow),
    10 s handshake deadline, 3 respawns, 50 ms base backoff, auto
    chunking. *)

type stats = {
  spawned : int;  (** worker processes started (incl. respawns). *)
  lost : int;  (** workers dropped: death, hang, corrupt stream, bad
                   fingerprint. *)
  requeued : int;  (** in-flight tasks returned to the queue by a
                       worker failure. *)
  remote : int;  (** tasks completed by workers. *)
  unserved : int;  (** tasks handed back to the caller as [None]. *)
}

type t

val create : config -> t
(** Spawn the worker slots (handshakes complete lazily inside
    {!run}). Never raises: a slot that cannot spawn is simply lost
    and charged to the respawn budget. *)

val config : t -> config
val stats : t -> stats

val run :
  t ->
  tasks:(string * string) array ->
  ?on_done:(int -> unit) ->
  ?on_result:(int -> string -> unit) ->
  ?should_stop:(unit -> bool) ->
  unit ->
  string option array
(** [run t ~tasks ()] distributes [tasks.(i) = (section, key)] over
    the live workers and returns the encoded values, index-aligned.
    [None] marks a task no worker could serve (all workers lost, or
    the worker reported the entry unservable); the caller computes
    those in-process. [on_done i] fires once per task completed
    remotely — progress aggregation. [on_result i value] fires at the
    same moment with the encoded value, letting the caller commit
    results incrementally (so a cancellation mid-run keeps them).
    [should_stop], polled between scheduling steps, cancels
    gracefully: no further batches are handed out, in-flight batches
    drain normally (their results still fire the callbacks), and the
    undistributed remainder comes back [None]. A [t] is reusable
    across many [run] calls; workers stay warm in between. *)

val shutdown : t -> unit
(** Close the pipes (workers see EOF and exit), reap the processes
    (escalating to SIGKILL), release the slots. Idempotent. *)
