(** The coordinator/worker message vocabulary, carried as frame
    payloads (see {!Frame}).

    Payloads are text: a first line naming the message, then one line
    per batch entry in the store's canonical shape — keys are the
    engine's serialised cell keys ([Rme_store.Codec] field syntax, so
    they contain spaces but never a newline or the [" := "]
    separator), values are serialised results.

    {v
    hello <fingerprint>                    coordinator -> worker
    ready <fingerprint>                    worker -> coordinator
    batch <id>                             coordinator -> worker
    <section> <key>
    ...
    result <id>                            worker -> coordinator
    ok <section> <key> := <value>          (computed)
    no <section> <key>                     (key undecodable / compute failed)
    ...
    v}

    The handshake runs first on every connection: the coordinator
    refuses to hand work to a worker whose fingerprint differs from
    its own (a worker built from different code would silently produce
    numbers filed under the wrong identity). *)

type msg =
  | Hello of string  (** coordinator's code fingerprint. *)
  | Ready of string  (** worker's code fingerprint. *)
  | Batch of int * (string * string) list
      (** [(id, [(section, key)])] — compute these cells. *)
  | Result of int * (string * string * string option) list
      (** [(id, [(section, key, value)])] — [None] marks an entry the
          worker could not serve (the coordinator computes it
          in-process; it is never re-sent to a worker). *)

val encode : msg -> string

val decode : string -> msg option
(** Total: arbitrary bytes decode to [None], never an exception. *)
