type msg =
  | Hello of string
  | Ready of string
  | Batch of int * (string * string) list
  | Result of int * (string * string * string option) list

let entry_sep = " := "

let encode = function
  | Hello fp -> "hello " ^ fp
  | Ready fp -> "ready " ^ fp
  | Batch (id, tasks) ->
      let buf = Buffer.create 256 in
      Buffer.add_string buf (Printf.sprintf "batch %d" id);
      List.iter
        (fun (section, key) ->
          Buffer.add_char buf '\n';
          Buffer.add_string buf section;
          Buffer.add_char buf ' ';
          Buffer.add_string buf key)
        tasks;
      Buffer.contents buf
  | Result (id, entries) ->
      let buf = Buffer.create 256 in
      Buffer.add_string buf (Printf.sprintf "result %d" id);
      List.iter
        (fun (section, key, value) ->
          Buffer.add_char buf '\n';
          (match value with
          | Some v ->
              Buffer.add_string buf "ok ";
              Buffer.add_string buf section;
              Buffer.add_char buf ' ';
              Buffer.add_string buf key;
              Buffer.add_string buf entry_sep;
              Buffer.add_string buf v
          | None ->
              Buffer.add_string buf "no ";
              Buffer.add_string buf section;
              Buffer.add_char buf ' ';
              Buffer.add_string buf key))
        entries;
      Buffer.contents buf

(* ---------------- decoding (total) ---------------- *)

let ( let* ) = Option.bind

let opt_all f l =
  List.fold_right
    (fun x acc ->
      let* acc = acc in
      let* y = f x in
      Some (y :: acc))
    l (Some [])

(* [<section> <key>] — the section is the first token (no spaces), the
   key is everything after it (keys contain spaces). *)
let split_section s =
  let* i = String.index_opt s ' ' in
  if i = 0 || i = String.length s - 1 then None
  else Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let find_sub ~sub s =
  let n = String.length s and sl = String.length sub in
  let rec go i =
    if i + sl > n then None else if String.sub s i sl = sub then Some i else go (i + 1)
  in
  go 0

let parse_task line = split_section line

let parse_entry line =
  if String.length line < 3 then None
  else
    let tag = String.sub line 0 3 in
    let rest = String.sub line 3 (String.length line - 3) in
    if tag = "ok " then
      let* i = find_sub ~sub:entry_sep rest in
      let lhs = String.sub rest 0 i in
      let value =
        String.sub rest (i + String.length entry_sep)
          (String.length rest - i - String.length entry_sep)
      in
      let* section, key = split_section lhs in
      Some (section, key, Some value)
    else if tag = "no " then
      let* section, key = split_section rest in
      Some (section, key, None)
    else None

let decode payload =
  match String.split_on_char '\n' payload with
  | [] -> None
  | first :: rest -> (
      match String.split_on_char ' ' first with
      | [ "hello"; fp ] when rest = [] && fp <> "" -> Some (Hello fp)
      | [ "ready"; fp ] when rest = [] && fp <> "" -> Some (Ready fp)
      | [ "batch"; id ] ->
          let* id = int_of_string_opt id in
          let* tasks = opt_all parse_task rest in
          Some (Batch (id, tasks))
      | [ "result"; id ] ->
          let* id = int_of_string_opt id in
          let* entries = opt_all parse_entry rest in
          Some (Result (id, entries))
      | _ -> None)
