(* A frame is [4-byte big-endian payload length][payload]. The length
   cap doubles as a garbage detector: random bytes parsed as a length
   overflow it with probability 255/256 per leading byte. *)

let max_frame = 16 * 1024 * 1024

let header_len = 4

let put_be32 b off v =
  Bytes.set b off (Char.chr ((v lsr 24) land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 3) (Char.chr (v land 0xff))

let get_be32 b off =
  (Char.code (Bytes.get b off) lsl 24)
  lor (Char.code (Bytes.get b (off + 1)) lsl 16)
  lor (Char.code (Bytes.get b (off + 2)) lsl 8)
  lor Char.code (Bytes.get b (off + 3))

let to_string payload =
  let n = String.length payload in
  let b = Bytes.create (header_len + n) in
  put_be32 b 0 n;
  Bytes.blit_string payload 0 b header_len n;
  Bytes.unsafe_to_string b

let write oc payload =
  output_string oc (to_string payload);
  flush oc

let read ic =
  match really_input_string ic header_len with
  | exception End_of_file -> None
  | hdr ->
      let len = get_be32 (Bytes.unsafe_of_string hdr) 0 in
      if len < 0 || len > max_frame then None
      else (
        match really_input_string ic len with
        | exception End_of_file -> None
        | payload -> Some payload)

(* ---------------- incremental decoding ---------------- *)

type decoder = { mutable buf : Bytes.t; mutable len : int }

let decoder () = { buf = Bytes.create 65536; len = 0 }

let feed d src n =
  if n > 0 then begin
    let need = d.len + n in
    if need > Bytes.length d.buf then begin
      let cap = max need (2 * Bytes.length d.buf) in
      let bigger = Bytes.create cap in
      Bytes.blit d.buf 0 bigger 0 d.len;
      d.buf <- bigger
    end;
    Bytes.blit src 0 d.buf d.len n;
    d.len <- need
  end

let next d =
  if d.len < header_len then `Await
  else
    let plen = get_be32 d.buf 0 in
    if plen < 0 || plen > max_frame then `Corrupt
    else if d.len < header_len + plen then `Await
    else begin
      let payload = Bytes.sub_string d.buf header_len plen in
      let rest = d.len - header_len - plen in
      Bytes.blit d.buf (header_len + plen) d.buf 0 rest;
      d.len <- rest;
      `Frame payload
    end
