(** The worker side of the cell-distribution protocol.

    A worker process is spawned by the coordinator with its stdin and
    stdout connected by pipes. {!serve} answers the fingerprint
    handshake and then loops: read a batch frame, compute every entry
    through the [compute] callback, reply with a result frame. It
    returns when the coordinator closes the pipe (normal shutdown) or
    on the first protocol violation — a worker never tries to
    resynchronise a corrupt stream. *)

val serve :
  fingerprint:string ->
  compute:(section:string -> key:string -> string option) ->
  ?on_batch:(unit -> unit) ->
  in_channel ->
  out_channel ->
  unit
(** [serve ~fingerprint ~compute ic oc] runs the worker loop.
    [compute ~section ~key] returns the encoded result for an encoded
    cell key, or [None] when the key cannot be decoded or the
    computation fails — the entry is then reported back as
    unservable and the coordinator computes it in-process. A
    [compute] exception is contained to its entry (reported as
    unservable), never torn across the protocol stream. [on_batch]
    runs after each batch reply is flushed (e.g. to flush a worker-side
    result store). *)
