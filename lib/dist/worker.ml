let serve ~fingerprint ~compute ?(on_batch = fun () -> ()) ic oc =
  (* A coordinator that vanished mid-session surfaces as EPIPE on the
     reply (SIGPIPE is ignored — inherited from the coordinator, and
     set here for standalone runs). That is a normal stop for a
     worker, not a crash. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let write payload =
    try
      Frame.write oc payload;
      true
    with Sys_error _ -> false
  in
  let rec loop () =
    match Frame.read ic with
    | None -> () (* EOF or torn/oversized frame: stop serving. *)
    | Some payload -> (
        match Protocol.decode payload with
        | Some (Protocol.Hello _) ->
            (* The coordinator verifies; the worker just states who it
               is. A mismatch ends in the coordinator dropping us. *)
            if write (Protocol.encode (Protocol.Ready fingerprint)) then loop ()
        | Some (Protocol.Batch (id, tasks)) ->
            (* Fault injection: a worker that accepts a batch and never
               answers — what the coordinator's batch deadline exists
               to catch. The sleep far exceeds any deadline in use; the
               coordinator SIGKILLs us long before it returns. *)
            if Rme_util.Fault.fire "worker-stall" then Unix.sleepf 3600.0;
            let entries =
              List.map
                (fun (section, key) ->
                  let value = try compute ~section ~key with _ -> None in
                  (section, key, value))
                tasks
            in
            if write (Protocol.encode (Protocol.Result (id, entries))) then begin
              on_batch ();
              loop ()
            end
        | Some (Protocol.Ready _ | Protocol.Result _) | None ->
            (* Protocol violation: the stream is not trustworthy. *)
            ())
  in
  loop ()
