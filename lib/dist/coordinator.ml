module Pool = Rme_util.Pool

type config = {
  workers : int;
  argv : string array;
  fingerprint : string;
  batch_deadline : float;
  handshake_deadline : float;
  max_respawns : int;
  backoff_base : float;
  chunk : int option;
}

let default_config ?(batch_deadline = 300.0) ?(handshake_deadline = 10.0)
    ?(max_respawns = 3) ?(backoff_base = 0.05) ?chunk ~workers ~argv ~fingerprint () =
  {
    workers;
    argv;
    fingerprint;
    batch_deadline;
    handshake_deadline;
    max_respawns;
    backoff_base;
    chunk;
  }

type stats = {
  spawned : int;
  lost : int;
  requeued : int;
  remote : int;
  unserved : int;
}

type batch = { id : int; idxs : int list; deadline : float }

type wstate = Off | Handshaking of float | Idle | Busy of batch

type worker = {
  mutable pid : int;  (* -1 when no process is attached *)
  mutable fd_in : Unix.file_descr;  (* coordinator -> worker stdin *)
  mutable fd_out : Unix.file_descr;  (* worker stdout -> coordinator *)
  mutable dec : Frame.decoder;
  mutable state : wstate;
  mutable attempts : int;  (* spawns of this slot, for backoff *)
  mutable respawn_at : float;
  mutable no_respawn : bool;  (* disqualified (bad fingerprint) or budget spent *)
}

type t = {
  cfg : config;
  slots : worker array;
  read_buf : Bytes.t;
  mutable next_id : int;
  mutable respawns_left : int;
  mutable s_spawned : int;
  mutable s_lost : int;
  mutable s_requeued : int;
  mutable s_remote : int;
  mutable s_unserved : int;
}

let config t = t.cfg

let stats t =
  {
    spawned = t.s_spawned;
    lost = t.s_lost;
    requeued = t.s_requeued;
    remote = t.s_remote;
    unserved = t.s_unserved;
  }

let now () = Unix.gettimeofday ()

let fresh_slot () =
  {
    pid = -1;
    fd_in = Unix.stdin;
    fd_out = Unix.stdin;
    dec = Frame.decoder ();
    state = Off;
    attempts = 0;
    respawn_at = 0.0;
    no_respawn = false;
  }

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let rec reap pid =
  match Unix.waitpid [] pid with
  | _ -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> reap pid
  | exception Unix.Unix_error (_, _, _) -> ()

(* Write a whole frame to a (non-blocking) worker stdin. A worker that
   stops draining its pipe for ~2 s is as good as hung: give up and
   let the caller drop it. *)
let send w payload =
  let data = Bytes.of_string (Frame.to_string payload) in
  let len = Bytes.length data in
  let give_up = now () +. 2.0 in
  let rec go off =
    if off >= len then true
    else
      match Unix.write w.fd_in data off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          if now () > give_up then false
          else begin
            (try ignore (Unix.select [] [ w.fd_in ] [] 0.05)
             with Unix.Unix_error _ -> ());
            go off
          end
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (_, _, _) -> false
  in
  go 0

(* Drop a worker: requeue whatever it held, close its pipes, kill and
   reap the process, and schedule a respawn while the budget lasts. *)
let fail t ?(requeue = fun _ -> ()) w =
  (match w.state with
  | Busy b ->
      requeue b.idxs;
      t.s_requeued <- t.s_requeued + List.length b.idxs
  | _ -> ());
  if w.pid > 0 then begin
    close_quiet w.fd_in;
    close_quiet w.fd_out;
    (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
    reap w.pid;
    t.s_lost <- t.s_lost + 1
  end;
  w.pid <- -1;
  w.state <- Off;
  if not w.no_respawn then
    if t.respawns_left > 0 then begin
      t.respawns_left <- t.respawns_left - 1;
      w.respawn_at <-
        now () +. (t.cfg.backoff_base *. (2.0 ** float_of_int (max 0 (w.attempts - 1))))
    end
    else w.no_respawn <- true

let spawn t w =
  w.attempts <- w.attempts + 1;
  match
    let stdin_r, stdin_w = Unix.pipe ~cloexec:true () in
    let stdout_r, stdout_w =
      try Unix.pipe ~cloexec:true ()
      with e ->
        Unix.close stdin_r;
        Unix.close stdin_w;
        raise e
    in
    let pid =
      try Unix.create_process t.cfg.argv.(0) t.cfg.argv stdin_r stdout_w Unix.stderr
      with e ->
        List.iter close_quiet [ stdin_r; stdin_w; stdout_r; stdout_w ];
        raise e
    in
    Unix.close stdin_r;
    Unix.close stdout_w;
    Unix.set_nonblock stdin_w;
    Unix.set_nonblock stdout_r;
    (pid, stdin_w, stdout_r)
  with
  | exception _ -> fail t w
  | pid, fd_in, fd_out ->
      w.pid <- pid;
      w.fd_in <- fd_in;
      w.fd_out <- fd_out;
      w.dec <- Frame.decoder ();
      t.s_spawned <- t.s_spawned + 1;
      w.state <- Handshaking (now () +. t.cfg.handshake_deadline);
      if not (send w (Protocol.encode (Protocol.Hello t.cfg.fingerprint))) then
        fail t w

let create cfg =
  (* A worker dying between select and write would otherwise kill the
     whole coordinator with SIGPIPE; we want EPIPE and a requeue. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let t =
    {
      cfg;
      slots = Array.init (max 1 cfg.workers) (fun _ -> fresh_slot ());
      read_buf = Bytes.create 65536;
      next_id = 0;
      respawns_left = cfg.max_respawns;
      s_spawned = 0;
      s_lost = 0;
      s_requeued = 0;
      s_remote = 0;
      s_unserved = 0;
    }
  in
  Array.iter (fun w -> spawn t w) t.slots;
  t

let shutdown t =
  Array.iter
    (fun w ->
      if w.pid > 0 then begin
        (* EOF is the polite stop; workers mid-compute get ~200 ms,
           then SIGKILL — their results are not needed anymore. *)
        close_quiet w.fd_in;
        let rec wait tries =
          match Unix.waitpid [ Unix.WNOHANG ] w.pid with
          | 0, _ ->
              if tries > 0 then begin
                (try ignore (Unix.select [] [] [] 0.02) with Unix.Unix_error _ -> ());
                wait (tries - 1)
              end
              else begin
                (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
                reap w.pid
              end
          | _ -> ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait tries
          | exception Unix.Unix_error (_, _, _) -> ()
        in
        wait 10;
        close_quiet w.fd_out;
        w.pid <- -1
      end;
      w.state <- Off;
      w.no_respawn <- true)
    t.slots

(* A slot that can still contribute: live in any state, or dead with a
   respawn pending. *)
let viable w = w.state <> Off || not w.no_respawn

let run t ~tasks ?(on_done = fun _ -> ()) ?(on_result = fun _ _ -> ())
    ?(should_stop = fun () -> false) () =
  let n = Array.length tasks in
  let results = Array.make n None in
  if n > 0 then begin
    let chunk =
      match t.cfg.chunk with
      | Some c when c > 0 -> c
      | Some _ | None -> Pool.auto_chunk ~jobs:(Array.length t.slots) n
    in
    let queue = Queue.create () in
    for i = 0 to n - 1 do
      Queue.add i queue
    done;
    let requeue idxs = List.iter (fun i -> Queue.add i queue) idxs in
    let unserved _i = t.s_unserved <- t.s_unserved + 1 in
    let handle_result w b entries =
      let tbl = Hashtbl.create (List.length entries) in
      List.iter
        (fun (s, k, v) -> if not (Hashtbl.mem tbl (s, k)) then Hashtbl.add tbl (s, k) v)
        entries;
      List.iter
        (fun i ->
          match Hashtbl.find_opt tbl tasks.(i) with
          | Some (Some v) when results.(i) = None ->
              results.(i) <- Some v;
              t.s_remote <- t.s_remote + 1;
              on_result i v;
              on_done i
          | Some (Some _) -> ()
          | Some None | None ->
              (* The worker answered the batch but could not serve this
                 entry; re-sending it would fail the same way. *)
              unserved i)
        b.idxs;
      w.state <- Idle
    in
    let rec drain w =
      if w.state <> Off then
        match Frame.next w.dec with
        | `Await -> ()
        | `Corrupt -> fail t ~requeue w
        | `Frame payload -> (
            match (Protocol.decode payload, w.state) with
            | Some (Protocol.Ready fp), Handshaking _ ->
                if String.equal fp t.cfg.fingerprint then begin
                  w.state <- Idle;
                  drain w
                end
                else begin
                  (* Different code: respawning the same binary cannot
                     help, and its numbers must never be accepted. *)
                  w.no_respawn <- true;
                  fail t ~requeue w
                end
            | Some (Protocol.Result (id, entries)), Busy b when b.id = id ->
                handle_result w b entries;
                drain w
            | _ -> fail t ~requeue w)
    in
    let rec pump w =
      if w.state <> Off then
        match Unix.read w.fd_out t.read_buf 0 (Bytes.length t.read_buf) with
        | 0 -> fail t ~requeue w
        | got ->
            Frame.feed w.dec t.read_buf got;
            drain w;
            pump w
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> pump w
        | exception Unix.Unix_error (_, _, _) -> fail t ~requeue w
    in
    let assign w =
      if not (Queue.is_empty queue) then begin
        let b = min chunk (Queue.length queue) in
        let idxs = List.init b (fun _ -> Queue.pop queue) in
        let id = t.next_id in
        t.next_id <- id + 1;
        let payload =
          Protocol.encode (Protocol.Batch (id, List.map (fun i -> tasks.(i)) idxs))
        in
        if send w payload then
          w.state <- Busy { id; idxs; deadline = now () +. t.cfg.batch_deadline }
        else begin
          (* Still Idle, so [fail] has nothing in flight to requeue. *)
          requeue idxs;
          fail t ~requeue w
        end
      end
    in
    let busy () = Array.exists (fun w -> match w.state with Busy _ -> true | _ -> false) t.slots in
    (* A cancellation ([should_stop]) stops handing out work but still
       drains batches already in flight — their results are committed
       by [on_result], so graceful shutdown loses nothing a worker
       already computed. The undistributed remainder stays [None]. *)
    while
      not ((Queue.is_empty queue || should_stop ()) && not (busy ()))
    do
      if not (Array.exists viable t.slots) then
        (* Every worker is gone for good: hand the remainder back. *)
        while not (Queue.is_empty queue) do
          unserved (Queue.pop queue)
        done
      else begin
        let stopping = should_stop () in
        let tnow = now () in
        (* Respawns whose backoff has elapsed (pointless when
           draining: a fresh worker would get no work). *)
        Array.iter
          (fun w ->
            if
              w.state = Off && (not w.no_respawn) && (not stopping)
              && tnow >= w.respawn_at
            then spawn t w)
          t.slots;
        (* Hand batches to idle workers. *)
        Array.iter (fun w -> if w.state = Idle && not stopping then assign w) t.slots;
        (* Wait for results, handshakes, deaths — or the next deadline. *)
        let timeout = ref 0.25 in
        let consider at = if at -. tnow < !timeout then timeout := max 0.005 (at -. tnow) in
        Array.iter
          (fun w ->
            match w.state with
            | Handshaking d -> consider d
            | Busy b -> consider b.deadline
            | Off when not w.no_respawn -> consider w.respawn_at
            | Off | Idle -> ())
          t.slots;
        let fds =
          Array.fold_left
            (fun acc w -> if w.state <> Off then w.fd_out :: acc else acc)
            [] t.slots
        in
        (match Unix.select fds [] [] !timeout with
        | readable, _, _ ->
            Array.iter
              (fun w -> if w.state <> Off && List.mem w.fd_out readable then pump w)
              t.slots
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        (* Deadlines: a hung handshake or batch is a lost worker. *)
        let tnow = now () in
        Array.iter
          (fun w ->
            match w.state with
            | Handshaking d when tnow > d -> fail t ~requeue w
            | Busy b when tnow > b.deadline -> fail t ~requeue w
            | _ -> ())
          t.slots
      end
    done
  end;
  results
