(** Length-prefixed framing over byte streams (pipes).

    A frame is a 4-byte big-endian payload length followed by the
    payload bytes. The length is capped at {!max_frame}, so a stream
    of garbage bytes is detected quickly (a random high byte reads as
    an over-limit length) instead of waiting forever for a gigantic
    payload that will never arrive.

    Two consumption styles:

    - {!read} — blocking, for the worker side (its stdin is quiet
      until the coordinator speaks). Total: EOF, a torn header, a torn
      payload or an over-limit length all return [None], never raise.
    - {!decoder}/{!feed}/{!next} — incremental, for the coordinator
      side, which multiplexes many non-blocking worker pipes and must
      never block on a peer that sent half a frame and hung. *)

val max_frame : int
(** Upper bound on a payload length (bytes). Anything larger is
    treated as stream corruption. *)

val to_string : string -> string
(** [to_string payload] is the wire encoding: header + payload. *)

val write : out_channel -> string -> unit
(** Write one frame and flush. *)

val read : in_channel -> string option
(** Blocking read of one frame. [None] on EOF, truncation or an
    over-limit declared length — never an exception. *)

(** {1 Incremental decoding} *)

type decoder

val decoder : unit -> decoder
(** A fresh decoder with an empty buffer. *)

val feed : decoder -> bytes -> int -> unit
(** [feed d buf n] appends the first [n] bytes of [buf] to the
    decoder's internal buffer. *)

val next : decoder -> [ `Frame of string | `Await | `Corrupt ]
(** Extract the next complete frame, if any. [`Await] means more
    bytes are needed; [`Corrupt] means the stream declared an
    impossible length and cannot be re-synchronised (the peer must be
    dropped). Total — never raises on arbitrary input. *)
