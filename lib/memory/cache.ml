module Intset = Rme_util.Intset
module Bitset = Rme_util.Bitset

(* Generation/epoch stamping. A copy held by [pid] of [loc] is
   represented by the stamp [(epochs.(pid) lsl gen_bits) lor gens.(loc)]
   recorded at install time; it is valid iff it still equals that
   expression. Bumping [gens.(loc)] (any non-read) or [epochs.(pid)]
   (a crash) therefore invalidates in O(1) without touching stamps.

   Stamps live in fixed 256-slot pages allocated on first install and
   initialised to -1 (never a valid stamp, since counters are
   non-negative). [present.(pid)] tracks pages that may hold live
   stamps: installs add to it, and only [clear]/[copy_into] — which
   wipe a page back to all -1 — remove from it, so every valid stamp
   is inside a present page and [valid_set] scans nothing else. *)

let page_bits = 8
let page_size = 1 lsl page_bits
let page_mask = page_size - 1
let gen_bits = 31
let gen_mask = (1 lsl gen_bits) - 1
let empty_page : int array = [||]

type t = {
  n : int;
  epochs : int array; (* pid -> crash epoch *)
  mutable gens : int array; (* loc -> write generation *)
  mutable num_locs : int; (* locations ever accessed *)
  rows : int array array array; (* pid -> page index -> stamp page *)
  present : Bitset.t array; (* pid -> pages possibly holding live stamps *)
}

let create ~n =
  {
    n;
    epochs = Array.make n 0;
    gens = Array.make 64 0;
    num_locs = 0;
    rows = Array.make n ([||] : int array array);
    present = Array.init n (fun _ -> Bitset.create ~capacity:32);
  }

let n t = t.n

let ensure_loc t loc =
  if loc >= Array.length t.gens then begin
    let cap = max (loc + 1) (2 * Array.length t.gens) in
    let gens = Array.make cap 0 in
    Array.blit t.gens 0 gens 0 (Array.length t.gens);
    t.gens <- gens
  end;
  if loc >= t.num_locs then t.num_locs <- loc + 1

let has_copy t ~pid ~loc =
  loc < Array.length t.gens
  &&
  let row = t.rows.(pid) in
  let pi = loc lsr page_bits in
  pi < Array.length row
  &&
  let page = Array.unsafe_get row pi in
  page != empty_page
  && Array.unsafe_get page (loc land page_mask)
     = (t.epochs.(pid) lsl gen_bits) lor t.gens.(loc)

(* Install slow path: grow the page row and/or materialise the page.
   Pages wiped by [clear] stay allocated (all -1) and are reused here. *)
let install t ~pid ~pi ~off ~stamp =
  let row = t.rows.(pid) in
  let row =
    if pi < Array.length row then row
    else begin
      let cap = max (pi + 1) (2 * max 4 (Array.length row)) in
      let row' = Array.make cap empty_page in
      Array.blit row 0 row' 0 (Array.length row);
      t.rows.(pid) <- row';
      row'
    end
  in
  let page = row.(pi) in
  let page =
    if page != empty_page then page
    else begin
      let p = Array.make page_size (-1) in
      row.(pi) <- p;
      p
    end
  in
  page.(off) <- stamp;
  Bitset.add t.present.(pid) pi

let access t ~pid ~loc ~is_read =
  ensure_loc t loc;
  if is_read then begin
    let stamp = (t.epochs.(pid) lsl gen_bits) lor t.gens.(loc) in
    let pi = loc lsr page_bits in
    let off = loc land page_mask in
    let row = t.rows.(pid) in
    if
      pi < Array.length row
      &&
      let page = Array.unsafe_get row pi in
      page != empty_page && Array.unsafe_get page off = stamp
    then false
    else begin
      install t ~pid ~pi ~off ~stamp;
      true
    end
  end
  else begin
    (* Invalidate every copy of [loc] at once. *)
    t.gens.(loc) <- (t.gens.(loc) + 1) land gen_mask;
    true
  end

let drop_process t ~pid = t.epochs.(pid) <- t.epochs.(pid) + 1

let valid_set t ~pid =
  let acc = ref Intset.empty in
  let row = t.rows.(pid) in
  let epoch_part = t.epochs.(pid) lsl gen_bits in
  Bitset.iter
    (fun pi ->
      let page = row.(pi) in
      let base = pi lsl page_bits in
      let hi = min page_size (t.num_locs - base) in
      for off = 0 to hi - 1 do
        if Array.unsafe_get page off = epoch_part lor t.gens.(base + off) then
          acc := Intset.add (base + off) !acc
      done)
    t.present.(pid);
  !acc

let clear t =
  Array.fill t.epochs 0 t.n 0;
  Array.fill t.gens 0 (Array.length t.gens) 0;
  t.num_locs <- 0;
  for pid = 0 to t.n - 1 do
    let row = t.rows.(pid) in
    Bitset.iter (fun pi -> Array.fill row.(pi) 0 page_size (-1)) t.present.(pid);
    Bitset.clear t.present.(pid)
  done

let copy_into ~src ~dst =
  if src.n <> dst.n then invalid_arg "Cache.copy_into: process count mismatch";
  Array.blit src.epochs 0 dst.epochs 0 src.n;
  let sg = Array.length src.gens and dg = Array.length dst.gens in
  if dg < sg then dst.gens <- Array.copy src.gens
  else begin
    Array.blit src.gens 0 dst.gens 0 sg;
    Array.fill dst.gens sg (dg - sg) 0
  end;
  dst.num_locs <- src.num_locs;
  for pid = 0 to src.n - 1 do
    let sp = src.present.(pid) and dp = dst.present.(pid) in
    (* Wipe pages live only in [dst]; pages live in both are fully
       overwritten by the blit below. *)
    Bitset.iter
      (fun pi ->
        if not (Bitset.mem sp pi) then
          Array.fill dst.rows.(pid).(pi) 0 page_size (-1))
      dp;
    Bitset.iter
      (fun pi ->
        let srow = src.rows.(pid) in
        let drow = dst.rows.(pid) in
        let drow =
          if pi < Array.length drow then drow
          else begin
            let cap = max (pi + 1) (2 * max 4 (Array.length drow)) in
            let row' = Array.make cap empty_page in
            Array.blit drow 0 row' 0 (Array.length drow);
            dst.rows.(pid) <- row';
            row'
          end
        in
        let page = drow.(pi) in
        let page =
          if page != empty_page then page
          else begin
            let p = Array.make page_size (-1) in
            drow.(pi) <- p;
            p
          end
        in
        Array.blit srow.(pi) 0 page 0 page_size)
      sp;
    Bitset.copy_into ~src:sp ~dst:dp
  done

let copy t =
  let fresh = create ~n:t.n in
  copy_into ~src:t ~dst:fresh;
  fresh

let equal_for t t' ~pid = Intset.equal (valid_set t ~pid) (valid_set t' ~pid)
