module Bitword = Rme_util.Bitword
module Vec = Rme_util.Vec

type loc = int

(* [last_accessor] uses -1 for "never accessed" so [apply] stays
   allocation-free; the option view is built only on query. [name] is a
   thunk so allocation sites can defer the [Printf.sprintf] formatting —
   lock constructors mint thousands of cells at large [n], and the name
   is only ever read by pretty-printers. *)
type cell = {
  owner : int option;
  name : unit -> string;
  init : int;
  mutable value : int;
  mutable last_accessor : int;
}

type t = { width : int; cells : cell Vec.t }

let create ~width =
  Bitword.check_width width;
  { width; cells = Vec.create () }

let width t = t.width

let num_locs t = Vec.length t.cells

let alloc_named ?owner t ~name ~init =
  let init = Bitword.truncate ~width:t.width init in
  Vec.push t.cells { owner; name; init; value = init; last_accessor = -1 }

let alloc ?owner ?(name = "loc") t ~init =
  alloc_named ?owner t ~name:(fun () -> name) ~init

let alloc_array ?owner ?(name = "arr") t ~init ~len =
  Array.init len (fun i ->
      alloc_named ?owner t ~name:(fun () -> Printf.sprintf "%s[%d]" name i) ~init)

let cell t loc = Vec.get t.cells loc

let value t loc = (cell t loc).value

let owner t loc = (cell t loc).owner

let loc_name t loc = (cell t loc).name ()

let last_accessor t loc =
  let a = (cell t loc).last_accessor in
  if a < 0 then None else Some a

let apply t ~pid loc op =
  let c = cell t loc in
  let old = c.value in
  c.value <- Op.next_value ~width:t.width op old;
  c.last_accessor <- pid;
  old

let peek_next_value t loc op = Op.next_value ~width:t.width op (value t loc)

let snapshot t = Array.init (num_locs t) (fun i -> (cell t i).value)

let full_snapshot t =
  Array.init (num_locs t) (fun i ->
      let c = cell t i in
      ( c.value,
        if c.last_accessor < 0 then None else Some c.last_accessor ))

let reset_values t =
  Vec.iter
    (fun c ->
      c.value <- c.init;
      c.last_accessor <- -1)
    t.cells

type checkpoint = { ck_values : int array; ck_accessors : int array }

let checkpoint t =
  let n = num_locs t in
  let ck_values = Array.make n 0 and ck_accessors = Array.make n 0 in
  for i = 0 to n - 1 do
    let c = cell t i in
    ck_values.(i) <- c.value;
    ck_accessors.(i) <- c.last_accessor
  done;
  { ck_values; ck_accessors }

let restore t ck =
  if Array.length ck.ck_values <> num_locs t then
    invalid_arg "Memory.restore: checkpoint from a different memory";
  for i = 0 to num_locs t - 1 do
    let c = cell t i in
    c.value <- ck.ck_values.(i);
    c.last_accessor <- ck.ck_accessors.(i)
  done
