(** Cache state for the cache-coherent (CC) model.

    Exactly the paper's definition: a read stores a copy of the location in
    the reading process's cache; any non-read operation on the location, by
    any process, invalidates every copy of it. An operation incurs an RMR
    iff it is a non-read, or a read of a location the process holds no
    valid copy of.

    Crashes do {e not} preserve caches: a crash step drops the crashed
    process's entire cache (its local state, of which the cache is part,
    is reset).

    Representation: generation/epoch stamping over flat arrays, so the
    three hot operations are O(1) and allocation-free in the steady
    state. Each location carries a generation counter bumped by every
    non-read (invalidating all copies at once); each pid carries an
    epoch counter bumped by every crash (dropping its whole cache at
    once). A copy is valid iff its recorded [(epoch, generation)] stamp
    matches the current counters. Stamps live in lazily materialised
    fixed-size pages per pid, with a {!Rme_util.Bitset} tracking which
    pages hold live stamps so [valid_set] touches only those. *)

type t

val create : n:int -> t
(** Cache state for processes [0 .. n-1], all caches empty. *)

val n : t -> int

val has_copy : t -> pid:int -> loc:int -> bool

val access : t -> pid:int -> loc:int -> is_read:bool -> bool
(** Record one operation and return whether it incurs an RMR under the CC
    rule. Updates validity: a read installs a copy for [pid]; a non-read
    invalidates all copies of [loc]. *)

val drop_process : t -> pid:int -> unit
(** Invalidate every copy held by [pid] (crash semantics). O(1). *)

val valid_set : t -> pid:int -> Rme_util.Intset.t
(** The set of locations [pid] currently holds valid copies of — the
    [R_p] of invariant (I9). *)

val copy : t -> t
(** Deep copy, for replay comparison. *)

val copy_into : src:t -> dst:t -> unit
(** Make [dst] equivalent to [src] in place, reusing [dst]'s pages.
    The two must have the same [n]. *)

val clear : t -> unit
(** Reset to the all-empty state in place, keeping allocated pages. *)

val equal_for : t -> t -> pid:int -> bool
(** Whether the two states agree on [pid]'s valid set. *)
