type model = Cc | Dsm

let model_of_string = function
  | "cc" | "CC" -> Some Cc
  | "dsm" | "DSM" -> Some Dsm
  | _ -> None

let model_name = function Cc -> "CC" | Dsm -> "DSM"

let pp_model ppf m = Format.pp_print_string ppf (model_name m)

let all_models = [ Cc; Dsm ]

type t = {
  model : model;
  cache : Cache.t option;
  totals : int array;
  passages : int array;
}

let create model ~n =
  {
    model;
    cache = (match model with Cc -> Some (Cache.create ~n) | Dsm -> None);
    totals = Array.make n 0;
    passages = Array.make n 0;
  }

let model t = t.model

let cache t = t.cache

let dsm_incurs ~owner ~pid =
  match owner with Some o -> o <> pid | None -> true

let record t ~pid ~loc ~owner ~is_read =
  let rmr =
    match t.model with
    | Dsm -> dsm_incurs ~owner ~pid
    | Cc -> (
        match t.cache with
        | Some c -> Cache.access c ~pid ~loc ~is_read
        | None -> assert false)
  in
  if rmr then begin
    t.totals.(pid) <- t.totals.(pid) + 1;
    t.passages.(pid) <- t.passages.(pid) + 1
  end;
  rmr

let would_incur t ~pid ~loc ~owner ~is_read =
  match t.model with
  | Dsm -> dsm_incurs ~owner ~pid
  | Cc -> (
      match t.cache with
      | Some c -> (not is_read) || not (Cache.has_copy c ~pid ~loc)
      | None -> assert false)

let on_crash t ~pid =
  match t.cache with Some c -> Cache.drop_process c ~pid | None -> ()

let total t ~pid = t.totals.(pid)

let passage t ~pid = t.passages.(pid)

let start_passage t ~pid = t.passages.(pid) <- 0

let grand_total t = Array.fold_left ( + ) 0 t.totals

let reset t =
  Array.fill t.totals 0 (Array.length t.totals) 0;
  Array.fill t.passages 0 (Array.length t.passages) 0;
  match t.cache with Some c -> Cache.clear c | None -> ()

type snapshot = {
  s_totals : int array;
  s_passages : int array;
  s_cache : Cache.t option;
}

let snapshot t =
  {
    s_totals = Array.copy t.totals;
    s_passages = Array.copy t.passages;
    s_cache = Option.map Cache.copy t.cache;
  }

let restore t s =
  if Array.length s.s_totals <> Array.length t.totals then
    invalid_arg "Rmr.restore: snapshot from a different accountant";
  Array.blit s.s_totals 0 t.totals 0 (Array.length t.totals);
  Array.blit s.s_passages 0 t.passages 0 (Array.length t.passages);
  match (t.cache, s.s_cache) with
  | Some dst, Some src -> Cache.copy_into ~src ~dst
  | None, None -> ()
  | _ -> invalid_arg "Rmr.restore: snapshot from a different model"
