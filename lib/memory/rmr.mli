(** Remote-memory-reference accounting for both cost models.

    A single accountant is attached to a run; every operation flows through
    [record], which decides — per the selected model — whether the step is
    an RMR, maintains the CC cache state when relevant, and accumulates
    per-process totals. Passage-level bookkeeping (the paper measures the
    maximum RMRs {e per passage}) lives in the scheduler, which resets the
    per-passage counters at passage boundaries. *)

type model = Cc | Dsm

val model_of_string : string -> model option
val model_name : model -> string
val pp_model : Format.formatter -> model -> unit
val all_models : model list

type t

val create : model -> n:int -> t

val model : t -> model

val cache : t -> Cache.t option
(** The cache state, present only under the CC model. *)

val record : t -> pid:int -> loc:int -> owner:int option -> is_read:bool -> bool
(** Account one operation; returns whether it incurred an RMR. *)

val would_incur : t -> pid:int -> loc:int -> owner:int option -> is_read:bool -> bool
(** Like [record] but without mutating anything: would this operation,
    performed next, incur an RMR? Used by the scheduler's setup phase to
    decide when a process is "poised to incur an RMR". *)

val on_crash : t -> pid:int -> unit
(** Crash semantics: the process's cache is dropped (CC); counters are
    kept (RMRs incurred before the crash still count toward the passage
    in which they occurred). *)

val total : t -> pid:int -> int
(** RMRs incurred by [pid] since creation. *)

val passage : t -> pid:int -> int
(** RMRs incurred by [pid] since the last [start_passage]. *)

val start_passage : t -> pid:int -> unit
(** Reset the per-passage counter of [pid]. *)

val grand_total : t -> int

val reset : t -> unit
(** Zero all counters and empty the cache state in place — back to the
    state of a fresh [create], without reallocating. *)

type snapshot
(** Full accounting state (counters plus CC cache) at a point in time. *)

val snapshot : t -> snapshot

val restore : t -> snapshot -> unit
(** Restore a snapshot taken from an accountant of the same model and
    process count; raises [Invalid_argument] otherwise. *)
