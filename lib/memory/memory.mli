(** The simulated shared memory: an allocator of [w]-bit base objects and
    the single point through which every atomic operation is applied.

    The word size is a property of the whole memory (the paper's model:
    "each base object stores [w] bits"), enforced here rather than trusted
    to the algorithms: every stored value is truncated to [w] bits, so an
    algorithm that tries to pack more state into a word than fits simply
    misbehaves — observably.

    For the DSM model, each location can carry an owner process: an access
    by any other process incurs an RMR. Locations without an owner model
    globally shared segments (every access is remote for everyone).

    [last_accessor] tracks the process that last performed {e any}
    operation on the location — the paper's [last_R] — which both the
    lower-bound adversary and the invariant checkers consume. *)

type loc = int
(** A location handle. Handles are dense indices, valid for the memory
    that allocated them. *)

type t

val create : width:int -> t
(** A fresh memory with no locations. Raises [Invalid_argument] unless
    [1 <= width <= 62]. *)

val width : t -> int

val num_locs : t -> int

val alloc : ?owner:int -> ?name:string -> t -> init:int -> loc
(** Allocate one location. [init] is truncated to the word width. *)

val alloc_named : ?owner:int -> t -> name:(unit -> string) -> init:int -> loc
(** [alloc] with a lazily formatted name: the thunk runs only when
    [loc_name] is queried (pretty-printing), never on the allocation or
    access paths. Lock constructors that mint many cells should use
    this rather than paying a [Printf.sprintf] per cell up front. *)

val alloc_array : ?owner:int -> ?name:string -> t -> init:int -> len:int -> loc array
(** Allocate [len] locations sharing a name prefix (names formatted
    lazily, as with [alloc_named]). *)

val value : t -> loc -> int
(** Current stored value (no RMR bookkeeping — simulator internal). *)

val owner : t -> loc -> int option

val loc_name : t -> loc -> string

val last_accessor : t -> loc -> int option
(** The process that last applied any operation via [apply], or [None] if
    the location was never accessed. *)

val apply : t -> pid:int -> loc -> Op.t -> int
(** [apply t ~pid loc op] atomically applies [op], records [pid] as the
    last accessor, and returns the value held {e before} the operation. *)

val peek_next_value : t -> loc -> Op.t -> int
(** The value [loc] would hold after [op], without applying anything. Used
    by the lower-bound adversary to reason about "what would this step do"
    (the functions [f_y] of the Process-Hiding Lemma). *)

val snapshot : t -> int array
(** Values of all locations, for replay comparison. Does not include
    accessor metadata. *)

val full_snapshot : t -> (int * int option) array
(** Values and last accessors of all locations. *)

val reset_values : t -> unit
(** Restore every location to its initial value and clear accessor
    metadata. Used by replay-based schedule reconstruction. *)

type checkpoint
(** Values and accessor metadata of every location at a point in time,
    in flat arrays. *)

val checkpoint : t -> checkpoint

val restore : t -> checkpoint -> unit
(** Restore a checkpoint taken from this memory (same location count —
    locations are only allocated at construction time). Raises
    [Invalid_argument] on a mismatched checkpoint. *)
