(* The rme command-line interface.

   Subcommands:
     rme locks                         list the lock algorithms
     rme simulate  --lock km ...       run a workload through the harness
     rme adversary --lock rcas ...     run the lower-bound construction
     rme lemma ...                     solve a Process-Hiding instance
     rme experiment e1 .. f1 | all     regenerate the paper's tables
                    [-j N]             ... sharding trial cells over N domains
                    [--workers N]      ... sharding cell batches over N processes
                    [--cache-dir DIR]  ... reusing results across runs
                    [--resume]         ... continuing an interrupted sweep
                    [--cell-timeout S] [--step-budget N] [--batch-deadline S]
                    [--autosave-cells N] [--autosave-secs S]
                    [--no-cache] [--progress|-v]
     rme store verify|repair|compact|stats [DIR]
                                       inspect / heal a result store
     rme worker                        internal: serve cell batches over
                                       stdin/stdout (spawned by --workers)

   SIGINT/SIGTERM during an experiment sweep stop cell hand-out,
   drain what is in flight, flush the store and manifest, and exit
   75 (EX_TEMPFAIL) — re-run with --resume to pick up where it
   stopped. A second signal hard-exits.
*)

open Cmdliner
module H = Rme_sim.Harness
module Lock_intf = Rme_sim.Lock_intf
module Rmr = Rme_memory.Rmr
module Registry = Rme_locks.Registry
module A = Rme_core.Adversary
module T = Rme_core.Schedule_table
module Intset = Rme_util.Intset
module Engine = Rme_experiments.Engine

(* ---------------- shared arguments ---------------- *)

let lock_conv =
  let parse s =
    match Registry.find s with
    | Some f -> Ok f
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown lock %S (available: %s)" s
                (String.concat ", " (Registry.names ()))))
  in
  let print ppf (f : Lock_intf.factory) =
    Format.pp_print_string ppf f.Lock_intf.name
  in
  Arg.conv (parse, print)

let model_conv =
  let parse s =
    match Rmr.model_of_string s with
    | Some m -> Ok m
    | None -> Error (`Msg "model must be cc or dsm")
  in
  Arg.conv (parse, Rmr.pp_model)

let lock_arg =
  Arg.(
    required
    & opt (some lock_conv) None
    & info [ "lock"; "l" ] ~docv:"LOCK" ~doc:"Lock algorithm (see $(b,rme locks)).")

let n_arg default =
  Arg.(value & opt int default & info [ "n" ] ~docv:"N" ~doc:"Number of processes.")

let width_arg =
  Arg.(
    value & opt int 16
    & info [ "width"; "w" ] ~docv:"W" ~doc:"Word size in bits (1-62).")

let model_arg =
  Arg.(
    value & opt model_conv Rmr.Cc
    & info [ "model"; "m" ] ~docv:"MODEL" ~doc:"Cost model: cc or dsm.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

(* ---------------- rme locks ---------------- *)

let locks_cmd =
  let run () =
    List.iter
      (fun (f : Lock_intf.factory) ->
        Printf.printf "%-16s %s  min-width(n=64)=%d\n" f.Lock_intf.name
          (if f.Lock_intf.recoverable then "recoverable " else "conventional")
          (f.Lock_intf.min_width ~n:64))
      Registry.all
  in
  Cmd.v (Cmd.info "locks" ~doc:"List the available lock algorithms.")
    Term.(const run $ const ())

(* ---------------- rme simulate ---------------- *)

let simulate lock n width model seed superpassages crash_prob cs_crash trace =
  let crashes =
    if crash_prob > 0.0 then H.Crash_prob { prob = crash_prob; seed = seed * 31 }
    else H.No_crashes
  in
  let cfg =
    {
      (H.default_config ~n ~width model) with
      superpassages;
      policy = H.Random_policy seed;
      crashes;
      allow_cs_crash = cs_crash;
      max_crashes_per_process = 8;
      record_trace = trace;
    }
  in
  let r = H.run cfg lock in
  Printf.printf "lock=%s n=%d w=%d model=%s superpassages=%d\n"
    lock.Lock_intf.name n width (Rmr.model_name model) superpassages;
  Printf.printf "ok=%b steps=%d crashes=%d\n" r.H.ok r.H.steps r.H.total_crashes;
  Printf.printf "max passage RMRs=%d mean=%.2f\n" r.H.max_passage_rmr
    r.H.mean_passage_rmr;
  List.iter (fun v -> Printf.printf "VIOLATION: %s\n" v) r.H.violations;
  (match r.H.trace with
  | Some t -> Format.printf "%a" Rme_sim.Trace.pp t
  | None -> ());
  if not r.H.ok then exit 1

let simulate_cmd =
  let sp =
    Arg.(
      value & opt int 2
      & info [ "superpassages"; "s" ] ~docv:"K" ~doc:"Super-passages per process.")
  in
  let crash_prob =
    Arg.(
      value & opt float 0.0
      & info [ "crash-prob" ] ~docv:"P" ~doc:"Per-step crash probability.")
  in
  let cs_crash =
    Arg.(value & flag & info [ "cs-crash" ] ~doc:"Allow crashes inside the CS.")
  in
  let trace = Arg.(value & flag & info [ "trace" ] ~doc:"Print the full trace.") in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run a lock through a workload and report RMRs.")
    Term.(
      const simulate $ lock_arg $ n_arg 8 $ width_arg $ model_arg $ seed_arg $ sp
      $ crash_prob $ cs_crash $ trace)

(* ---------------- rme adversary ---------------- *)

let adversary lock n width model k check rounds_detail =
  let cfg = A.default_config ~n ~width model in
  let cfg = match k with Some k -> { cfg with A.k } | None -> cfg in
  let r = A.run cfg lock in
  Printf.printf "lock=%s n=%d w=%d k=%d model=%s\n" lock.Lock_intf.name n width
    cfg.A.k (Rmr.model_name model);
  Printf.printf
    "rounds=%d (Theorem 1 bound: %.2f)\nsurvivors=%d min survivor RMRs=%d\n"
    r.A.rounds_completed r.A.predicted_lower_bound
    (Intset.cardinal r.A.survivors)
    r.A.survivor_min_rmrs;
  Printf.printf "finished=%d removed=%d escaped=%d replay-checked steps=%d\n"
    r.A.finished r.A.removed r.A.escaped r.A.replay_checked_steps;
  if rounds_detail then
    List.iter
      (fun (ri : A.round_info) ->
        Printf.printf "  round %2d %-9s active %5d -> %5d finished=%d removed=%d\n"
          ri.A.index
          (A.round_kind_name ri.A.kind)
          ri.A.active_before ri.A.active_after ri.A.newly_finished
          ri.A.newly_removed)
      r.A.rounds;
  if check then begin
    let rep = T.check ~max_actives:10 r.A.schedule in
    Format.printf "invariant check: %a@." T.pp_report rep;
    if not (T.ok rep) then exit 1
  end

let adversary_cmd =
  let k =
    Arg.(
      value & opt (some int) None
      & info [ "k" ] ~docv:"K" ~doc:"Contention threshold (default w+1).")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check-invariants" ]
          ~doc:"Materialise the schedule table and verify invariants I1-I10.")
  in
  let detail = Arg.(value & flag & info [ "rounds" ] ~doc:"Print per-round detail.") in
  Cmd.v
    (Cmd.info "adversary"
       ~doc:"Run the Theorem 1 lower-bound construction against a lock.")
    Term.(
      const adversary $ lock_arg $ n_arg 64 $ width_arg $ model_arg $ k $ check
      $ detail)

(* ---------------- rme lemma ---------------- *)

let lemma ell delta m family seed trials =
  let module Hiding = Rme_core.Hiding in
  let fs = Rme_experiments.Experiments.e4_families in
  match List.assoc_opt family fs with
  | None ->
      Printf.eprintf "unknown family %S (available: %s)\n" family
        (String.concat ", " (List.map fst fs));
      exit 1
  | Some f ->
      let p = Hiding.paper_params ~ell ~delta in
      let gsize = Hiding.min_group_size p in
      Printf.printf
        "params: ell=%d delta=%.1f k=%d subgroup=%d group-size=%d m=%d\n" ell delta
        p.Hiding.k p.Hiding.subgroup_size gsize m;
      let groups =
        Array.init m (fun i -> Array.init gsize (fun j -> (i * gsize) + j))
      in
      let sol = Hiding.solve p ~groups ~f ~y0:0 in
      (match Hiding.verify sol ~f with
      | Ok () -> print_endline "solve: ok (all lemma clauses verified)"
      | Error e ->
          Printf.printf "solve: FAILED %s\n" e;
          exit 1);
      let rng = Rme_util.Splitmix.create seed in
      let v = Hiding.all_v sol in
      let budget = int_of_float (delta *. float_of_int (Intset.cardinal v)) in
      let pool = Array.concat (Array.to_list groups) in
      let min_id = ref max_int in
      for _ = 1 to trials do
        Rme_util.Splitmix.shuffle rng pool;
        let d =
          Array.sub pool 0 (Rme_util.Splitmix.int rng (budget + 1))
          |> Array.fold_left (fun acc x -> Intset.add x acc) Intset.empty
        in
        let hs = Hiding.query sol ~d in
        min_id := min !min_id (List.length hs);
        match Hiding.verify_query sol ~f ~d hs with
        | Ok () -> ()
        | Error e ->
            Printf.printf "query: FAILED %s\n" e;
            exit 1
      done;
      Printf.printf "%d random discovery sets: min |I_D| = %d (needs >= %.1f)\n"
        trials !min_id
        (float_of_int m /. 2.0)

let lemma_cmd =
  let ell = Arg.(value & opt int 1 & info [ "ell" ] ~doc:"Value-domain bits.") in
  let delta = Arg.(value & opt float 1.0 & info [ "delta" ] ~doc:"Discovery budget.") in
  let m = Arg.(value & opt int 3 & info [ "groups" ] ~doc:"Number of groups.") in
  let family =
    Arg.(
      value
      & opt string "fas (last writer)"
      & info [ "family" ] ~doc:"Operation family (see experiment e4).")
  in
  let trials = Arg.(value & opt int 20 & info [ "trials" ] ~doc:"Random D sets.") in
  Cmd.v
    (Cmd.info "lemma" ~doc:"Solve and verify a Process-Hiding Lemma instance.")
    Term.(const lemma $ ell $ delta $ m $ family $ seed_arg $ trials)

(* ---------------- rme worker ---------------- *)

(* The hidden counterpart of --workers: the coordinator spawns [rme
   worker [--cache-dir DIR]] subprocesses and streams cell batches to
   them over stdin/stdout. Not meant for human invocation (it will sit
   silently waiting for frames), but harmless if invoked. *)

let cell_timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "cell-timeout" ] ~docv:"SECONDS"
        ~doc:
          "Wall-clock budget per trial cell (also via $(b,RME_CELL_TIMEOUT)). \
           A cell exceeding it records an explicit timed-out result instead \
           of hanging the sweep; $(b,--resume) retries such cells with an \
           escalated budget.")

let step_budget_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "step-budget" ] ~docv:"STEPS"
        ~doc:
          "Scheduler-turn budget per trial cell (also via \
           $(b,RME_STEP_BUDGET)); default is the harness's n-squared formula.")

let worker_cmd =
  let cache_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:"Let the worker consult and feed this result store itself.")
  in
  let retry =
    Arg.(
      value & flag
      & info [ "retry-timed-out" ]
          ~doc:"Treat stored timed-out results as misses (resume mode).")
  in
  let escalation =
    Arg.(
      value & opt float 1.0
      & info [ "escalation" ] ~docv:"FACTOR"
          ~doc:"Budget scale factor applied when recomputing cells.")
  in
  let run cache_dir cell_timeout step_budget retry_timed_out escalation =
    let budgets =
      { Engine.cell_timeout; step_budget; retry_timed_out; escalation }
    in
    Rme_experiments.Engine.serve_worker ?cache_dir ~budgets stdin stdout
  in
  Cmd.v
    (Cmd.info "worker"
       ~doc:
         "Internal: serve experiment cell batches over stdin/stdout. Spawned \
          by $(b,--workers); speaks a length-prefixed framing of the result \
          store's line format, gated by a code-fingerprint handshake.")
    Term.(
      const run $ cache_dir $ cell_timeout_arg $ step_budget_arg $ retry
      $ escalation)

(* ---------------- rme experiment ---------------- *)

(* The worker command line matching this front-end: this very binary's
   hidden [worker] subcommand, handed the same cache directory (so
   worker-computed results persist on their own) and the same cell
   budgets (so workers time cells out exactly like the coordinator). *)
let worker_argv cache (b : Engine.budgets) =
  Array.of_list
    ((Sys.executable_name :: [ "worker" ])
    @ (match cache with Some d -> [ "--cache-dir"; d ] | None -> [])
    @ (match b.Engine.cell_timeout with
      | Some s -> [ "--cell-timeout"; string_of_float s ]
      | None -> [])
    @ (match b.Engine.step_budget with
      | Some n -> [ "--step-budget"; string_of_int n ]
      | None -> [])
    @ (if b.Engine.retry_timed_out then [ "--retry-timed-out" ] else [])
    @
    if b.Engine.escalation <> 1.0 then
      [ "--escalation"; string_of_float b.Engine.escalation ]
    else [])

let experiment jobs workers cache_dir no_cache progress resume cell_timeout
    step_budget batch_deadline autosave_cells autosave_secs ids =
  let module E = Rme_experiments.Experiments in
  Engine.install_interrupt_handlers ();
  Engine.set_jobs jobs;
  let cache = Engine.resolve_cache_dir ?cli:cache_dir ~no_cache () in
  if resume && cache = None then begin
    Printf.eprintf
      "rme: --resume needs a cache directory (--cache-dir or RME_CACHE_DIR)\n";
    exit 2
  end;
  Engine.set_cache_dir cache;
  let cell_timeout = Engine.resolve_cell_timeout ?cli:cell_timeout () in
  let step_budget = Engine.resolve_step_budget ?cli:step_budget () in
  Engine.configure ?cell_timeout ?step_budget ~label:"rme experiment" ();
  if resume then begin
    (match cache with
    | Some dir -> Printf.eprintf "%s\n%!" (Engine.resume_banner ~dir)
    | None -> ());
    (* Timed-out cells get one more chance with 4x both budgets. *)
    Engine.configure ~retry_timed_out:true ~escalation:4.0 ()
  end;
  let env_cells, env_secs = Engine.resolve_autosave () in
  let autosave_cells = match autosave_cells with Some _ as c -> c | None -> env_cells in
  let autosave_secs = match autosave_secs with Some _ as s -> s | None -> env_secs in
  Engine.configure ?autosave_cells ?autosave_secs ();
  let budgets = { Engine.cell_timeout; step_budget; retry_timed_out = resume;
                  escalation = (if resume then 4.0 else 1.0) } in
  Engine.set_workers
    ~argv:(worker_argv cache budgets)
    ?deadline:(Engine.resolve_batch_deadline ?cli:batch_deadline ())
    (Engine.resolve_workers ?cli:workers ());
  Engine.set_progress (Engine.resolve_progress ~cli:progress ());
  let eng = Engine.default () in
  let ids = if ids = [ "all" ] then List.map (fun (i, _, _) -> i) E.all else ids in
  let finish () = Engine.set_workers 0 in
  try
    List.iter
      (fun id ->
        let c0 = Engine.counters eng in
        let t0 = Unix.gettimeofday () in
        match E.run_one id with
        | Some tables ->
            List.iter Rme_util.Table.print tables;
            let c1 = Engine.counters eng in
            Printf.printf
              "(%s completed in %.1fs; j=%d; cells: %d computed (%d remote), \
               %d cached, %d disk)\n\n\
               %!"
              id
              (Unix.gettimeofday () -. t0)
              (Engine.jobs eng)
              (c1.Engine.computed - c0.Engine.computed)
              (c1.Engine.remote - c0.Engine.remote)
              (c1.Engine.cached - c0.Engine.cached)
              (c1.Engine.disk - c0.Engine.disk)
        | None ->
            Printf.eprintf "unknown experiment %S\n" id;
            finish ();
            exit 1)
      ids;
    (* Politely stop the worker subprocesses (EOF, then reap) rather
       than letting process exit tear the pipes down under them. *)
    finish ()
  with Engine.Interrupted ->
    (match cache with
    | Some _ ->
        Printf.eprintf
          "rme: interrupted — committed cells are saved; re-run with --resume \
           to continue\n"
    | None ->
        Printf.eprintf
          "rme: interrupted — no cache directory, computed cells are lost\n");
    finish ();
    exit Engine.exit_interrupted

let experiment_cmd =
  let ids =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"ID" ~doc:"Experiment ids (e1..f1) or 'all'.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Shard trial cells over $(docv) domains (0 = auto-detect). Tables \
             are bit-identical at any value.")
  in
  let workers =
    Arg.(
      value
      & opt (some int) None
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Shard cell batches over $(docv) worker subprocesses (also via \
             $(b,RME_WORKERS)). A fingerprint handshake gates every worker; \
             lost, hung or corrupt workers have their batches requeued, \
             falling back to in-process compute, so tables stay bit-identical \
             to $(b,--workers) 0 at any value.")
  in
  let cache_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Persist trial-cell results under $(docv) and reuse them across \
             runs (also via $(b,RME_CACHE_DIR)). Entries are versioned by a \
             code fingerprint; a mismatched or corrupt store is recomputed, \
             never served.")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:"Ignore $(b,--cache-dir) and $(b,RME_CACHE_DIR); compute everything.")
  in
  let progress =
    Arg.(
      value & flag
      & info [ "progress"; "v" ]
          ~doc:
            "Force the live cells-done/ETA stderr line on. Without the flag \
             it is on exactly when stderr is a terminal.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Continue an interrupted sweep from the cache directory: cells \
             already in the store are served from disk, timed-out cells are \
             recomputed with 4x budgets, and everything else picks up where \
             the previous run stopped.")
  in
  let batch_deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "batch-deadline" ] ~docv:"SECONDS"
          ~doc:
            "Seconds a worker subprocess may hold one batch before it is \
             declared hung (also via $(b,RME_BATCH_DEADLINE)); default is \
             derived from $(b,--cell-timeout) when one is set.")
  in
  let autosave_cells =
    Arg.(
      value
      & opt (some int) None
      & info [ "autosave-cells" ] ~docv:"N"
          ~doc:
            "Flush the store and manifest every $(docv) committed cells \
             (also via $(b,RME_AUTOSAVE_CELLS); default 64).")
  in
  let autosave_secs =
    Arg.(
      value
      & opt (some float) None
      & info [ "autosave-secs" ] ~docv:"SECONDS"
          ~doc:
            "Flush the store and manifest at least every $(docv) seconds \
             while committing (also via $(b,RME_AUTOSAVE_SECS); default 10).")
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate the paper-shaped experiment tables.")
    Term.(
      const experiment $ jobs $ workers $ cache_dir $ no_cache $ progress
      $ resume $ cell_timeout_arg $ step_budget_arg $ batch_deadline
      $ autosave_cells $ autosave_secs $ ids)

(* ---------------- rme store ---------------- *)

(* Offline inspection and repair of a result-store directory. All four
   verbs resolve the directory the same way the experiment runner
   does: positional DIR beats RME_CACHE_DIR; with neither, exit 2. *)

module Fsck = Rme_store.Fsck

let store_dir_of dir =
  match dir with
  | Some d -> d
  | None -> (
      match Sys.getenv_opt "RME_CACHE_DIR" with
      | Some d when d <> "" -> d
      | _ ->
          Printf.eprintf "rme store: no directory (pass DIR or set RME_CACHE_DIR)\n";
          exit 2)

let pp_shard_class = function
  | Fsck.Clean n -> Printf.sprintf "clean (%d entries)" n
  | Fsck.Stale -> "stale (other fingerprint or future version)"
  | Fsck.Torn { good; dropped } ->
      Printf.sprintf "torn tail (%d entries kept, %d lines dropped)" good dropped
  | Fsck.Corrupt { good; bad } ->
      Printf.sprintf "CORRUPT (%d lines bad, %d salvageable)" bad good
  | Fsck.Unreadable -> "UNREADABLE (bad header or IO error)"

let print_report ~verbose (r : Fsck.report) =
  Printf.printf "shards: %d scanned, %d clean, %d stale, %d torn, %d corrupt, %d unreadable\n"
    r.Fsck.scanned r.Fsck.clean r.Fsck.stale r.Fsck.torn r.Fsck.corrupt
    r.Fsck.unreadable;
  Printf.printf "entries: %d intact" r.Fsck.entries;
  List.iter (fun (s, n) -> Printf.printf ", %s=%d" s n) r.Fsck.sections;
  Printf.printf "; %d lines lost\n" r.Fsck.lost_lines;
  if r.Fsck.healed + r.Fsck.quarantined + r.Fsck.salvaged > 0 then
    Printf.printf "repair: %d healed in place, %d quarantined, %d entries salvaged\n"
      r.Fsck.healed r.Fsck.quarantined r.Fsck.salvaged;
  if verbose then
    List.iter
      (fun (name, c) -> Printf.printf "  %-40s %s\n" name (pp_shard_class c))
      r.Fsck.files

let store_cmd =
  let dir_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"DIR"
          ~doc:"Store directory (default: $(b,RME_CACHE_DIR)).")
  in
  let files_flag =
    Arg.(value & flag & info [ "files" ] ~doc:"List every shard with its class.")
  in
  let fingerprint () = Engine.code_fingerprint () in
  let verify dir files =
    let dir = store_dir_of dir in
    let r = Fsck.scan ~dir ~fingerprint:(fingerprint ()) in
    print_report ~verbose:files r;
    if r.Fsck.torn + r.Fsck.corrupt + r.Fsck.unreadable > 0 then exit 1
  in
  let repair dir files =
    let dir = store_dir_of dir in
    let r = Fsck.repair ~dir ~fingerprint:(fingerprint ()) in
    print_report ~verbose:files r
  in
  let compact dir =
    let dir = store_dir_of dir in
    let merged, entries = Fsck.compact ~dir ~fingerprint:(fingerprint ()) in
    if merged = 0 then print_endline "nothing to compact (fewer than two clean shards)"
    else Printf.printf "compacted %d shards into one (%d entries)\n" merged entries
  in
  let stats dir =
    let dir = store_dir_of dir in
    let r = Fsck.scan ~dir ~fingerprint:(fingerprint ()) in
    print_report ~verbose:true r;
    match Engine.load_manifest ~dir with
    | None -> ()
    | Some m ->
        Printf.printf
          "manifest: %s %s — %d/%d cells done (%d timed out), %.1fs elapsed\n"
          m.Engine.m_label
          (if m.Engine.m_interrupted then "[interrupted]" else "[checkpoint]")
          m.Engine.m_done m.Engine.m_total m.Engine.m_timed_out m.Engine.m_elapsed
  in
  let sub name doc term = Cmd.v (Cmd.info name ~doc) term in
  Cmd.group
    (Cmd.info "store"
       ~doc:"Inspect, verify and repair a persistent result store.")
    [
      sub "verify"
        "Classify every shard (read-only); exit 1 if any is torn, corrupt or \
         unreadable."
        Term.(const verify $ dir_arg $ files_flag);
      sub "repair"
        "Heal torn shards in place; quarantine corrupt ones, salvaging their \
         checksum-valid lines."
        Term.(const repair $ dir_arg $ files_flag);
      sub "compact"
        "Merge all clean shards into one (repairs first; crash-safe: the \
         merged shard is published before sources are deleted)."
        Term.(const compact $ dir_arg);
      sub "stats" "Shard classes, entry counts and the run manifest, if any."
        Term.(const stats $ dir_arg);
    ]

(* ---------------- main ---------------- *)

let eval ?argv () =
  let doc =
    "Simulator, algorithms and lower-bound machinery for word-size RMR \
     tradeoffs in recoverable mutual exclusion (Chan, Giakkoupis, Woelfel, \
     PODC 2023)."
  in
  let info = Cmd.info "rme" ~version:"1.0.0" ~doc in
  Cmd.eval ?argv
    (Cmd.group info
       [
         locks_cmd;
         simulate_cmd;
         adversary_cmd;
         lemma_cmd;
         experiment_cmd;
         store_cmd;
         worker_cmd;
       ])
