(** The [rme] command-line interface as a library, so tests can drive
    the cmdliner terms in-process.

    Subcommands:
    - [rme locks] — list the lock algorithms
    - [rme simulate --lock km ...] — run a workload through the harness
    - [rme adversary --lock rcas ...] — run the lower-bound construction
    - [rme lemma ...] — solve a Process-Hiding instance
    - [rme experiment e1 .. f1 | all [-j N]] — regenerate the tables,
      optionally sharding trial cells over [N] domains (bit-identical
      output at any [N]). *)

val eval : ?argv:string array -> unit -> int
(** Evaluate the [rme] command group and return the exit code.
    [argv] defaults to [Sys.argv]; [argv.(0)] is the program name. *)
