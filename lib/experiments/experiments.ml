module Table = Rme_util.Table
module Intset = Rme_util.Intset
module Splitmix = Rme_util.Splitmix
module Bitword = Rme_util.Bitword
module H = Rme_sim.Harness
module Lock_intf = Rme_sim.Lock_intf
module Rmr = Rme_memory.Rmr
module Registry = Rme_locks.Registry
module Bounds = Rme_core.Bounds
module Hiding = Rme_core.Hiding

type outcome = Table.t list

(* Every experiment decomposes into independent trial cells, prefetches
   the whole batch through the engine (parallel across domains, memoised
   by cell key), then formats its tables with [Engine.get] lookups in
   the original enumeration order — so tables are bit-identical to a
   sequential run, and cells shared between experiments are computed
   once per process. *)

let engine_of = function Some e -> e | None -> Engine.default ()

(* ------------------------------------------------------------------ *)
(* E1: the RMR landscape across algorithms (the measured version of the
   paper's §1.2 comparison). *)

let theory_of (factory : Lock_intf.factory) ~n ~w =
  match factory.Lock_intf.name with
  | "tas" | "ticket" -> "O(n) worst"
  | "mcs" -> "O(1)"
  | "peterson-tree" -> Printf.sprintf "O(log n)=%.0f" (Bounds.log_n ~n)
  | "rcas" | "rstamp" -> "O(n)"
  | "rtournament" -> Printf.sprintf "O(log n)=%.0f" (Bounds.log_n ~n)
  | "katzan-morrison" -> Printf.sprintf "O(log_w n)=%.0f" (Bounds.km_upper ~n ~w)
  | "sublog-tournament" ->
      Printf.sprintf "O(log n/llog n)=%.1f" (Bounds.log_over_loglog ~n)
  | "clh" -> "O(1) (CC)"
  | "epoch-mcs" -> "O(1) (system-wide)"
  | _ -> "?"

let e1_lock_landscape ?engine ?(seed = 42) ?(width = 16) ?(ns = [ 2; 4; 8; 16; 32; 64 ]) () =
  let eng = engine_of engine in
  let cell ~model ~n factory =
    Engine.cell ~superpassages:2 ~seed ~n ~width ~model factory
  in
  Engine.prefetch eng
    (List.concat_map
       (fun model ->
         List.concat_map
           (fun (factory : Lock_intf.factory) ->
             List.filter_map
               (fun n ->
                 if Lock_intf.supports factory ~n ~width then
                   Some (cell ~model ~n factory)
                 else None)
               ns)
           Registry.all)
       Rmr.all_models);
  List.map
    (fun model ->
      let t =
        Table.create
          ~title:
            (Printf.sprintf
               "E1 (%s): max RMRs per passage, crash-free, w=%d (rows: lock; \
                cols: n)"
               (Rmr.model_name model) width)
          ~columns:
            ("lock" :: List.map (fun n -> Printf.sprintf "n=%d" n) ns
            @ [ "theory (largest n)" ])
      in
      List.iter
        (fun (factory : Lock_intf.factory) ->
          let cells =
            List.map
              (fun n ->
                if Lock_intf.supports factory ~n ~width then begin
                  let r = Engine.get eng (cell ~model ~n factory) in
                  if r.Engine.ok then string_of_int r.Engine.max_passage_rmr
                  else "FAIL"
                end
                else "n/a")
              ns
          in
          let n_max = List.fold_left max 2 ns in
          Table.add_row t
            ((factory.Lock_intf.name :: cells)
            @ [ theory_of factory ~n:n_max ~w:width ]))
        Registry.all;
      t)
    Rmr.all_models

(* ------------------------------------------------------------------ *)
(* E2: the word-size tradeoff of the Katzan–Morrison lock. *)

let e2_word_size_tradeoff ?engine ?(seed = 7) ?(ns = [ 16; 64; 256; 1024 ])
    ?(ws = [ 2; 4; 8; 16; 32; 62 ]) () =
  let eng = engine_of engine in
  let cell ~model ~n ~w =
    Engine.cell ~superpassages:1 ~seed ~n ~width:w ~model
      Rme_locks.Katzan_morrison.factory
  in
  Engine.prefetch eng
    (List.concat_map
       (fun model ->
         List.concat_map (fun n -> List.map (fun w -> cell ~model ~n ~w) ws) ns)
       Rmr.all_models);
  List.map
    (fun model ->
      let t =
        Table.create
          ~title:
            (Printf.sprintf
               "E2 (%s): Katzan-Morrison max RMRs per passage vs word size \
                (theory: ceil(log_w n) levels)"
               (Rmr.model_name model))
          ~columns:
            ("n"
            :: List.concat_map
                 (fun w -> [ Printf.sprintf "w=%d" w; Printf.sprintf "lvls" ])
                 ws)
      in
      List.iter
        (fun n ->
          let cells =
            List.concat_map
              (fun w ->
                let r = Engine.get eng (cell ~model ~n ~w) in
                let levels = Bounds.tree_levels ~n ~b:(min w n) in
                [
                  (if r.Engine.ok then string_of_int r.Engine.max_passage_rmr
                   else "FAIL");
                  string_of_int levels;
                ])
              ws
          in
          Table.add_row t (string_of_int n :: cells))
        ns;
      t)
    Rmr.all_models

(* ------------------------------------------------------------------ *)
(* E3: rounds forced by the lower-bound adversary. *)

let e3_adversary_bound ?engine ?(ns = [ 64; 256; 1024; 4096 ]) ?(ws = [ 4; 8; 16; 32 ]) () =
  let eng = engine_of engine in
  let cell ~model ~factory ~n ~w = Engine.adv_cell ~n ~width:w ~model factory in
  Engine.prefetch_adv eng
    (List.concat_map
       (fun model ->
         List.concat_map
           (fun (factory : Lock_intf.factory) ->
             List.concat_map
               (fun n ->
                 List.filter_map
                   (fun w ->
                     if Lock_intf.supports factory ~n ~width:w then
                       Some (cell ~model ~factory ~n ~w)
                     else None)
                   ws)
               ns)
           Registry.recoverable)
       Rmr.all_models);
  List.concat_map
    (fun model ->
      List.map
        (fun (factory : Lock_intf.factory) ->
          let t =
            Table.create
              ~title:
                (Printf.sprintf
                   "E3 (%s, %s): adversary rounds (= RMRs forced on survivors) \
                    vs Theorem 1 bound"
                   factory.Lock_intf.name (Rmr.model_name model))
              ~columns:
                ("n"
                :: List.concat_map
                     (fun w -> [ Printf.sprintf "w=%d" w; "bound"; "surv" ])
                     ws)
          in
          List.iter
            (fun n ->
              let cells =
                List.concat_map
                  (fun w ->
                    if Lock_intf.supports factory ~n ~width:w then begin
                      let r = Engine.get_adv eng (cell ~model ~factory ~n ~w) in
                      [
                        string_of_int r.Engine.rounds;
                        Printf.sprintf "%.1f" r.Engine.bound;
                        string_of_int r.Engine.survivors;
                      ]
                    end
                    else [ "n/a"; "-"; "-" ])
                  ws
              in
              Table.add_row t (string_of_int n :: cells))
            ns;
          t)
        Registry.recoverable)
    Rmr.all_models

(* ------------------------------------------------------------------ *)
(* E4: the Process-Hiding Lemma with the paper's constants. *)

let e4_families : (string * (y:int -> Rme_core.Partite.edge -> int)) list =
  [
    ("fas (last writer)", fun ~y e ->
        if Array.length e = 0 then y else e.(Array.length e - 1) mod 2);
    ("or (KM bit-set, w=1)", fun ~y e ->
        Array.fold_left (fun acc p -> acc lor (1 lsl (p mod 2))) y e);
    ("faa (wrap w=1)", fun ~y e ->
        Array.fold_left (fun acc p -> Bitword.add ~width:1 acc (1 + (p mod 3))) y e);
    ("parity (arbitrary rmw)", fun ~y e ->
        Array.fold_left (fun acc p -> acc lxor (p land 1)) y e);
  ]

let e4_hiding_lemma ?engine ?(seed = 99) ?(m = 3) ?(trials = 50) () =
  let eng = engine_of engine in
  let p = Hiding.paper_params ~ell:1 ~delta:1.0 in
  let gsize = Hiding.min_group_size p in
  let groups = Array.init m (fun i -> Array.init gsize (fun j -> (i * gsize) + j)) in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "E4: Process-Hiding Lemma, paper constants (ell=1, delta=1, k=%d, \
            subgroup=%d, groups of %d, m=%d); %d random discovery sets each"
           p.Hiding.k p.Hiding.subgroup_size gsize m trials)
      ~columns:
        [ "operation family"; "solved"; "verify"; "min |I_D|"; "m/2"; "query verify" ]
  in
  (* Each family is an independent solve + adversarial-query trial run
     (with its own RNG from [seed]): one parallel task per family. *)
  let rows =
    Engine.map eng
      (fun (name, f) ->
        let sol = Hiding.solve p ~groups ~f ~y0:0 in
        let verified =
          match Hiding.verify sol ~f with Ok () -> "ok" | Error e -> "FAIL: " ^ e
        in
        let rng = Splitmix.create seed in
        let v = Hiding.all_v sol in
        let budget = int_of_float (p.Hiding.delta *. float_of_int (Intset.cardinal v)) in
        let pool = Array.concat (Array.to_list groups) in
        let min_id = ref max_int in
        let query_ok = ref true in
        for _ = 1 to trials do
          Splitmix.shuffle rng pool;
          let d =
            Array.sub pool 0 (Splitmix.int rng (budget + 1))
            |> Array.fold_left (fun acc x -> Intset.add x acc) Intset.empty
          in
          let hs = Hiding.query sol ~d in
          min_id := min !min_id (List.length hs);
          if Hiding.verify_query sol ~f ~d hs <> Ok () then query_ok := false
        done;
        [
          name;
          string_of_int (Array.length sol.Hiding.groups);
          verified;
          string_of_int !min_id;
          Printf.sprintf "%.1f" (float_of_int m /. 2.0);
          (if !query_ok then "ok" else "FAIL");
        ])
      e4_families
  in
  List.iter (Table.add_row t) rows;
  [ t ]

(* ------------------------------------------------------------------ *)
(* E5: recovery cost under increasing crash rates. *)

let e5_crash_cost ?engine ?(seed = 5) ?(n = 8)
    ?(probs = [ 0.0; 0.01; 0.02; 0.05; 0.1; 0.2 ]) () =
  let eng = engine_of engine in
  let superpassages = 4 in
  let cell ~model ~factory ~prob =
    Engine.cell ~superpassages
      ~crashes:
        (if prob = 0.0 then H.No_crashes
         else H.Crash_prob { prob; seed = seed * 31 })
      ~allow_cs_crash:true ~max_crashes:6 ~seed ~n ~width:16 ~model factory
  in
  Engine.prefetch eng
    (List.concat_map
       (fun model ->
         List.concat_map
           (fun (factory : Lock_intf.factory) ->
             List.map (fun prob -> cell ~model ~factory ~prob) probs)
           Registry.recoverable)
       Rmr.all_models);
  List.map
    (fun model ->
      let t =
        Table.create
          ~title:
            (Printf.sprintf
               "E5 (%s): recoverable locks under crashes, n=%d, w=16 (cells: \
                mean RMRs per super-passage ~ mean per passage / crashes)"
               (Rmr.model_name model) n)
          ~columns:
            ("lock"
            :: List.map (fun p -> Printf.sprintf "p=%.2f" p) probs)
      in
      List.iter
        (fun (factory : Lock_intf.factory) ->
          let cells =
            List.map
              (fun prob ->
                let r = Engine.get eng (cell ~model ~factory ~prob) in
                if r.Engine.ok then begin
                  (* RMRs per super-passage: the true cost of recovery —
                     crashes split super-passages into more (cheaper)
                     passages, so the per-passage mean alone understates
                     the recovery overhead. *)
                  let work = r.Engine.total_rmrs - r.Engine.cs_entries in
                  let sps = n * superpassages in
                  Printf.sprintf "%.1f ~ %.1f /%d"
                    (float_of_int work /. float_of_int sps)
                    r.Engine.mean_passage_rmr r.Engine.total_crashes
                end
                else "FAIL")
              probs
          in
          Table.add_row t (factory.Lock_intf.name :: cells))
        Registry.recoverable;
      t)
    Rmr.all_models

(* ------------------------------------------------------------------ *)
(* E6: CC vs DSM side by side. The seed and shape deliberately match
   E1's n=32 column, so when both experiments run in one process every
   E6 cell is a memo-cache hit. *)

let e6_model_comparison ?engine ?(seed = 42) ?(n = 32) () =
  let eng = engine_of engine in
  let cell ~model factory =
    Engine.cell ~superpassages:2 ~seed ~n ~width:16 ~model factory
  in
  Engine.prefetch eng
    (List.concat_map
       (fun model ->
         List.filter_map
           (fun (factory : Lock_intf.factory) ->
             if Lock_intf.supports factory ~n ~width:16 then
               Some (cell ~model factory)
             else None)
           Registry.all)
       Rmr.all_models);
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "E6: CC vs DSM, n=%d, w=16, crash-free (max / mean RMRs per passage)" n)
      ~columns:[ "lock"; "CC max"; "CC mean"; "DSM max"; "DSM mean" ]
  in
  List.iter
    (fun (factory : Lock_intf.factory) ->
      let side model =
        if Lock_intf.supports factory ~n ~width:16 then begin
          let r = Engine.get eng (cell ~model factory) in
          if r.Engine.ok then
            ( string_of_int r.Engine.max_passage_rmr,
              Printf.sprintf "%.1f" r.Engine.mean_passage_rmr )
          else ("FAIL", "-")
        end
        else ("n/a", "-")
      in
      let cc_max, cc_mean = side Rmr.Cc in
      let dsm_max, dsm_mean = side Rmr.Dsm in
      Table.add_row t [ factory.Lock_intf.name; cc_max; cc_mean; dsm_max; dsm_mean ])
    Registry.all;
  [ t ]

(* ------------------------------------------------------------------ *)
(* E7: the min(log_w n, log n / log log n) crossover. *)

let e7_crossover ?engine ?(n = 65536) ?(ws = [ 2; 3; 4; 6; 8; 12; 16; 24; 32; 48; 62 ]) () =
  let eng = engine_of engine in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "E7: Theorem 1 crossover at n=%d (log2 n = %.0f): bound = \
            min(log_w n, log n/log log n)"
           n (Bounds.log_n ~n))
      ~columns:[ "w"; "log_w n"; "log n/log log n"; "Theorem 1 bound"; "regime" ]
  in
  let lll = Bounds.log_over_loglog ~n in
  List.iter
    (fun w ->
      let lwn = Bounds.km_upper ~n ~w in
      let bound = Bounds.theorem1_lower ~n ~w in
      Table.add_row t
        [
          string_of_int w;
          Printf.sprintf "%.2f" lwn;
          Printf.sprintf "%.2f" lll;
          Printf.sprintf "%.2f" bound;
          (if lwn <= lll then "word-size term" else "log/loglog term");
        ])
    ws;
  (* Measured companion: KM at a smaller n across the crossover. The
     seed matches E2, so the shared (n=1024, w) cells cache-hit. *)
  let n_meas = 1024 in
  let ws_meas = [ 2; 4; 8; 10; 16; 32 ] in
  let cell w =
    Engine.cell ~superpassages:1 ~seed:7 ~n:n_meas ~width:w ~model:Rmr.Cc
      Rme_locks.Katzan_morrison.factory
  in
  Engine.prefetch eng (List.map cell ws_meas);
  let t2 =
    Table.create
      ~title:
        (Printf.sprintf
           "E7b: measured KM (CC) max passage RMRs across the crossover, n=%d"
           n_meas)
      ~columns:[ "w"; "measured max RMR"; "ceil(log_w n)"; "bound" ]
  in
  List.iter
    (fun w ->
      let r = Engine.get eng (cell w) in
      Table.add_row t2
        [
          string_of_int w;
          (if r.Engine.ok then string_of_int r.Engine.max_passage_rmr else "FAIL");
          Printf.sprintf "%.0f" (Bounds.km_upper ~n:n_meas ~w);
          Printf.sprintf "%.2f" (Bounds.theorem1_lower ~n:n_meas ~w);
        ])
    ws_meas;
  [ t; t2 ]

(* ------------------------------------------------------------------ *)
(* E8: the system-wide crash separation (paper conclusion / [11], [14]):
   under simultaneous crashes with epoch support, O(1) RMRs per passage
   are possible — the lower bound inherently needs individual crashes. *)

let e8_system_wide ?engine ?(seed = 3) ?(ns = [ 4; 8; 16; 32; 64 ]) () =
  let eng = engine_of engine in
  let cell ~crashes ~n =
    Engine.cell ~superpassages:3 ~crashes ~allow_cs_crash:true ~seed ~n ~width:16
      ~model:Rmr.Cc Rme_locks.Epoch_mcs.factory
  in
  let rows =
    [
      ("epoch-mcs, crash-free", H.No_crashes);
      ("epoch-mcs, 2 system crashes", H.System_crash_script [ 10; 120 ]);
      ("epoch-mcs, 5 system crashes", H.System_crash_script [ 5; 30; 80; 160; 300 ]);
    ]
  in
  Engine.prefetch eng
    (List.concat_map
       (fun (_, crashes) -> List.map (fun n -> cell ~crashes ~n) ns)
       rows);
  let t =
    Table.create
      ~title:
        "E8: system-wide crash model — epoch-MCS max RMRs per passage stays \
         O(1) in n despite crashes (vs Theorem 1's growth under individual \
         crashes)"
      ~columns:
        ("lock / crashes"
        :: List.map (fun n -> Printf.sprintf "n=%d" n) ns)
  in
  List.iter
    (fun (name, crashes) ->
      let cells =
        List.map
          (fun n ->
            let r = Engine.get eng (cell ~crashes ~n) in
            if r.Engine.ok then string_of_int r.Engine.max_passage_rmr else "FAIL")
          ns
      in
      Table.add_row t (name :: cells))
    rows;
  (* Companion: the individual-crash adversary bound at the same n. *)
  let bound_row =
    "Theorem 1 bound (individual crashes)"
    :: List.map
         (fun n -> Printf.sprintf "%.1f" (Bounds.theorem1_lower ~n ~w:16))
         ns
  in
  Table.add_row t bound_row;
  [ t ]

(* ------------------------------------------------------------------ *)
(* A1: ablation — Katzan–Morrison tree arity below the word size. The
   design choice b = Θ(w) is what converts word width into fewer levels;
   forcing smaller arity at the same w gives strictly more levels. *)

let a1_arity_ablation ?engine ?(seed = 9) ?(n = 256) ?(arities = [ 2; 4; 8; 16; 32 ]) () =
  let eng = engine_of engine in
  let cell ~model b =
    Engine.cell ~superpassages:1 ~seed ~n ~width:32 ~model
      (Rme_locks.Katzan_morrison.factory_with_arity b)
  in
  Engine.prefetch eng
    (List.concat_map
       (fun b -> List.map (fun model -> cell ~model b) Rmr.all_models)
       arities);
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "A1 (ablation): KM tree arity at fixed w=32, n=%d — arity below \
            the word size wastes the word (max RMRs per passage)"
           n)
      ~columns:[ "arity b"; "levels"; "CC max"; "DSM max" ]
  in
  List.iter
    (fun b ->
      let side model =
        let r = Engine.get eng (cell ~model b) in
        if r.Engine.ok then string_of_int r.Engine.max_passage_rmr else "FAIL"
      in
      Table.add_row t
        [
          string_of_int b;
          string_of_int (Bounds.tree_levels ~n ~b);
          side Rmr.Cc;
          side Rmr.Dsm;
        ])
    arities;
  [ t ]

(* A2: ablation — the adversary's contention threshold k (the paper's
   w^d). Larger k merges more processes per hiding group: rounds shrink
   by at most a constant factor (log_{k} n vs log_w n), never below the
   bound. At w=16 the first column, k=17, is the default threshold —
   the same cell E3 computes. *)

let a2_k_ablation ?engine ?(n = 1024) ?(w = 16) ?(ks = [ 17; 24; 32; 64; 128 ]) () =
  let eng = engine_of engine in
  let cell ~factory k = Engine.adv_cell ~k ~n ~width:w ~model:Rmr.Cc factory in
  Engine.prefetch_adv eng
    (List.concat_map
       (fun (factory : Lock_intf.factory) ->
         if Lock_intf.supports factory ~n ~width:w then
           List.map (fun k -> cell ~factory k) ks
         else [])
       Registry.recoverable);
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "A2 (ablation): adversary contention threshold k at n=%d, w=%d \
            (rounds forced; Theorem 1 bound %.2f)"
           n w
           (Bounds.theorem1_lower ~n ~w))
      ~columns:
        ("lock" :: List.map (fun k -> Printf.sprintf "k=%d" k) ks)
  in
  List.iter
    (fun (factory : Lock_intf.factory) ->
      let cells =
        List.map
          (fun k ->
            if Lock_intf.supports factory ~n ~width:w then
              string_of_int (Engine.get_adv eng (cell ~factory k)).Engine.rounds
            else "n/a")
          ks
      in
      Table.add_row t (factory.Lock_intf.name :: cells))
    Registry.recoverable;
  [ t ]

(* A3: ablation — contention adaptivity. Katzan–Morrison's full
   algorithm is adaptive: O(min(k, log_w n)) for k concurrent
   contenders. Our implementation is the non-adaptive O(log_w n) core
   (DESIGN.md documents the simplification): a solo passage still climbs
   every level. This ablation measures that gap honestly. The contended
   cells share E2's (n=256, w) sweep. *)

let a3_adaptivity ?engine ?(n = 256) ?(ws = [ 4; 8; 16; 32 ]) () =
  let eng = engine_of engine in
  let contended w =
    Engine.cell ~superpassages:1 ~seed:7 ~n ~width:w ~model:Rmr.Cc
      Rme_locks.Katzan_morrison.factory
  in
  Engine.prefetch eng (List.map contended ws);
  let solos =
    Engine.map eng
      (fun w ->
        let m =
          Rme_core.Machine.create ~n ~width:w ~model:Rmr.Cc
            Rme_locks.Katzan_morrison.factory
        in
        let ok =
          Rme_core.Machine.run_to_completion m ~pid:0 ~cap:100_000
            ~on_step:(fun _ -> ())
        in
        assert ok;
        (* exclude the single CS step (a write: 1 RMR) *)
        Rme_core.Machine.total_rmrs m ~pid:0 - 1)
      ws
  in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "A3 (ablation): contention adaptivity at n=%d (CC) — our KM core \
            pays ceil(log_w n) levels even solo; the full algorithm of [19] \
            would pay O(min(k, log_w n))"
           n)
      ~columns:[ "w"; "solo passage RMRs"; "contended max RMRs"; "levels" ]
  in
  List.iter2
    (fun w solo ->
      let r = Engine.get eng (contended w) in
      Table.add_row t
        [
          string_of_int w;
          string_of_int solo;
          (if r.Engine.ok then string_of_int r.Engine.max_passage_rmr else "FAIL");
          string_of_int (Bounds.tree_levels ~n ~b:(min w n));
        ])
    ws solos;
  [ t ]

(* F1: fairness. The RME literature studies FCFS and starvation-freedom
   as extended properties (paper §1.2, "ignoring any extended
   properties"); the harness measures them as bypass counts: how many
   critical sections others completed between a request and its grant. *)

let f1_fairness ?engine ?(seed = 31) ?(n = 8) ?(sp = 6) () =
  let eng = engine_of engine in
  let cell factory =
    Engine.cell ~superpassages:sp ~seed ~n ~width:16 ~model:Rmr.Cc factory
  in
  Engine.prefetch eng
    (List.filter_map
       (fun (factory : Lock_intf.factory) ->
         if Lock_intf.supports factory ~n ~width:16 then Some (cell factory)
         else None)
       Registry.all);
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "F1: fairness — max CS entries by others between request and grant \
            (n=%d, %d super-passages, random schedule, CC)"
           n sp)
      ~columns:[ "lock"; "max bypass"; "doorway-FIFO (bypass <= 2n-2)" ]
  in
  List.iter
    (fun (factory : Lock_intf.factory) ->
      if Lock_intf.supports factory ~n ~width:16 then begin
        let r = Engine.get eng (cell factory) in
        let worst = r.Engine.max_bypass in
        Table.add_row t
          [
            factory.Lock_intf.name;
            string_of_int worst;
            (if worst <= (2 * n) - 2 then "yes" else "no");
          ]
      end)
    Registry.all;
  [ t ]

(* ------------------------------------------------------------------ *)

let all =
  [
    ("e1", "RMR landscape across lock algorithms", fun () -> e1_lock_landscape ());
    ("e2", "Katzan-Morrison word-size tradeoff", fun () -> e2_word_size_tradeoff ());
    ("e3", "lower-bound adversary vs Theorem 1", fun () -> e3_adversary_bound ());
    ("e4", "Process-Hiding Lemma (paper constants)", fun () -> e4_hiding_lemma ());
    ("e5", "crash-recovery cost", fun () -> e5_crash_cost ());
    ("e6", "CC vs DSM", fun () -> e6_model_comparison ());
    ("e7", "min(log_w n, log/loglog) crossover", fun () -> e7_crossover ());
    ("e8", "system-wide crash separation (epoch-MCS)", fun () -> e8_system_wide ());
    ("a1", "ablation: KM tree arity vs word size", fun () -> a1_arity_ablation ());
    ("a2", "ablation: adversary contention threshold k", fun () -> a2_k_ablation ());
    ("a3", "ablation: contention adaptivity of the KM core", fun () -> a3_adaptivity ());
    ("f1", "fairness: bypass counts per lock", fun () -> f1_fairness ());
  ]

let run_one id =
  List.find_opt (fun (i, _, _) -> i = id) all |> Option.map (fun (_, _, f) -> f ())
