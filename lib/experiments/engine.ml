module H = Rme_sim.Harness
module Lock_intf = Rme_sim.Lock_intf
module Rmr = Rme_memory.Rmr
module Pool = Rme_util.Pool
module Intset = Rme_util.Intset
module Fingerprint = Rme_util.Fingerprint
module A = Rme_core.Adversary
module Store = Rme_store.Store
module Codec = Rme_store.Codec
module Registry = Rme_locks.Registry
module Dist = Rme_dist.Coordinator
module Fault = Rme_util.Fault
module Json = Rme_util.Json

(* ------------------------------------------------------------------ *)
(* Harness trial cells. *)

type cell = {
  lock : Lock_intf.factory;
  n : int;
  width : int;
  model : Rmr.model;
  seed : int;
  superpassages : int;
  crashes : H.crash_policy;
  allow_cs_crash : bool;
  max_crashes : int;
}

let cell ?(superpassages = 1) ?(crashes = H.No_crashes) ?(allow_cs_crash = false)
    ?(max_crashes = 1) ~seed ~n ~width ~model lock =
  { lock; n; width; model; seed; superpassages; crashes; allow_cs_crash; max_crashes }

type cell_result = {
  ok : bool;
  timed_out : bool;
  max_passage_rmr : int;
  mean_passage_rmr : float;
  total_crashes : int;
  total_rmrs : int;
  cs_entries : int;
  max_bypass : int;
}

(* Per-cell budgets. [cell_timeout] is wall-clock seconds per cell,
   [step_budget] overrides the harness's n^2 formula; either [None]
   keeps the harness default. A cell exceeding its budget records an
   explicit timed-out result — the sweep completes instead of hanging.
   [retry_timed_out] (set by --resume) treats a stored timed-out
   result as a miss, recomputing it with both budgets scaled by
   [escalation]. *)
type budgets = {
  cell_timeout : float option;
  step_budget : int option;
  retry_timed_out : bool;
  escalation : float;
}

let no_budgets =
  { cell_timeout = None; step_budget = None; retry_timed_out = false; escalation = 1.0 }

(* The memo key is the cell with the factory replaced by its name
   (factories are closures; names are unique, including the
   [katzan-morrison-b<arity>] variants). Everything else is ints,
   floats and lists, so structural equality and [Hashtbl.hash] apply. *)
type key = {
  k_lock : string;
  k_n : int;
  k_width : int;
  k_model : Rmr.model;
  k_seed : int;
  k_sp : int;
  k_crashes : H.crash_policy;
  k_cs_crash : bool;
  k_max_crashes : int;
}

let key_of_cell c =
  {
    k_lock = c.lock.Lock_intf.name;
    k_n = c.n;
    k_width = c.width;
    k_model = c.model;
    k_seed = c.seed;
    k_sp = c.superpassages;
    k_crashes = c.crashes;
    k_cs_crash = c.allow_cs_crash;
    k_max_crashes = c.max_crashes;
  }

let compute_cell ?(budgets = no_budgets) c =
  (* Fault injection: an artificially slow cell, for exercising
     timeouts and mid-sweep interruption deterministically. The
     argument is the delay in milliseconds (default 50). *)
  if Fault.armed "slow-cell" then
    Unix.sleepf (float_of_int (max 0 (Option.value ~default:50 (Fault.param "slow-cell"))) /. 1000.0);
  let scale x =
    max 1 (int_of_float (Float.round (float_of_int x *. budgets.escalation)))
  in
  let step_budget =
    scale (Option.value ~default:(H.default_step_budget ~n:c.n) budgets.step_budget)
  in
  let deadline =
    Option.map
      (fun s -> Unix.gettimeofday () +. (s *. budgets.escalation))
      budgets.cell_timeout
  in
  let cfg =
    {
      (H.default_config ~n:c.n ~width:c.width c.model) with
      H.superpassages = c.superpassages;
      policy = H.Random_policy c.seed;
      crashes = c.crashes;
      allow_cs_crash = c.allow_cs_crash;
      max_crashes_per_process = c.max_crashes;
      step_budget;
      deadline;
    }
  in
  let r = H.run cfg c.lock in
  {
    ok = r.H.ok;
    timed_out = r.H.timed_out;
    max_passage_rmr = r.H.max_passage_rmr;
    mean_passage_rmr = r.H.mean_passage_rmr;
    total_crashes = r.H.total_crashes;
    total_rmrs =
      Array.fold_left (fun acc (p : H.proc_stats) -> acc + p.H.total_rmrs) 0 r.H.procs;
    cs_entries =
      Array.fold_left (fun acc (p : H.proc_stats) -> acc + p.H.cs_entries) 0 r.H.procs;
    max_bypass =
      Array.fold_left (fun acc (p : H.proc_stats) -> max acc p.H.max_bypass) 0 r.H.procs;
  }

(* ------------------------------------------------------------------ *)
(* Adversary cells. *)

type adv_cell = {
  a_lock : Lock_intf.factory;
  a_n : int;
  a_width : int;
  a_model : Rmr.model;
  a_k : int option;
}

let adv_cell ?k ~n ~width ~model lock =
  { a_lock = lock; a_n = n; a_width = width; a_model = model; a_k = k }

type adv_result = { rounds : int; bound : float; survivors : int }

type adv_key = {
  ak_lock : string;
  ak_n : int;
  ak_width : int;
  ak_model : Rmr.model;
  ak_k : int;
}

let adv_config c =
  let cfg = A.default_config ~n:c.a_n ~width:c.a_width c.a_model in
  match c.a_k with Some k -> { cfg with A.k } | None -> cfg

(* Key on the *effective* threshold so that an explicit [k] equal to the
   default (A2's first column vs E3) shares the memo entry. *)
let adv_key_of c =
  {
    ak_lock = c.a_lock.Lock_intf.name;
    ak_n = c.a_n;
    ak_width = c.a_width;
    ak_model = c.a_model;
    ak_k = (adv_config c).A.k;
  }

let compute_adv c =
  let r = A.run (adv_config c) c.a_lock in
  {
    rounds = r.A.rounds_completed;
    bound = r.A.predicted_lower_bound;
    survivors = Intset.cardinal r.A.survivors;
  }

(* ------------------------------------------------------------------ *)
(* Persistent serialisation: canonical strings for keys and results
   (the store's on-disk line format; also the wire format a future
   multi-process shard would speak). Keys never need decoding — disk
   lookup works by encoding the query key — but results round-trip
   exactly (floats in hex notation), keeping warm-store tables
   byte-identical to computed ones. *)

let cell_section = "cell"
let adv_section = "adv"

let cell_key_string_of_key (k : key) =
  Codec.fields
    [
      ("lock", Codec.escape k.k_lock);
      ("n", string_of_int k.k_n);
      ("w", string_of_int k.k_width);
      ("model", Codec.model_enc k.k_model);
      ("seed", string_of_int k.k_seed);
      ("sp", string_of_int k.k_sp);
      ("crashes", Codec.crash_policy_enc k.k_crashes);
      ("cs_crash", string_of_bool k.k_cs_crash);
      ("max_crashes", string_of_int k.k_max_crashes);
    ]

let cell_key_string c = cell_key_string_of_key (key_of_cell c)

let cell_result_encode (r : cell_result) =
  Codec.fields
    [
      ("ok", string_of_bool r.ok);
      ("max", string_of_int r.max_passage_rmr);
      ("mean", Codec.float_enc r.mean_passage_rmr);
      ("crashes", string_of_int r.total_crashes);
      ("rmrs", string_of_int r.total_rmrs);
      ("cs", string_of_int r.cs_entries);
      ("bypass", string_of_int r.max_bypass);
      ("to", string_of_bool r.timed_out);
    ]

let ( let* ) = Option.bind

let cell_result_decode s =
  let* fs = Codec.parse_fields s in
  let get f k = Option.bind (Codec.lookup fs k) f in
  let* ok = get Codec.bool_dec "ok" in
  let* max_passage_rmr = get Codec.int_dec "max" in
  let* mean_passage_rmr = get Codec.float_dec "mean" in
  let* total_crashes = get Codec.int_dec "crashes" in
  let* total_rmrs = get Codec.int_dec "rmrs" in
  let* cs_entries = get Codec.int_dec "cs" in
  let* max_bypass = get Codec.int_dec "bypass" in
  (* Optional: absent in entries written before the field existed —
     those were computed without budgets, hence never timed out. *)
  let timed_out = Option.value ~default:false (get Codec.bool_dec "to") in
  Some
    {
      ok;
      timed_out;
      max_passage_rmr;
      mean_passage_rmr;
      total_crashes;
      total_rmrs;
      cs_entries;
      max_bypass;
    }

let adv_key_string_of_key (k : adv_key) =
  Codec.fields
    [
      ("lock", Codec.escape k.ak_lock);
      ("n", string_of_int k.ak_n);
      ("w", string_of_int k.ak_width);
      ("model", Codec.model_enc k.ak_model);
      ("k", string_of_int k.ak_k);
    ]

let adv_key_string c = adv_key_string_of_key (adv_key_of c)

let adv_result_encode (r : adv_result) =
  Codec.fields
    [
      ("rounds", string_of_int r.rounds);
      ("bound", Codec.float_enc r.bound);
      ("survivors", string_of_int r.survivors);
    ]

let adv_result_decode s =
  let* fs = Codec.parse_fields s in
  let get f k = Option.bind (Codec.lookup fs k) f in
  let* rounds = get Codec.int_dec "rounds" in
  let* bound = get Codec.float_dec "bound" in
  let* survivors = get Codec.int_dec "survivors" in
  Some { rounds; bound; survivors }

(* Key decoding — what a worker process does with the key strings the
   coordinator streams to it. The store itself never decodes keys
   (disk lookup encodes the query); workers must, to reconstruct the
   cell they are asked to compute. The lock factory is recovered from
   the registry by name, so a key naming an unknown lock (never
   produced by same-fingerprint code, but the wire is untrusted)
   decodes to [None] rather than raising. *)

let cell_of_key_string s =
  let* fs = Codec.parse_fields s in
  let get f k = Option.bind (Codec.lookup fs k) f in
  let* lock_name = Option.bind (Codec.lookup fs "lock") Codec.unescape in
  let* lock = Registry.find lock_name in
  let* n = get Codec.int_dec "n" in
  let* width = get Codec.int_dec "w" in
  let* model = get Codec.model_dec "model" in
  let* seed = get Codec.int_dec "seed" in
  let* superpassages = get Codec.int_dec "sp" in
  let* crashes = get Codec.crash_policy_dec "crashes" in
  let* allow_cs_crash = get Codec.bool_dec "cs_crash" in
  let* max_crashes = get Codec.int_dec "max_crashes" in
  Some { lock; n; width; model; seed; superpassages; crashes; allow_cs_crash; max_crashes }

let adv_cell_of_key_string s =
  let* fs = Codec.parse_fields s in
  let get f k = Option.bind (Codec.lookup fs k) f in
  let* lock_name = Option.bind (Codec.lookup fs "lock") Codec.unescape in
  let* a_lock = Registry.find lock_name in
  let* a_n = get Codec.int_dec "n" in
  let* a_width = get Codec.int_dec "w" in
  let* a_model = get Codec.model_dec "model" in
  let* k = get Codec.int_dec "k" in
  Some { a_lock; a_n; a_width; a_model; a_k = Some k }

(* The worker-side dispatch: encoded key in, encoded result out.
   Total — an undecodable or unknown-section key is reported back as
   unservable (the coordinator computes it in-process) instead of
   taking the worker down. *)
let compute_encoded ?budgets ~section ~key () =
  if String.equal section cell_section then
    Option.map
      (fun c -> cell_result_encode (compute_cell ?budgets c))
      (cell_of_key_string key)
  else if String.equal section adv_section then
    Option.map (fun c -> adv_result_encode (compute_adv c)) (adv_cell_of_key_string key)
  else None

(* The code fingerprint versioning every store entry. [schema_version]
   is the convention-bumped part: raise it whenever harness, lock or
   adversary semantics change in a way that alters results. The
   registry signature invalidates automatically when locks are added,
   renamed or change their width requirements. *)
let schema_version = "rme-results-1"

let code_fingerprint () =
  let lock_sig (f : Lock_intf.factory) =
    Printf.sprintf "%s:%b:%d:%d:%d" f.Lock_intf.name f.Lock_intf.recoverable
      (f.Lock_intf.min_width ~n:2)
      (f.Lock_intf.min_width ~n:64)
      (f.Lock_intf.min_width ~n:4096)
  in
  Fingerprint.of_strings (schema_version :: List.map lock_sig Registry.all)

(* ------------------------------------------------------------------ *)
(* Graceful interruption. One process-wide flag: the first
   SIGINT/SIGTERM requests a stop (prefetch notices between cells,
   drains what is in flight, flushes store + manifest and raises
   {!Interrupted}); a second signal hard-exits with the conventional
   128+signo code for users who really mean it. *)

exception Interrupted

let exit_interrupted = 75 (* EX_TEMPFAIL: stopped cleanly, state saved *)

let interrupt_flag = Atomic.make false
let interrupt_signals = Atomic.make 0
let request_interrupt () = Atomic.set interrupt_flag true
let interrupted () = Atomic.get interrupt_flag

let clear_interrupt () =
  Atomic.set interrupt_flag false;
  Atomic.set interrupt_signals 0

let install_interrupt_handlers () =
  let handle signo =
    if Atomic.fetch_and_add interrupt_signals 1 = 0 then
      Atomic.set interrupt_flag true
    else Unix._exit (if signo = Sys.sigterm then 143 else 130)
  in
  List.iter
    (fun s ->
      try Sys.set_signal s (Sys.Signal_handle handle)
      with Invalid_argument _ | Sys_error _ -> ())
    [ Sys.sigint; Sys.sigterm ]

(* ------------------------------------------------------------------ *)
(* The engine. *)

type counters = { computed : int; cached : int; disk : int; remote : int }

type t = {
  pool : Pool.t;
  guard : Mutex.t;
  memo : (key, cell_result) Hashtbl.t;
  adv_memo : (adv_key, adv_result) Hashtbl.t;
  mutable store : Store.t option;
  mutable dist : Dist.t option;
  mutable progress : bool;
  mutable budgets : budgets;
  mutable label : string;
  mutable autosave_cells : int;
  mutable autosave_secs : float;
  mutable last_autosave : float;
  mutable since_autosave : int;
  mutable started : float;
  mutable n_computed : int;
  mutable n_cached : int;
  mutable n_disk : int;
  mutable n_remote : int;
  (* Manifest counters: cells requested / resolved / timed out across
     the engine's lifetime (memo re-hits of shared cells included —
     these describe sweep progress, not distinct keys). *)
  mutable u_total : int;
  mutable u_done : int;
  mutable u_timed : int;
}

let open_store dir =
  try Some (Store.open_ ~dir ~fingerprint:(code_fingerprint ()))
  with e ->
    Printf.eprintf "[rme] warning: cannot open result store %s (%s); running uncached\n%!"
      dir (Printexc.to_string e);
    None

(* The worker command line when none is given: this very binary with
   the front-ends' conventional worker-mode argument. Correct for
   [bin/rme] ([rme worker]); other hosts (bench, tests) pass their
   own [worker_argv]. *)
let default_worker_argv () = [| Sys.executable_name; "worker" |]

let env_float name =
  match Sys.getenv_opt name with
  | None | Some "" -> None
  | Some v -> float_of_string_opt v

let env_int name =
  match Sys.getenv_opt name with
  | None | Some "" -> None
  | Some v -> int_of_string_opt v

let make_dist ?worker_argv ?worker_deadline ?cell_timeout ~workers () =
  if workers <= 0 then None
  else
    let argv =
      match worker_argv with Some a -> a | None -> default_worker_argv ()
    in
    (* Batch-deadline resolution: explicit (--batch-deadline) beats
       RME_BATCH_DEADLINE beats a value derived from the cell budget —
       a batch is at most [Pool.auto_chunk]-capped (64) cells, so a
       worker honouring its per-cell timeout answers within ~64x the
       budget plus handshake slack; only with no budget at all does
       the flat 300 s default apply. *)
    let batch_deadline =
      match worker_deadline with
      | Some d -> d
      | None -> (
          match env_float "RME_BATCH_DEADLINE" with
          | Some d -> d
          | None -> (
              match cell_timeout with
              | Some ct -> Float.max 60.0 (10.0 +. (ct *. 64.0))
              | None -> 300.0))
    in
    Some
      (Dist.create
         (Dist.default_config ~batch_deadline
            ?handshake_deadline:(env_float "RME_HANDSHAKE_DEADLINE") ~workers ~argv
            ~fingerprint:(code_fingerprint ()) ()))

let create ?(jobs = 1) ?cache_dir ?(progress = false) ?(workers = 0) ?worker_argv
    ?worker_deadline ?cell_timeout ?step_budget ?(retry_timed_out = false)
    ?(escalation = 1.0) ?(autosave_cells = 64) ?(autosave_secs = 10.0)
    ?(label = "sweep") () =
  let budgets = { cell_timeout; step_budget; retry_timed_out; escalation } in
  {
    pool = Pool.create ~jobs;
    guard = Mutex.create ();
    memo = Hashtbl.create 256;
    adv_memo = Hashtbl.create 64;
    store = (match cache_dir with None -> None | Some d -> open_store d);
    dist =
      make_dist ?worker_argv ?worker_deadline ?cell_timeout:budgets.cell_timeout
        ~workers ();
    progress;
    budgets;
    label;
    autosave_cells = max 1 autosave_cells;
    autosave_secs = Float.max 0.1 autosave_secs;
    last_autosave = Unix.gettimeofday ();
    since_autosave = 0;
    started = Unix.gettimeofday ();
    n_computed = 0;
    n_cached = 0;
    n_disk = 0;
    n_remote = 0;
    u_total = 0;
    u_done = 0;
    u_timed = 0;
  }

let jobs t = Pool.jobs t.pool
let workers t = match t.dist with None -> 0 | Some d -> (Dist.config d).Dist.workers
let cache_dir t = Option.map Store.dir t.store
let store_stats t = Option.map Store.stats t.store
let dist_stats t = Option.map Dist.stats t.dist

(* A store failure must never take the run down: fall back to
   uncached operation (results stay correct, just recomputed). *)
let safe_flush t =
  match t.store with
  | None -> ()
  | Some s -> (
      try Store.flush s
      with e ->
        Printf.eprintf
          "[rme] warning: result store flush failed (%s); caching disabled\n%!"
          (Printexc.to_string e);
        t.store <- None)

(* ------------------------------------------------------------------ *)
(* The run manifest: a small JSON summary written atomically next to
   the shards at every autosave and checkpoint, so an interrupted or
   SIGKILLed sweep leaves behind how far it got. [--resume] reads it
   back for validation and reporting — the store itself remains the
   source of truth for which cells are done. Best effort: a manifest
   write failure must never take a run down. *)

let manifest_file = "manifest.json"
let manifest_path ~dir = Filename.concat dir manifest_file

type manifest = {
  m_fingerprint : string;
  m_label : string;
  m_total : int;
  m_done : int;
  m_timed_out : int;
  m_elapsed : float;
  m_interrupted : bool;
}

(* Caller holds [t.guard]. Skipped until the engine has seen work, so
   an incidental open (stats, a single lookup) does not clobber the
   previous sweep's manifest with zeros. *)
let save_manifest t ~interrupted =
  match t.store with
  | Some s when t.u_total > 0 -> (
      try
        let doc =
          Json.Obj
            [
              ("schema", Json.num_int 1);
              ("fingerprint", Json.Str (Store.fingerprint s));
              ("label", Json.Str t.label);
              ("total_cells", Json.num_int t.u_total);
              ("completed_cells", Json.num_int t.u_done);
              ("timed_out_cells", Json.num_int t.u_timed);
              ("elapsed_s", Json.Num (Unix.gettimeofday () -. t.started));
              ("interrupted", Json.Bool interrupted);
            ]
        in
        let path = manifest_path ~dir:(Store.dir s) in
        let tmp = path ^ ".tmp" in
        let oc = open_out_bin tmp in
        (try output_string oc (Json.to_string doc)
         with e ->
           close_out_noerr oc;
           raise e);
        close_out oc;
        Sys.rename tmp path
      with _ -> ())
  | _ -> ()

let load_manifest ~dir =
  let read path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> In_channel.input_all ic)
  in
  match read (manifest_path ~dir) with
  | exception Sys_error _ -> None
  | s -> (
      match Json.of_string s with
      | Error _ -> None
      | Ok doc -> (
          let str k = Option.bind (Json.member k doc) Json.to_str in
          let int k =
            match Option.bind (Json.member k doc) Json.to_float with
            | Some f -> int_of_float f
            | None -> 0
          in
          let flo k =
            Option.value ~default:0.0 (Option.bind (Json.member k doc) Json.to_float)
          in
          let boolean k =
            match Json.member k doc with Some (Json.Bool b) -> b | _ -> false
          in
          match str "fingerprint" with
          | None -> None
          | Some fp ->
              Some
                {
                  m_fingerprint = fp;
                  m_label = Option.value ~default:"" (str "label");
                  m_total = int "total_cells";
                  m_done = int "completed_cells";
                  m_timed_out = int "timed_out_cells";
                  m_elapsed = flo "elapsed_s";
                  m_interrupted = boolean "interrupted";
                }))

let resume_banner ~dir =
  match load_manifest ~dir with
  | None ->
      Printf.sprintf
        "[rme] --resume: no manifest under %s; stored cells are still reused" dir
  | Some m ->
      if m.m_fingerprint <> code_fingerprint () then
        Printf.sprintf
          "[rme] --resume: manifest under %s was written by different code; its \
           results are stale and will be recomputed"
          dir
      else
        Printf.sprintf "[rme] resuming %s: %d/%d cells committed%s, %.1fs spent%s"
          m.m_label m.m_done m.m_total
          (if m.m_timed_out > 0 then
             Printf.sprintf " (%d timed out, retrying with escalated budgets)"
               m.m_timed_out
           else "")
          m.m_elapsed
          (if m.m_interrupted then " before interruption" else "")

(* Caller holds [t.guard]. The autosave cadence bounds how much a
   SIGKILL can lose: at most [autosave_cells] committed cells or
   [autosave_secs] seconds of them, whichever trips first. *)
let maybe_autosave t =
  match t.store with
  | None -> ()
  | Some _ ->
      let now = Unix.gettimeofday () in
      if
        t.since_autosave >= t.autosave_cells
        || now -. t.last_autosave >= t.autosave_secs
      then begin
        t.since_autosave <- 0;
        t.last_autosave <- now;
        safe_flush t;
        save_manifest t ~interrupted:false
      end

let checkpoint t ~interrupted =
  Mutex.lock t.guard;
  t.since_autosave <- 0;
  t.last_autosave <- Unix.gettimeofday ();
  safe_flush t;
  save_manifest t ~interrupted;
  Mutex.unlock t.guard

let shutdown t =
  checkpoint t ~interrupted:false;
  (match t.dist with
  | None -> ()
  | Some d ->
      Dist.shutdown d;
      t.dist <- None);
  Pool.shutdown t.pool

let counters t =
  Mutex.lock t.guard;
  let c =
    {
      computed = t.n_computed;
      cached = t.n_cached;
      disk = t.n_disk;
      remote = t.n_remote;
    }
  in
  Mutex.unlock t.guard;
  c

let progress_guard = Mutex.create ()

let pp_eta seconds =
  if seconds >= 90.0 then Printf.sprintf "%.0fm%02.0fs" (seconds /. 60.0) (Float.rem seconds 60.0)
  else Printf.sprintf "%.0fs" seconds

(* Compute the batch's missing unique keys — memory first, then the
   persistent store, then worker processes, then in parallel over the
   pool. The work list preserves first-occurrence order, so the pool
   sees cells in canonical order; results merge by key, so the memo
   content is independent of domain interleaving.

   Each result is committed (memo + store + counters, under the
   guard) the moment it exists, and the store autosaves on its
   cadence — so an interruption or a crash can only cost cells still
   in flight, never finished ones. An active interruption makes the
   remaining cells no-ops; [Pool.map_array] still joins every started
   task and [Dist.run] drains its in-flight batches, which is the
   "drain, flush, then stop" of graceful shutdown. *)
let prefetch_memo t table key_of compute ~section ~enc_key ~enc_res ~dec_res ~timed
    cells =
  if interrupted () then begin
    checkpoint t ~interrupted:true;
    raise Interrupted
  end;
  let cells = Array.of_list cells in
  let total = Array.length cells in
  Mutex.lock t.guard;
  t.u_total <- t.u_total + total;
  let seen = Hashtbl.create 16 in
  let missing = ref [] in
  Array.iter
    (fun c ->
      let k = key_of c in
      if not (Hashtbl.mem table k) && not (Hashtbl.mem seen k) then begin
        Hashtbl.add seen k ();
        missing := (k, c) :: !missing
      end)
    cells;
  let missing = List.rev !missing in
  let n_missing = List.length missing in
  (* Disk phase: a stored value that fails to decode is corruption —
     treat as a miss and recompute (the fresh value overwrites it).
     Under --resume ([retry_timed_out]), a stored timed-out result is
     not a final value either: recompute with escalated budgets. *)
  let disk_hits = ref 0 in
  let retry = t.budgets.retry_timed_out in
  let work =
    List.filter
      (fun (k, _) ->
        match t.store with
        | None -> true
        | Some s -> (
            match Store.find s ~section (enc_key k) with
            | None -> true
            | Some v -> (
                match dec_res v with
                | Some r when retry && timed r -> true
                | Some r ->
                    Hashtbl.replace table k r;
                    incr disk_hits;
                    false
                | None -> true)))
      missing
  in
  let work = Array.of_list work in
  let nw = Array.length work in
  let n_memo = total - n_missing in
  let n_disk = !disk_hits in
  t.n_cached <- t.n_cached + n_memo;
  t.n_disk <- t.n_disk + n_disk;
  t.u_done <- t.u_done + n_memo + n_disk;
  Mutex.unlock t.guard;
  (* Compute phase, with a live progress line when asked for one. *)
  let show = t.progress && nw > 0 in
  let done_count = Atomic.make 0 in
  let t0 = Unix.gettimeofday () in
  let last_printed = ref neg_infinity in
  let report ~final =
    let now = Unix.gettimeofday () in
    Mutex.lock progress_guard;
    if final || now -. !last_printed >= 0.1 then begin
      last_printed := now;
      let d = Atomic.get done_count in
      let eta =
        if d > 0 && d < nw then
          Printf.sprintf " eta %s" (pp_eta ((now -. t0) /. float_of_int d *. float_of_int (nw - d)))
        else ""
      in
      Printf.eprintf "\r[rme] %s cells %d/%d (computed %d/%d, disk %d, memo %d)%s%s%!"
        (if section = adv_section then "adversary" else "trial")
        (total - nw + d)
        total d nw n_disk n_memo eta
        (if final then "\n" else "")
    end;
    Mutex.unlock progress_guard
  in
  let served_remote = Array.make nw false in
  let commit ~remote i r =
    Mutex.lock t.guard;
    let k, _ = work.(i) in
    Hashtbl.replace table k r;
    (match t.store with
    | None -> ()
    | Some s -> Store.add s ~section ~key:(enc_key k) ~value:(enc_res r));
    t.n_computed <- t.n_computed + 1;
    if remote then t.n_remote <- t.n_remote + 1;
    t.u_done <- t.u_done + 1;
    if timed r then t.u_timed <- t.u_timed + 1;
    t.since_autosave <- t.since_autosave + 1;
    maybe_autosave t;
    Mutex.unlock t.guard;
    if show then begin
      Atomic.incr done_count;
      report ~final:false
    end
  in
  (* Worker tier: ship the missing keys to worker processes over the
     store wire format. Whatever they cannot serve — workers lost,
     entry reported unservable, or a value that fails to decode —
     falls through to the in-process pool below, so distribution can
     only relocate work, never change results. *)
  (match t.dist with
  | Some d when nw > 0 ->
      let tasks = Array.map (fun (k, _) -> (section, enc_key k)) work in
      ignore
        (Dist.run d ~tasks
           ~on_result:(fun i v ->
             match dec_res v with
             | Some r ->
                 served_remote.(i) <- true;
                 commit ~remote:true i r
             | None -> ())
           ~should_stop:interrupted ())
  | _ -> ());
  (* Local tier: whatever the workers did not serve. *)
  ignore
    (Pool.map_array t.pool nw (fun i ->
         if served_remote.(i) || interrupted () then ()
         else commit ~remote:false i (compute (snd work.(i)))));
  if show then report ~final:true;
  if interrupted () then begin
    checkpoint t ~interrupted:true;
    raise Interrupted
  end;
  checkpoint t ~interrupted:false

let get_memo t table key_of compute ~section ~enc_key ~enc_res ~dec_res ~timed c =
  let k = key_of c in
  Mutex.lock t.guard;
  let retry = t.budgets.retry_timed_out in
  let hit =
    match Hashtbl.find_opt table k with
    | Some r -> Some r
    | None -> (
        match t.store with
        | None -> None
        | Some s -> (
            match Store.find s ~section (enc_key k) with
            | None -> None
            | Some v -> (
                match dec_res v with
                | Some r when retry && timed r -> None
                | Some r ->
                    Hashtbl.replace table k r;
                    t.n_disk <- t.n_disk + 1;
                    Some r
                | None -> None)))
  in
  Mutex.unlock t.guard;
  match hit with
  | Some r -> r
  | None ->
      let r = compute c in
      Mutex.lock t.guard;
      Hashtbl.replace table k r;
      t.n_computed <- t.n_computed + 1;
      t.u_total <- t.u_total + 1;
      t.u_done <- t.u_done + 1;
      if timed r then t.u_timed <- t.u_timed + 1;
      t.since_autosave <- t.since_autosave + 1;
      (match t.store with
      | None -> ()
      | Some s -> Store.add s ~section ~key:(enc_key k) ~value:(enc_res r));
      Mutex.unlock t.guard;
      safe_flush t;
      r

let cell_timed r = r.timed_out
let adv_timed _ = false

let prefetch t cells =
  prefetch_memo t t.memo key_of_cell
    (fun c -> compute_cell ~budgets:t.budgets c)
    ~section:cell_section ~enc_key:cell_key_string_of_key
    ~enc_res:cell_result_encode ~dec_res:cell_result_decode ~timed:cell_timed cells

let get t c =
  get_memo t t.memo key_of_cell
    (fun c -> compute_cell ~budgets:t.budgets c)
    ~section:cell_section ~enc_key:cell_key_string_of_key
    ~enc_res:cell_result_encode ~dec_res:cell_result_decode ~timed:cell_timed c

let prefetch_adv t cells =
  prefetch_memo t t.adv_memo adv_key_of compute_adv ~section:adv_section
    ~enc_key:adv_key_string_of_key ~enc_res:adv_result_encode
    ~dec_res:adv_result_decode ~timed:adv_timed cells

let get_adv t c =
  get_memo t t.adv_memo adv_key_of compute_adv ~section:adv_section
    ~enc_key:adv_key_string_of_key ~enc_res:adv_result_encode
    ~dec_res:adv_result_decode ~timed:adv_timed c

let map t f xs = Pool.map_list t.pool f xs

(* ------------------------------------------------------------------ *)
(* The process-wide default engine. *)

let default_engine = ref None

let default () =
  match !default_engine with
  | Some e -> e
  | None ->
      let e = create ~jobs:1 () in
      default_engine := Some e;
      e

let set_jobs j =
  match !default_engine with
  | Some e when jobs e = j && j > 0 -> ()
  | None -> default_engine := Some (create ~jobs:j ())
  | Some e ->
      (* Replace only the pool: the memo tables, counters and store
         handle carry over, so a [-j] change mid-process does not
         forfeit computed cells. *)
      Pool.shutdown e.pool;
      default_engine := Some { e with pool = Pool.create ~jobs:j; guard = Mutex.create () }

let set_cache_dir dir =
  let e = default () in
  match (dir, e.store) with
  | None, None -> ()
  | None, Some _ ->
      safe_flush e;
      e.store <- None
  | Some d, Some s when Store.dir s = d -> ()
  | Some d, _ ->
      safe_flush e;
      e.store <- open_store d

let set_progress b = (default ()).progress <- b

(* Adjust the default engine's budgets, autosave cadence and manifest
   label; absent arguments leave the current value unchanged. Called
   by the front-ends before [set_workers], so a derived batch deadline
   sees the cell budget. *)
let configure ?cell_timeout ?step_budget ?retry_timed_out ?escalation
    ?autosave_cells ?autosave_secs ?label () =
  let e = default () in
  let b = e.budgets in
  let pick o v = match o with Some _ -> o | None -> v in
  e.budgets <-
    {
      cell_timeout = pick cell_timeout b.cell_timeout;
      step_budget = pick step_budget b.step_budget;
      retry_timed_out = Option.value ~default:b.retry_timed_out retry_timed_out;
      escalation = Option.value ~default:b.escalation escalation;
    };
  (match autosave_cells with Some n -> e.autosave_cells <- max 1 n | None -> ());
  (match autosave_secs with Some s -> e.autosave_secs <- Float.max 0.1 s | None -> ());
  match label with Some l -> e.label <- l | None -> ()

let set_workers ?argv ?deadline n =
  let e = default () in
  if workers e <> n || argv <> None then begin
    (match e.dist with
    | None -> ()
    | Some d ->
        Dist.shutdown d;
        e.dist <- None);
    e.dist <-
      make_dist ?worker_argv:argv ?worker_deadline:deadline
        ?cell_timeout:e.budgets.cell_timeout ~workers:n ()
  end

let resolve_cache_dir ?cli ~no_cache () =
  if no_cache then None
  else
    match cli with
    | Some _ -> cli
    | None -> (
        match Sys.getenv_opt "RME_CACHE_DIR" with
        | None | Some "" -> None
        | Some d -> Some d)

let resolve_workers ?cli () =
  match cli with
  | Some n -> max 0 n
  | None -> (
      match Sys.getenv_opt "RME_WORKERS" with
      | None | Some "" -> 0
      | Some v -> ( match int_of_string_opt v with Some n -> max 0 n | None -> 0))

let resolve_cell_timeout ?cli () =
  match cli with Some _ -> cli | None -> env_float "RME_CELL_TIMEOUT"

let resolve_step_budget ?cli () =
  match cli with Some _ -> cli | None -> env_int "RME_STEP_BUDGET"

let resolve_batch_deadline ?cli () =
  match cli with Some _ -> cli | None -> env_float "RME_BATCH_DEADLINE"

let resolve_autosave () = (env_int "RME_AUTOSAVE_CELLS", env_float "RME_AUTOSAVE_SECS")

(* The explicit flag forces the readout on; otherwise it is on exactly
   when stderr is a terminal, so redirected sweep logs stay clean. *)
let resolve_progress ?(cli = false) () =
  cli || (try Unix.isatty Unix.stderr with Unix.Unix_error _ -> false)

(* ------------------------------------------------------------------ *)
(* The worker side: what [rme worker] / [bench --worker] run. With a
   cache directory the worker gets its own disk tier — lookups go
   store → compute, computed entries are written back and flushed
   after every batch, so a long sweep's results survive even a
   coordinator that dies mid-run. *)

let serve_worker ?cache_dir ?budgets ic oc =
  let store = match cache_dir with None -> None | Some d -> open_store d in
  (* Mirror the engine's resume semantics: under [retry_timed_out]
     the worker's own disk tier must not hand back a stored timed-out
     result the coordinator is asking to have recomputed. *)
  let retry =
    match budgets with Some b -> b.retry_timed_out | None -> false
  in
  let serveable ~section v =
    not
      (retry
      && String.equal section cell_section
      && match cell_result_decode v with Some r -> r.timed_out | None -> true)
  in
  let compute ~section ~key =
    match Option.bind store (fun s -> Store.find s ~section key) with
    | Some v when serveable ~section v -> Some v
    | Some _ | None ->
        let v = compute_encoded ?budgets ~section ~key () in
        (match (store, v) with
        | Some s, Some value -> Store.add s ~section ~key ~value
        | _ -> ());
        v
  in
  let on_batch () =
    match store with
    | None -> ()
    | Some s -> ( try Store.flush s with _ -> ())
  in
  Rme_dist.Worker.serve ~fingerprint:(code_fingerprint ()) ~compute ~on_batch ic oc
