module H = Rme_sim.Harness
module Lock_intf = Rme_sim.Lock_intf
module Rmr = Rme_memory.Rmr
module Pool = Rme_util.Pool
module Intset = Rme_util.Intset
module A = Rme_core.Adversary

(* ------------------------------------------------------------------ *)
(* Harness trial cells. *)

type cell = {
  lock : Lock_intf.factory;
  n : int;
  width : int;
  model : Rmr.model;
  seed : int;
  superpassages : int;
  crashes : H.crash_policy;
  allow_cs_crash : bool;
  max_crashes : int;
}

let cell ?(superpassages = 1) ?(crashes = H.No_crashes) ?(allow_cs_crash = false)
    ?(max_crashes = 1) ~seed ~n ~width ~model lock =
  { lock; n; width; model; seed; superpassages; crashes; allow_cs_crash; max_crashes }

type cell_result = {
  ok : bool;
  max_passage_rmr : int;
  mean_passage_rmr : float;
  total_crashes : int;
  total_rmrs : int;
  cs_entries : int;
  max_bypass : int;
}

(* The memo key is the cell with the factory replaced by its name
   (factories are closures; names are unique, including the
   [katzan-morrison-b<arity>] variants). Everything else is ints,
   floats and lists, so structural equality and [Hashtbl.hash] apply. *)
type key = {
  k_lock : string;
  k_n : int;
  k_width : int;
  k_model : Rmr.model;
  k_seed : int;
  k_sp : int;
  k_crashes : H.crash_policy;
  k_cs_crash : bool;
  k_max_crashes : int;
}

let key_of_cell c =
  {
    k_lock = c.lock.Lock_intf.name;
    k_n = c.n;
    k_width = c.width;
    k_model = c.model;
    k_seed = c.seed;
    k_sp = c.superpassages;
    k_crashes = c.crashes;
    k_cs_crash = c.allow_cs_crash;
    k_max_crashes = c.max_crashes;
  }

let compute_cell c =
  let cfg =
    {
      (H.default_config ~n:c.n ~width:c.width c.model) with
      H.superpassages = c.superpassages;
      policy = H.Random_policy c.seed;
      crashes = c.crashes;
      allow_cs_crash = c.allow_cs_crash;
      max_crashes_per_process = c.max_crashes;
    }
  in
  let r = H.run cfg c.lock in
  {
    ok = r.H.ok;
    max_passage_rmr = r.H.max_passage_rmr;
    mean_passage_rmr = r.H.mean_passage_rmr;
    total_crashes = r.H.total_crashes;
    total_rmrs =
      Array.fold_left (fun acc (p : H.proc_stats) -> acc + p.H.total_rmrs) 0 r.H.procs;
    cs_entries =
      Array.fold_left (fun acc (p : H.proc_stats) -> acc + p.H.cs_entries) 0 r.H.procs;
    max_bypass =
      Array.fold_left (fun acc (p : H.proc_stats) -> max acc p.H.max_bypass) 0 r.H.procs;
  }

(* ------------------------------------------------------------------ *)
(* Adversary cells. *)

type adv_cell = {
  a_lock : Lock_intf.factory;
  a_n : int;
  a_width : int;
  a_model : Rmr.model;
  a_k : int option;
}

let adv_cell ?k ~n ~width ~model lock =
  { a_lock = lock; a_n = n; a_width = width; a_model = model; a_k = k }

type adv_result = { rounds : int; bound : float; survivors : int }

type adv_key = {
  ak_lock : string;
  ak_n : int;
  ak_width : int;
  ak_model : Rmr.model;
  ak_k : int;
}

let adv_config c =
  let cfg = A.default_config ~n:c.a_n ~width:c.a_width c.a_model in
  match c.a_k with Some k -> { cfg with A.k } | None -> cfg

(* Key on the *effective* threshold so that an explicit [k] equal to the
   default (A2's first column vs E3) shares the memo entry. *)
let adv_key_of c =
  {
    ak_lock = c.a_lock.Lock_intf.name;
    ak_n = c.a_n;
    ak_width = c.a_width;
    ak_model = c.a_model;
    ak_k = (adv_config c).A.k;
  }

let compute_adv c =
  let r = A.run (adv_config c) c.a_lock in
  {
    rounds = r.A.rounds_completed;
    bound = r.A.predicted_lower_bound;
    survivors = Intset.cardinal r.A.survivors;
  }

(* ------------------------------------------------------------------ *)
(* The engine. *)

type counters = { computed : int; cached : int }

type t = {
  pool : Pool.t;
  guard : Mutex.t;
  memo : (key, cell_result) Hashtbl.t;
  adv_memo : (adv_key, adv_result) Hashtbl.t;
  mutable n_computed : int;
  mutable n_cached : int;
}

let create ?(jobs = 1) () =
  {
    pool = Pool.create ~jobs;
    guard = Mutex.create ();
    memo = Hashtbl.create 256;
    adv_memo = Hashtbl.create 64;
    n_computed = 0;
    n_cached = 0;
  }

let jobs t = Pool.jobs t.pool
let shutdown t = Pool.shutdown t.pool

let counters t =
  Mutex.lock t.guard;
  let c = { computed = t.n_computed; cached = t.n_cached } in
  Mutex.unlock t.guard;
  c

(* Compute the batch's missing unique keys in parallel, then commit the
   results under the guard. The work list preserves first-occurrence
   order, so the pool sees cells in canonical order; results merge by
   key, so the memo content is independent of domain interleaving. *)
let prefetch_memo t table key_of compute cells =
  let cells = Array.of_list cells in
  let total = Array.length cells in
  Mutex.lock t.guard;
  let seen = Hashtbl.create 16 in
  let work = ref [] in
  Array.iter
    (fun c ->
      let k = key_of c in
      if not (Hashtbl.mem table k) && not (Hashtbl.mem seen k) then begin
        Hashtbl.add seen k ();
        work := (k, c) :: !work
      end)
    cells;
  let work = Array.of_list (List.rev !work) in
  Mutex.unlock t.guard;
  let results = Pool.map_array t.pool (Array.length work) (fun i -> compute (snd work.(i))) in
  Mutex.lock t.guard;
  Array.iteri (fun i (k, _) -> Hashtbl.replace table k results.(i)) work;
  t.n_computed <- t.n_computed + Array.length work;
  t.n_cached <- t.n_cached + (total - Array.length work);
  Mutex.unlock t.guard

let get_memo t table key_of compute c =
  let k = key_of c in
  Mutex.lock t.guard;
  let hit = Hashtbl.find_opt table k in
  Mutex.unlock t.guard;
  match hit with
  | Some r -> r
  | None ->
      let r = compute c in
      Mutex.lock t.guard;
      Hashtbl.replace table k r;
      t.n_computed <- t.n_computed + 1;
      Mutex.unlock t.guard;
      r

let prefetch t cells = prefetch_memo t t.memo key_of_cell compute_cell cells
let get t c = get_memo t t.memo key_of_cell compute_cell c
let prefetch_adv t cells = prefetch_memo t t.adv_memo adv_key_of compute_adv cells
let get_adv t c = get_memo t t.adv_memo adv_key_of compute_adv c

let map t f xs = Pool.map_list t.pool f xs

(* ------------------------------------------------------------------ *)
(* The process-wide default engine. *)

let default_engine = ref None

let default () =
  match !default_engine with
  | Some e -> e
  | None ->
      let e = create ~jobs:1 () in
      default_engine := Some e;
      e

let set_jobs j =
  match !default_engine with
  | Some e when jobs e = j && j > 0 -> ()
  | prev ->
      (match prev with Some e -> shutdown e | None -> ());
      default_engine := Some (create ~jobs:j ())
