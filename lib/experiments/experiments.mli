(** The experiment harness: one function per reproduced table/figure.

    The paper is a theory paper; each "experiment" regenerates the
    quantitative shape of one of its claims (see DESIGN.md §4 and
    EXPERIMENTS.md for the paper-vs-measured record):

    - E1: RMR complexity landscape of the lock algorithms (§1.2's
      related-work comparison, measured).
    - E2: Theorem 1 tightness — Katzan–Morrison passage RMRs against
      [ceil(log_w n)] across word sizes.
    - E3: Theorem 1 lower bound — rounds the adversary construction
      forces, against the [Ω(min(log_w n, log n/log log n))] formula.
    - E4: Process-Hiding Lemma — solved instances with the paper's
      constants, and the [|I_D| >= m/2] margin under random discovery
      sets.
    - E5: crash-recovery cost — per-passage RMRs as the crash rate grows.
    - E6: CC vs DSM — the bounds hold in both models.
    - E7: the [min(log_w n, log n/log log n)] crossover at [w ~ log n].

    Every function is deterministic given [seed] and returns printable
    tables.

    Each experiment decomposes into independent trial cells and runs
    them through an {!Engine} (pass [?engine], or the process-wide
    {!Engine.default} is used): cells are computed across the engine's
    domain pool and memoised, and the tables are assembled by key
    lookup in canonical order — bit-identical output at any [-j],
    with cells shared between experiments computed only once. *)

type outcome = Rme_util.Table.t list

val e4_families : (string * (y:int -> Rme_core.Partite.edge -> int)) list
(** The operation families experiment E4 exercises the Process-Hiding
    Lemma with, as [f_y] functions on step tuples. *)

val e1_lock_landscape :
  ?engine:Engine.t -> ?seed:int -> ?width:int -> ?ns:int list -> unit -> outcome

val e2_word_size_tradeoff :
  ?engine:Engine.t -> ?seed:int -> ?ns:int list -> ?ws:int list -> unit -> outcome

val e3_adversary_bound :
  ?engine:Engine.t -> ?ns:int list -> ?ws:int list -> unit -> outcome

val e4_hiding_lemma :
  ?engine:Engine.t -> ?seed:int -> ?m:int -> ?trials:int -> unit -> outcome

val e5_crash_cost :
  ?engine:Engine.t -> ?seed:int -> ?n:int -> ?probs:float list -> unit -> outcome

val e6_model_comparison : ?engine:Engine.t -> ?seed:int -> ?n:int -> unit -> outcome
(** Deliberately shaped (seed 42, n=32, w=16, 2 super-passages) to reuse
    E1's n=32 cells from the shared memo cache. *)

val e7_crossover : ?engine:Engine.t -> ?n:int -> ?ws:int list -> unit -> outcome
(** The measured E7b companion (KM, CC, n=1024, seed 7) reuses E2's
    cells for the word sizes both sweep. *)

val e8_system_wide : ?engine:Engine.t -> ?seed:int -> ?ns:int list -> unit -> outcome
(** The system-wide crash separation: epoch-MCS stays O(1) per passage
    under simultaneous crashes (paper conclusion; Golab–Hendler [11]). *)

val a1_arity_ablation :
  ?engine:Engine.t -> ?seed:int -> ?n:int -> ?arities:int list -> unit -> outcome
(** Ablation: forcing the KM tree arity below the word size. *)

val a2_k_ablation :
  ?engine:Engine.t -> ?n:int -> ?w:int -> ?ks:int list -> unit -> outcome
(** Ablation: the adversary's contention threshold (the paper's w^d).
    The default-threshold column shares E3's adversary cells. *)

val a3_adaptivity : ?engine:Engine.t -> ?n:int -> ?ws:int list -> unit -> outcome
(** Ablation: solo vs contended passage cost of the KM core (the full
    algorithm of [19] is additionally contention-adaptive; ours is
    not — a documented simplification). The contended cells share E2's
    n=256 sweep. *)

val f1_fairness :
  ?engine:Engine.t -> ?seed:int -> ?n:int -> ?sp:int -> unit -> outcome
(** Fairness: worst bypass count per lock (queue locks are FIFO; TAS and
    tree locks are not). *)

val all : (string * string * (unit -> outcome)) list
(** [(id, description, run)] for every experiment, in order. *)

val run_one : string -> outcome option
(** Run an experiment by id ("e1" .. "e7"). *)
