(** The multicore experiment engine.

    Experiments decompose into independent {e trial cells} — one harness
    run, fully identified by (lock, n, w, seed, schedule, crash config) —
    or {e adversary cells} (one lower-bound construction run). The engine
    runs the missing cells of a batch across a {!Rme_util.Pool} of
    domains and memoises every result by its cell key, so:

    - tables are assembled by key lookup in canonical enumeration order,
      which makes the output {e bit-identical} to a sequential run
      regardless of how the domains interleave;
    - a cell shared by several experiments (E1/E6 share their n=32
      sweep, E2 feeds E7b and A3, A2's k=w+1 column is E3's default) is
      computed exactly once per engine.

    Every cell derives its own Splitmix scheduling/crash RNG inside
    [Harness.run] from the seeds in its key; no RNG state is shared
    between cells, which is what makes the decomposition sound.

    Below the in-memory memo sits an optional {e persistent} store
    ({!Rme_store.Store}): with a cache directory attached, lookups go
    memory → disk → compute, and every computed result is written
    back (atomic shard renames; two engines may share a directory).
    Disk entries are versioned by {!code_fingerprint}, so a store
    can never serve numbers computed by different code. *)

type t

val create :
  ?jobs:int ->
  ?cache_dir:string ->
  ?progress:bool ->
  ?workers:int ->
  ?worker_argv:string array ->
  ?worker_deadline:float ->
  ?cell_timeout:float ->
  ?step_budget:int ->
  ?retry_timed_out:bool ->
  ?escalation:float ->
  ?autosave_cells:int ->
  ?autosave_secs:float ->
  ?label:string ->
  unit ->
  t
(** [create ~jobs ()] makes an engine over a fresh pool ([jobs]
    defaults to 1 — sequential; [0] means auto-detect) and an empty
    memo cache. [cache_dir] attaches a persistent result store under
    the memo (created on demand; unusable directories degrade to
    uncached operation with a warning, never an error). [progress]
    enables a live cells-done/ETA line on stderr during {!prefetch}.

    [workers > 0] attaches a {!Rme_dist.Coordinator} of that many
    worker subprocesses as a third lookup tier (memory → disk →
    workers → compute). [worker_argv] is the worker command line
    (default: this executable with a ["worker"] argument — right for
    [bin/rme], other hosts must pass their own); [worker_deadline]
    bounds how long a worker may hold one batch before it is declared
    hung (default: derived from [cell_timeout] when one is set —
    explicit flag beats [RME_BATCH_DEADLINE] beats derived beats the
    flat 300 s). Worker failures of any kind degrade to in-process
    compute; they can never change results (see {!counters}).

    {b Budgets}: [cell_timeout] (wall-clock seconds) and
    [step_budget] (scheduler turns, overriding the harness's [n^2]
    formula) bound each trial cell; a cell exceeding either records an
    explicit timed-out result instead of hanging the sweep.
    [retry_timed_out] (what [--resume] sets) treats stored timed-out
    results as misses and recomputes them with both budgets scaled by
    [escalation] (default 1.0).

    {b Autosave}: with a store attached, committed results are
    flushed — and the run manifest rewritten — every [autosave_cells]
    cells (default 64) or [autosave_secs] seconds (default 10),
    whichever trips first, bounding what a SIGKILL can lose. [label]
    names the sweep in the manifest. *)

val jobs : t -> int

(** Worker slots of the attached coordinator; [0] when none. *)
val workers : t -> int
val shutdown : t -> unit
(** Flush the store (if any) and join the pool's domains. *)

val cache_dir : t -> string option
(** The attached store's directory, if a store is attached. *)

val store_stats : t -> Rme_store.Store.stats option

val dist_stats : t -> Rme_dist.Coordinator.stats option
(** Worker-tier telemetry (spawns, losses, requeues, remote/unserved
    cells), when a coordinator is attached. *)

val default : unit -> t
(** The process-wide engine the experiment functions use when no
    [?engine] is passed; starts sequential ([jobs = 1]), uncached. *)

val set_jobs : int -> unit
(** Replace the default engine's pool by one of the given parallelism
    (no-op if it already has it). The memo tables, counters and store
    handle carry over, so a [-j] change mid-process does not forfeit
    computed cells. This is what the [-j N] flags of [bench/main.exe]
    and [rme experiment] call. *)

val set_cache_dir : string option -> unit
(** Attach ([Some dir]) or detach ([None]) the default engine's
    persistent store. Detaching (and re-attaching elsewhere) flushes
    pending entries first. *)

val set_progress : bool -> unit
(** Toggle the default engine's prefetch progress readout. *)

val set_workers : ?argv:string array -> ?deadline:float -> int -> unit
(** Attach ([n > 0]) or detach ([0]) the default engine's worker
    coordinator, shutting down any previous one. This is what the
    [--workers N] flags of [bench/main.exe] and [rme experiment]
    call; [argv] is the worker command line the front-end spawns
    itself with. *)

val resolve_cache_dir : ?cli:string -> no_cache:bool -> unit -> string option
(** The cache-directory resolution both front-ends share:
    [--no-cache] beats everything, an explicit [--cache-dir] beats the
    [RME_CACHE_DIR] environment variable, and with neither set the
    cache is off. *)

val resolve_workers : ?cli:int -> unit -> int
(** Worker-count resolution: an explicit [--workers] beats the
    [RME_WORKERS] environment variable; with neither set (or
    unparsable), workers are off ([0]). Negative values clamp to 0. *)

val configure :
  ?cell_timeout:float ->
  ?step_budget:int ->
  ?retry_timed_out:bool ->
  ?escalation:float ->
  ?autosave_cells:int ->
  ?autosave_secs:float ->
  ?label:string ->
  unit ->
  unit
(** Adjust the default engine's budgets, autosave cadence and sweep
    label in place (absent arguments leave the current value). The
    front-ends call this after flag parsing; [--resume] additionally
    sets [retry_timed_out:true] with an [escalation] factor. *)

val resolve_cell_timeout : ?cli:float -> unit -> float option
val resolve_step_budget : ?cli:int -> unit -> int option

val resolve_batch_deadline : ?cli:float -> unit -> float option
(** Budget resolution shared by the front-ends: the explicit flag
    ([--cell-timeout] / [--step-budget] / [--batch-deadline]) beats
    the environment ([RME_CELL_TIMEOUT] / [RME_STEP_BUDGET] /
    [RME_BATCH_DEADLINE]); with neither, [None] — no wall-clock cell
    bound, the harness's step formula, and a batch deadline derived
    from the cell budget (or the flat default). *)

val resolve_autosave : unit -> int option * float option
(** [(RME_AUTOSAVE_CELLS, RME_AUTOSAVE_SECS)] from the environment —
    there are no CLI flags for these outside [bench]. *)

val resolve_progress : ?cli:bool -> unit -> bool
(** The [--progress] policy: the explicit flag forces the readout on;
    otherwise it is on exactly when stderr is a terminal, so
    redirected sweep logs stay clean. *)

(** {1 Budgets} *)

type budgets = {
  cell_timeout : float option;  (** wall-clock seconds per cell. *)
  step_budget : int option;
      (** scheduler turns per cell; [None] = the harness's
          {!Rme_sim.Harness.default_step_budget} formula. *)
  retry_timed_out : bool;
      (** treat stored timed-out results as misses and recompute. *)
  escalation : float;  (** budget scale factor applied on retry runs. *)
}

val no_budgets : budgets
(** No wall-clock bound, formula step budget, no retry, scale 1.0. *)

(** {1 Interruption}

    Cooperative cancellation for long sweeps. The first SIGINT/SIGTERM
    sets a process-wide flag; {!prefetch} polls it between commits,
    stops handing out cells, drains what is in flight (every finished
    cell is still committed), checkpoints the store and manifest, and
    raises {!Interrupted}. A second signal hard-exits (130/143). *)

exception Interrupted
(** Raised out of {!prefetch}/{!get} after a checkpoint; every result
    computed before the interrupt is flushed and a later run with the
    same cache directory resumes where this one stopped. *)

val exit_interrupted : int
(** The exit code ([75], [EX_TEMPFAIL]) front-ends use after catching
    {!Interrupted}: stopped cleanly, state saved, safe to re-run. *)

val install_interrupt_handlers : unit -> unit
(** Route SIGINT and SIGTERM into {!request_interrupt} (second signal
    hard-exits). No-op on platforms without these signals. *)

val request_interrupt : unit -> unit
(** Set the interrupt flag by hand — what the signal handlers and the
    in-process tests call. *)

val interrupted : unit -> bool
val clear_interrupt : unit -> unit

(** {1 Run manifests}

    A sweep with a store attached maintains
    [<cache-dir>/manifest.json] — a small progress summary rewritten
    atomically at every autosave and checkpoint. The {e store} is the
    source of truth for resuming; the manifest is for humans and
    tooling ([--resume] banners, CI assertions). *)

type manifest = {
  m_fingerprint : string;
  m_label : string;
  m_total : int;  (** cells requested by the interrupted sweep. *)
  m_done : int;  (** of which committed (memo, disk or computed). *)
  m_timed_out : int;
  m_elapsed : float;
  m_interrupted : bool;
}

val manifest_path : dir:string -> string
val load_manifest : dir:string -> manifest option
(** [None] when absent or unreadable — a missing manifest never blocks
    a resume; the store alone decides what is left to compute. *)

val resume_banner : dir:string -> string
(** A one-line human summary of what resuming from [dir] will do
    (fresh start / fingerprint mismatch / N of M cells to go). *)

(** {1 Harness trial cells} *)

type cell = {
  lock : Rme_sim.Lock_intf.factory;
  n : int;
  width : int;
  model : Rme_memory.Rmr.model;
  seed : int;  (** scheduling seed ([Harness.Random_policy]). *)
  superpassages : int;
  crashes : Rme_sim.Harness.crash_policy;
  allow_cs_crash : bool;
  max_crashes : int;
}

val cell :
  ?superpassages:int ->
  ?crashes:Rme_sim.Harness.crash_policy ->
  ?allow_cs_crash:bool ->
  ?max_crashes:int ->
  seed:int ->
  n:int ->
  width:int ->
  model:Rme_memory.Rmr.model ->
  Rme_sim.Lock_intf.factory ->
  cell
(** Defaults: 1 super-passage, no crashes, no CS crashes, at most 1
    crash per process — the harness defaults. *)

type cell_result = {
  ok : bool;
  timed_out : bool;
      (** the run was cut short by a cell budget (wall-clock or step);
          the numbers below cover only the steps taken. Stored entries
          written before budgets existed decode as [false]. *)
  max_passage_rmr : int;
  mean_passage_rmr : float;
  total_crashes : int;
  total_rmrs : int;  (** summed over processes. *)
  cs_entries : int;  (** summed over processes. *)
  max_bypass : int;  (** worst over processes. *)
}

val prefetch : t -> cell list -> unit
(** Compute every not-yet-memoised cell of the batch in parallel
    (duplicate keys within the batch are computed once; keys found in
    the persistent store are loaded instead of computed). Updates the
    {!counters}: [computed] by the number of runs performed, [disk] by
    the number of keys served from the store, [cached] by the number
    of requests served from the in-memory memo. *)

val get : t -> cell -> cell_result
(** Memo lookup (memory, then store); computes inline (sequentially)
    on a miss. Does not touch the [cached] counter — experiments
    [prefetch] their whole batch first and use [get] only to format
    tables. *)

(** {1 Adversary cells} *)

type adv_cell = {
  a_lock : Rme_sim.Lock_intf.factory;
  a_n : int;
  a_width : int;
  a_model : Rme_memory.Rmr.model;
  a_k : int option;  (** contention threshold; [None] = default. *)
}

val adv_cell :
  ?k:int ->
  n:int ->
  width:int ->
  model:Rme_memory.Rmr.model ->
  Rme_sim.Lock_intf.factory ->
  adv_cell

type adv_result = { rounds : int; bound : float; survivors : int }

val prefetch_adv : t -> adv_cell list -> unit
val get_adv : t -> adv_cell -> adv_result

(** {1 Generic parallel map} *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map over the engine's pool, without
    memoisation — for experiment stages that are not harness runs
    (E4's lemma families, A3's solo machine runs). *)

(** {1 Counters} *)

type counters = { computed : int; cached : int; disk : int; remote : int }

val counters : t -> counters
(** Cumulative cells computed / served from the in-memory memo /
    served from the persistent store since the engine was created.
    Deterministic for a given sequence of [prefetch] batches and a
    given store state — independent of [jobs]. [remote] counts the
    subset of [computed] performed by worker processes; unlike the
    others it depends on worker health and is telemetry, not part of
    the deterministic contract. *)

(** {1 Persistence} *)

val code_fingerprint : unit -> string
(** The fingerprint versioning every store entry: a digest of an
    explicit schema version (bumped by convention whenever harness,
    lock or adversary semantics change) and the lock registry's
    behavioural signature (names, recoverability, width requirements).
    A store written under a different fingerprint is skipped — results
    are recomputed rather than silently served stale. *)

val cell_key_string : cell -> string
(** The canonical serialised key of a trial cell — the identity a
    store entry (or a future remote shard request) is filed under. *)

val cell_result_encode : cell_result -> string
val cell_result_decode : string -> cell_result option
(** Exact round-trip: [cell_result_decode (cell_result_encode r) = Some r]
    (floats are encoded in hex notation). Malformed input is [None]. *)

val cell_of_key_string : string -> cell option
(** Decode a canonical cell key back into a computable cell (the lock
    factory is recovered from the registry by name) — what a worker
    process does with the keys the coordinator streams to it. Total;
    inverse of {!cell_key_string} up to key identity:
    [cell_of_key_string (cell_key_string c)] is a cell with the same
    key. *)

val adv_key_string : adv_cell -> string
(** Keyed on the {e effective} contention threshold, like the memo. *)

val adv_result_encode : adv_result -> string
val adv_result_decode : string -> adv_result option

val adv_cell_of_key_string : string -> adv_cell option
(** As {!cell_of_key_string}, for adversary cells. The decoded cell
    carries the effective threshold explicitly. *)

(** {1 Multi-process worker sharding} *)

val compute_encoded :
  ?budgets:budgets -> section:string -> key:string -> unit -> string option
(** The worker-side dispatch: decode the key of the given section,
    compute the cell (under [budgets], if given), encode the result.
    [None] for undecodable keys or unknown sections — reported back to
    the coordinator as unservable, which then computes in-process. *)

val serve_worker :
  ?cache_dir:string -> ?budgets:budgets -> in_channel -> out_channel -> unit
(** Run the {!Rme_dist.Worker} loop over the given channels (the
    hidden [rme worker] / [bench --worker] entry points). With
    [cache_dir], the worker consults and feeds that store itself
    (flushed after every batch), so worker-computed results persist
    even if the coordinator is lost. [budgets] mirrors the
    coordinator's cell budgets — under [retry_timed_out] the worker's
    own disk tier refuses to serve stored timed-out results. *)
