(** The multicore experiment engine.

    Experiments decompose into independent {e trial cells} — one harness
    run, fully identified by (lock, n, w, seed, schedule, crash config) —
    or {e adversary cells} (one lower-bound construction run). The engine
    runs the missing cells of a batch across a {!Rme_util.Pool} of
    domains and memoises every result by its cell key, so:

    - tables are assembled by key lookup in canonical enumeration order,
      which makes the output {e bit-identical} to a sequential run
      regardless of how the domains interleave;
    - a cell shared by several experiments (E1/E6 share their n=32
      sweep, E2 feeds E7b and A3, A2's k=w+1 column is E3's default) is
      computed exactly once per engine.

    Every cell derives its own Splitmix scheduling/crash RNG inside
    [Harness.run] from the seeds in its key; no RNG state is shared
    between cells, which is what makes the decomposition sound. *)

type t

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] makes an engine over a fresh pool ([jobs]
    defaults to 1 — sequential; [0] means auto-detect) and an empty
    memo cache. *)

val jobs : t -> int
val shutdown : t -> unit

val default : unit -> t
(** The process-wide engine the experiment functions use when no
    [?engine] is passed; starts sequential ([jobs = 1]). *)

val set_jobs : int -> unit
(** Replace the default engine by one of the given parallelism (no-op
    if it already has it). The memo cache of the old default engine is
    dropped. This is what the [-j N] flags of [bench/main.exe] and
    [rme experiment] call. *)

(** {1 Harness trial cells} *)

type cell = {
  lock : Rme_sim.Lock_intf.factory;
  n : int;
  width : int;
  model : Rme_memory.Rmr.model;
  seed : int;  (** scheduling seed ([Harness.Random_policy]). *)
  superpassages : int;
  crashes : Rme_sim.Harness.crash_policy;
  allow_cs_crash : bool;
  max_crashes : int;
}

val cell :
  ?superpassages:int ->
  ?crashes:Rme_sim.Harness.crash_policy ->
  ?allow_cs_crash:bool ->
  ?max_crashes:int ->
  seed:int ->
  n:int ->
  width:int ->
  model:Rme_memory.Rmr.model ->
  Rme_sim.Lock_intf.factory ->
  cell
(** Defaults: 1 super-passage, no crashes, no CS crashes, at most 1
    crash per process — the harness defaults. *)

type cell_result = {
  ok : bool;
  max_passage_rmr : int;
  mean_passage_rmr : float;
  total_crashes : int;
  total_rmrs : int;  (** summed over processes. *)
  cs_entries : int;  (** summed over processes. *)
  max_bypass : int;  (** worst over processes. *)
}

val prefetch : t -> cell list -> unit
(** Compute every not-yet-memoised cell of the batch in parallel
    (duplicate keys within the batch are computed once). Updates the
    {!counters}: [computed] by the number of runs performed, [cached]
    by the number of requests served from the memo. *)

val get : t -> cell -> cell_result
(** Memo lookup; computes inline (sequentially) on a miss. Does not
    touch the [cached] counter — experiments [prefetch] their whole
    batch first and use [get] only to format tables. *)

(** {1 Adversary cells} *)

type adv_cell = {
  a_lock : Rme_sim.Lock_intf.factory;
  a_n : int;
  a_width : int;
  a_model : Rme_memory.Rmr.model;
  a_k : int option;  (** contention threshold; [None] = default. *)
}

val adv_cell :
  ?k:int ->
  n:int ->
  width:int ->
  model:Rme_memory.Rmr.model ->
  Rme_sim.Lock_intf.factory ->
  adv_cell

type adv_result = { rounds : int; bound : float; survivors : int }

val prefetch_adv : t -> adv_cell list -> unit
val get_adv : t -> adv_cell -> adv_result

(** {1 Generic parallel map} *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map over the engine's pool, without
    memoisation — for experiment stages that are not harness runs
    (E4's lemma families, A3's solo machine runs). *)

(** {1 Counters} *)

type counters = { computed : int; cached : int }

val counters : t -> counters
(** Cumulative cells computed / served from the memo cache since the
    engine was created. Deterministic for a given sequence of
    [prefetch] batches — independent of [jobs]. *)
