module Memory = Rme_memory.Memory
module Lock_intf = Rme_sim.Lock_intf
module Prog = Rme_sim.Prog
open Prog.Infix

type t = {
  flag : Memory.loc array array; (* flag.(node).(side) *)
  victim : Memory.loc array; (* victim.(node) *)
}

let make memory ~n =
  let nodes = Tree.num_nodes ~n in
  let t =
    {
      flag =
        Array.init (nodes + 1) (fun node ->
            Array.init 2 (fun side ->
                Memory.alloc_named memory
                  ~name:(fun () -> Printf.sprintf "peterson.flag[%d][%d]" node side)
                  ~init:0));
      victim =
        Array.init (nodes + 1) (fun node ->
            Memory.alloc_named memory ~name:(fun () -> Printf.sprintf "peterson.victim[%d]" node)
              ~init:0);
    }
  in
  (* Two-process Peterson acquisition at one node. The wait tests two
     locations, so it is written as an explicit read loop rather than
     [Prog.await]. *)
  let acquire_node node side =
    let* () = Prog.write t.flag.(node).(side) 1 in
    let* () = Prog.write t.victim.(node) side in
    let rec wait () =
      let* other_flag = Prog.read t.flag.(node).(1 - side) in
      if other_flag = 0 then Prog.return ()
      else begin
        let* v = Prog.read t.victim.(node) in
        if v <> side then Prog.return () else wait ()
      end
    in
    wait ()
  in
  let entry ~pid =
    let path = Tree.path ~n ~pid in
    let rec climb i =
      if i >= Array.length path then Prog.return ()
      else begin
        let node, side = path.(i) in
        let* () = acquire_node node side in
        climb (i + 1)
      end
    in
    climb 0
  in
  let exit ~pid =
    let path = Tree.path ~n ~pid in
    let rec descend i =
      if i < 0 then Prog.return ()
      else begin
        let node, side = path.(i) in
        let* () = Prog.write t.flag.(node).(side) 0 in
        descend (i - 1)
      end
    in
    descend (Array.length path - 1)
  in
  {
    Lock_intf.entry;
    exit;
    recover = (fun ~pid:_ -> Prog.return Lock_intf.Resume_entry);
    system_epoch = None;
  }

let factory =
  {
    Lock_intf.name = "peterson-tree";
    recoverable = false;
    min_width = (fun ~n:_ -> 1);
    make;
  }
