module Memory = Rme_memory.Memory
module Bitword = Rme_util.Bitword
module Lock_intf = Rme_sim.Lock_intf
module Prog = Rme_sim.Prog
open Prog.Infix

(* Cells are indexed 0 .. 2n; cell values: 1 = locked (request pending),
   0 = granted. The tail stores a cell index. Cell 0 is the initial
   dummy (granted). Each process owns two cells and rotates: after a
   passage its "my cell" becomes the predecessor's cell. *)

type t = {
  tail : Memory.loc; (* holds a cell index *)
  cells : Memory.loc array;
  my_cell : int array; (* per-process register: current request cell *)
  pred_cell : int array; (* per-process register: predecessor's cell *)
}

let make memory ~n =
  let cells =
    Array.init ((2 * n) + 1) (fun i ->
        (* Cell ownership for DSM accounting: the initial cell of process
           p is p's; the dummy and rotated cells migrate, so ownership is
           only the initial assignment (CLH is a CC-model lock). *)
        let owner = if i >= 1 && i <= n then Some (i - 1) else None in
        Memory.alloc_named ?owner memory ~name:(fun () -> Printf.sprintf "clh.cell[%d]" i) ~init:0)
  in
  let t =
    {
      tail = Memory.alloc memory ~name:"clh.tail" ~init:0;
      cells;
      my_cell = Array.init n (fun p -> p + 1);
      pred_cell = Array.make n (n + 1);
    }
  in
  (* Assign distinct spare cells for the rotation. *)
  Array.iteri (fun p _ -> t.pred_cell.(p) <- n + 1 + p) t.my_cell;
  ignore (Array.length t.pred_cell);
  let entry ~pid =
    let mine = t.my_cell.(pid) in
    let* () = Prog.write t.cells.(mine) 1 in
    let* pred = Prog.fas t.tail mine in
    t.pred_cell.(pid) <- pred;
    let* _ = Prog.await t.cells.(pred) (fun v -> v = 0) in
    Prog.return ()
  in
  let exit ~pid =
    let mine = t.my_cell.(pid) in
    let* () = Prog.write t.cells.(mine) 0 in
    (* Rotate: reuse the predecessor's (now quiescent) cell next time. *)
    t.my_cell.(pid) <- t.pred_cell.(pid);
    Prog.return ()
  in
  {
    Lock_intf.entry;
    exit;
    recover = (fun ~pid:_ -> Prog.return Lock_intf.Resume_entry);
    system_epoch = None;
  }

let factory =
  {
    Lock_intf.name = "clh";
    recoverable = false;
    min_width = (fun ~n -> Bitword.bits_needed ((2 * n) + 1));
    make;
  }
