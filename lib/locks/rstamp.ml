module Memory = Rme_memory.Memory
module Bitword = Rme_util.Bitword
module Lock_intf = Rme_sim.Lock_intf
module Prog = Rme_sim.Prog
open Prog.Infix

type t = {
  lock_word : Memory.loc;
  status : Memory.loc array;
}

let st_idle = 0
let st_trying = 1
let st_releasing = 2

let claim ~me =
  Rme_memory.Op.Rmw
    { name = Printf.sprintf "claim%d" me; f = (fun ~width:_ v -> if v = 0 then me else v) }

let release ~me =
  Rme_memory.Op.Rmw
    { name = Printf.sprintf "release%d" me; f = (fun ~width:_ v -> if v = me then 0 else v) }

let make memory ~n =
  let t =
    {
      lock_word = Memory.alloc memory ~name:"rstamp.lock" ~init:0;
      status =
        Array.init n (fun p ->
            Memory.alloc_named memory ~owner:p
              ~name:(fun () -> Printf.sprintf "rstamp.status[%d]" p)
              ~init:st_idle);
    }
  in
  let entry ~pid =
    let me = pid + 1 in
    let* () = Prog.write t.status.(pid) st_trying in
    let rec acquire () =
      let* _ = Prog.await t.lock_word (fun v -> v = 0) in
      let* old = Prog.op t.lock_word (claim ~me) in
      if old = 0 then Prog.return () else acquire ()
    in
    acquire ()
  in
  let exit ~pid =
    let me = pid + 1 in
    let* () = Prog.write t.status.(pid) st_releasing in
    (* The release RMW is idempotent by construction. *)
    let* _ = Prog.op t.lock_word (release ~me) in
    Prog.write t.status.(pid) st_idle
  in
  let recover ~pid =
    let me = pid + 1 in
    let* st = Prog.read t.status.(pid) in
    if st = st_idle then Prog.return Lock_intf.Resume_entry
    else if st = st_releasing then Prog.return Lock_intf.Resume_exit
    else begin
      let* v = Prog.read t.lock_word in
      if v = me then Prog.return Lock_intf.In_cs
      else Prog.return Lock_intf.Resume_entry
    end
  in
  { Lock_intf.entry; exit; recover; system_epoch = None }

let factory =
  {
    Lock_intf.name = "rstamp";
    recoverable = true;
    min_width = (fun ~n -> max 2 (Bitword.bits_needed (n + 1)));
    make;
  }
