module Memory = Rme_memory.Memory
module Bitword = Rme_util.Bitword
module Lock_intf = Rme_sim.Lock_intf
module Prog = Rme_sim.Prog
open Prog.Infix

(* Queue-node pointers are encoded as pid + 1, with 0 meaning nil. *)
let nil = 0

type t = {
  tail : Memory.loc;
  locked : Memory.loc array; (* locked.(p): p spins here, in p's segment *)
  next : Memory.loc array; (* next.(p): successor pointer of p's node *)
}

let make memory ~n =
  let t =
    {
      tail = Memory.alloc memory ~name:"mcs.tail" ~init:nil;
      locked =
        Array.init n (fun p ->
            Memory.alloc_named memory ~owner:p ~name:(fun () -> Printf.sprintf "mcs.locked[%d]" p)
              ~init:0);
      next =
        Array.init n (fun p ->
            Memory.alloc_named memory ~owner:p ~name:(fun () -> Printf.sprintf "mcs.next[%d]" p)
              ~init:nil);
    }
  in
  let entry ~pid =
    let me = pid + 1 in
    let* () = Prog.write t.next.(pid) nil in
    let* () = Prog.write t.locked.(pid) 1 in
    let* pred = Prog.fas t.tail me in
    if pred = nil then Prog.return ()
    else begin
      let* () = Prog.write t.next.(pred - 1) me in
      let* _ = Prog.await t.locked.(pid) (fun v -> v = 0) in
      Prog.return ()
    end
  in
  let exit ~pid =
    let me = pid + 1 in
    let* succ = Prog.read t.next.(pid) in
    if succ <> nil then Prog.write t.locked.(succ - 1) 0
    else begin
      let* swung = Prog.cas t.tail ~expected:me ~desired:nil in
      if swung then Prog.return ()
      else begin
        (* A successor swapped the tail but has not linked yet. *)
        let* succ = Prog.await t.next.(pid) (fun v -> v <> nil) in
        Prog.write t.locked.(succ - 1) 0
      end
    end
  in
  {
    Lock_intf.entry;
    exit;
    recover = (fun ~pid:_ -> Prog.return Lock_intf.Resume_entry);
    system_epoch = None;
  }

let factory =
  {
    Lock_intf.name = "mcs";
    recoverable = false;
    min_width = (fun ~n -> Bitword.bits_needed (n + 1));
    make;
  }
