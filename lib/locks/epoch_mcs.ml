module Memory = Rme_memory.Memory
module Bitword = Rme_util.Bitword
module Lock_intf = Rme_sim.Lock_intf
module Prog = Rme_sim.Prog
open Prog.Infix

let nil = 0
let st_idle = 0
let st_trying = 1
let st_releasing = 2

type t = {
  epoch : Memory.loc; (* incremented by the system on each crash *)
  reset_done : Memory.loc; (* last epoch whose queue reset completed *)
  cleaner_for : Memory.loc; (* election token: epoch someone is resetting *)
  owner : Memory.loc; (* pid + 1 of the CS-entitled process; 0 = free *)
  tail : Memory.loc;
  locked : Memory.loc array;
  next : Memory.loc array;
  status : Memory.loc array; (* st_* per process, persistent *)
  detached : Memory.loc array; (* 1: my queue node predates the last reset *)
}

let make memory ~n =
  let t =
    {
      epoch = Memory.alloc memory ~name:"emcs.epoch" ~init:1;
      reset_done = Memory.alloc memory ~name:"emcs.reset_done" ~init:1;
      cleaner_for = Memory.alloc memory ~name:"emcs.cleaner_for" ~init:1;
      owner = Memory.alloc memory ~name:"emcs.owner" ~init:0;
      tail = Memory.alloc memory ~name:"emcs.tail" ~init:nil;
      locked =
        Array.init n (fun p ->
            Memory.alloc_named memory ~owner:p
              ~name:(fun () -> Printf.sprintf "emcs.locked[%d]" p)
              ~init:0);
      next =
        Array.init n (fun p ->
            Memory.alloc_named memory ~owner:p
              ~name:(fun () -> Printf.sprintf "emcs.next[%d]" p)
              ~init:nil);
      status =
        Array.init n (fun p ->
            Memory.alloc_named memory ~owner:p
              ~name:(fun () -> Printf.sprintf "emcs.status[%d]" p)
              ~init:st_idle);
      detached =
        Array.init n (fun p ->
            Memory.alloc_named memory ~owner:p
              ~name:(fun () -> Printf.sprintf "emcs.detached[%d]" p)
              ~init:0);
    }
  in
  (* Bring the queue up to date with the current epoch: elect one
     cleaner per epoch (CAS on [cleaner_for]); the winner resets the
     queue and publishes [reset_done]. Safe because after a system-wide
     crash no process from the previous epoch has steps in flight. *)
  let ensure_reset () =
    let* e = Prog.read t.epoch in
    let* rd = Prog.read t.reset_done in
    if rd = e then Prog.return ()
    else begin
      let* c = Prog.read t.cleaner_for in
      let* won =
        if c <> e then Prog.cas t.cleaner_for ~expected:c ~desired:e
        else Prog.return false
      in
      if won then begin
        let* () = Prog.write t.tail nil in
        Prog.write t.reset_done e
      end
      else begin
        let* _ = Prog.await t.reset_done (fun v -> v = e) in
        Prog.return ()
      end
    end
  in
  let entry ~pid =
    let me = pid + 1 in
    let* () = Prog.write t.status.(pid) st_trying in
    let* () = Prog.write t.detached.(pid) 0 in
    let* () = ensure_reset () in
    (* Plain MCS enqueue. *)
    let* () = Prog.write t.next.(pid) nil in
    let* () = Prog.write t.locked.(pid) 1 in
    let* pred = Prog.fas t.tail me in
    let* () =
      if pred = nil then Prog.return ()
      else begin
        let* () = Prog.write t.next.(pred - 1) me in
        let* _ = Prog.await t.locked.(pid) (fun v -> v = 0) in
        Prog.return ()
      end
    in
    (* Queue won; additionally wait out a pre-crash owner, then claim. *)
    let* _ = Prog.await t.owner (fun v -> v = 0) in
    Prog.write t.owner me
  in
  let exit ~pid =
    let me = pid + 1 in
    let* () = Prog.write t.status.(pid) st_releasing in
    let* det = Prog.read t.detached.(pid) in
    let* () =
      let* o = Prog.read t.owner in
      if o = me then Prog.write t.owner 0 else Prog.return ()
    in
    let* () =
      if det = 1 then
        (* The queue was reset while we held the lock: our node is not in
           it, and the post-reset head is gated on [owner = 0], which the
           write above opened. Nothing to hand off. *)
        Prog.write t.detached.(pid) 0
      else begin
        (* Plain MCS handoff. *)
        let* succ = Prog.read t.next.(pid) in
        if succ <> nil then Prog.write t.locked.(succ - 1) 0
        else begin
          let* swung = Prog.cas t.tail ~expected:me ~desired:nil in
          if swung then Prog.return ()
          else begin
            let* succ = Prog.await t.next.(pid) (fun v -> v <> nil) in
            Prog.write t.locked.(succ - 1) 0
          end
        end
      end
    in
    Prog.write t.status.(pid) st_idle
  in
  (* Only meaningful after a system-wide crash (the only crashes this
     lock supports): every process recovers together, so the queue of the
     previous epoch is garbage and is rebuilt. *)
  let recover ~pid =
    let me = pid + 1 in
    let* () = ensure_reset () in
    let* st = Prog.read t.status.(pid) in
    if st = st_idle then Prog.return Lock_intf.Resume_entry
    else begin
      let* o = Prog.read t.owner in
      if st = st_trying then begin
        if o = me then begin
          (* We held (or had just claimed) the lock: re-enter the CS. Our
             queue node is gone; mark the exit to skip the handoff. *)
          let* () = Prog.write t.detached.(pid) 1 in
          Prog.return Lock_intf.In_cs
        end
        else Prog.return Lock_intf.Resume_entry
      end
      else begin
        (* st_releasing *)
        if o = me then begin
          let* () = Prog.write t.detached.(pid) 1 in
          Prog.return Lock_intf.Resume_exit
        end
        else begin
          (* The release was committed before the crash; the rest of the
             exit was queue handoff, which the reset obsoleted. *)
          let* () = Prog.write t.status.(pid) st_idle in
          Prog.return Lock_intf.Passage_done
        end
      end
    end
  in
  { Lock_intf.entry; exit; recover; system_epoch = Some t.epoch }

let factory =
  {
    Lock_intf.name = "epoch-mcs";
    recoverable = true;
    min_width = (fun ~n -> max 2 (Bitword.bits_needed (n + 1)));
    make;
  }
