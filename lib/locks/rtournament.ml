module Memory = Rme_memory.Memory
module Lock_intf = Rme_sim.Lock_intf
module Prog = Rme_sim.Prog
open Prog.Infix

type t = {
  node : Memory.loc array; (* node.(i): 0 free, side + 1 held; i in 1..num *)
  status : Memory.loc array; (* status.(p) in p's segment *)
}

let st_idle = 0
let st_trying = 1
let st_releasing = 2

let make memory ~n =
  let num = Tree.num_nodes ~n in
  let t =
    {
      node =
        Array.init (num + 1) (fun i ->
            Memory.alloc_named memory ~name:(fun () -> Printf.sprintf "rtour.node[%d]" i) ~init:0);
      status =
        Array.init n (fun p ->
            Memory.alloc_named memory ~owner:p ~name:(fun () -> Printf.sprintf "rtour.status[%d]" p)
              ~init:st_idle);
    }
  in
  (* Index (exclusive) of the top of the contiguous held segment of
     [path]: [held_top path] returns the smallest [h] such that levels
     [0 .. h-1] are held and level [h] is not (so [h = length] means the
     whole path, hence the lock, is held). *)
  let held_top path =
    let len = Array.length path in
    let rec scan h =
      if h >= len then Prog.return len
      else begin
        let node, side = path.(h) in
        let* v = Prog.read t.node.(node) in
        if v = side + 1 then scan (h + 1) else Prog.return h
      end
    in
    scan 0
  in
  let entry ~pid =
    let path = Tree.path ~n ~pid in
    let len = Array.length path in
    let* () = Prog.write t.status.(pid) st_trying in
    let rec climb h =
      if h >= len then Prog.return ()
      else begin
        let node, side = path.(h) in
        let rec acquire () =
          let* _ = Prog.await t.node.(node) (fun v -> v = 0) in
          let* won = Prog.cas t.node.(node) ~expected:0 ~desired:(side + 1) in
          if won then Prog.return () else acquire ()
        in
        let* () = acquire () in
        climb (h + 1)
      end
    in
    let* h = held_top path in
    climb h
  in
  let exit ~pid =
    let path = Tree.path ~n ~pid in
    let* () = Prog.write t.status.(pid) st_releasing in
    let* h = held_top path in
    let rec descend i =
      if i < 0 then Prog.return ()
      else begin
        let node, _side = path.(i) in
        let* () = Prog.write t.node.(node) 0 in
        descend (i - 1)
      end
    in
    let* () = descend (h - 1) in
    Prog.write t.status.(pid) st_idle
  in
  let recover ~pid =
    let path = Tree.path ~n ~pid in
    let* st = Prog.read t.status.(pid) in
    (* idle = the crash hit before the first entry step (see Rcas). *)
    if st = st_idle then Prog.return Lock_intf.Resume_entry
    else if st = st_releasing then Prog.return Lock_intf.Resume_exit
    else begin
      let* h = held_top path in
      if h = Array.length path then Prog.return Lock_intf.In_cs
      else Prog.return Lock_intf.Resume_entry
    end
  in
  { Lock_intf.entry; exit; recover; system_epoch = None }

let factory =
  {
    Lock_intf.name = "rtournament";
    recoverable = true;
    min_width = (fun ~n:_ -> 2);
    make;
  }
