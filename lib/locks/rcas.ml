module Memory = Rme_memory.Memory
module Bitword = Rme_util.Bitword
module Lock_intf = Rme_sim.Lock_intf
module Prog = Rme_sim.Prog
open Prog.Infix

type t = {
  lock_word : Memory.loc; (* owner pid + 1; 0 = free *)
  status : Memory.loc array; (* status.(p) in p's segment, persistent *)
}

let st_idle = 0
let st_trying = 1
let st_releasing = 2

let make memory ~n =
  let t =
    {
      lock_word = Memory.alloc memory ~name:"rcas.lock" ~init:0;
      status =
        Array.init n (fun p ->
            Memory.alloc_named memory ~owner:p ~name:(fun () -> Printf.sprintf "rcas.status[%d]" p)
              ~init:st_idle);
    }
  in
  let entry ~pid =
    let me = pid + 1 in
    let* () = Prog.write t.status.(pid) st_trying in
    let rec acquire () =
      let* _ = Prog.await t.lock_word (fun v -> v = 0) in
      let* won = Prog.cas t.lock_word ~expected:0 ~desired:me in
      if won then Prog.return () else acquire ()
    in
    acquire ()
  in
  let exit ~pid =
    let me = pid + 1 in
    let* () = Prog.write t.status.(pid) st_releasing in
    let* v = Prog.read t.lock_word in
    let* () = if v = me then Prog.write t.lock_word 0 else Prog.return () in
    Prog.write t.status.(pid) st_idle
  in
  let recover ~pid =
    let me = pid + 1 in
    let* st = Prog.read t.status.(pid) in
    (* idle means the crash struck before the first entry step: exit's
       final status write is the last step of the passage, so a crash can
       never observe idle *after* completing a super-passage. The entry
       protocol must still be run. *)
    if st = st_idle then Prog.return Lock_intf.Resume_entry
    else if st = st_releasing then Prog.return Lock_intf.Resume_exit
    else begin
      let* v = Prog.read t.lock_word in
      if v = me then Prog.return Lock_intf.In_cs
      else Prog.return Lock_intf.Resume_entry
    end
  in
  { Lock_intf.entry; exit; recover; system_epoch = None }

let factory =
  {
    Lock_intf.name = "rcas";
    recoverable = true;
    min_width = (fun ~n -> max 2 (Bitword.bits_needed (n + 1)));
    make;
  }
