module Memory = Rme_memory.Memory
module Bitword = Rme_util.Bitword
module Lock_intf = Rme_sim.Lock_intf
module Prog = Rme_sim.Prog
open Prog.Infix

(* Per-process, per-level persistent status encoding for [succ]:
   0 = successor not chosen yet; 1 = committed: no successor;
   s + 2 = committed: successor is slot s. *)
let succ_unset = 0
let succ_none = 1

let st_idle = 0
let st_trying = 1
let st_releasing = 2

type node = {
  mask : Memory.loc; (* bit s set <=> slot s occupied *)
  owner : Memory.loc; (* 0 = free; s + 1 = slot s owns the node *)
  who : Memory.loc array array; (* who.(s): occupant pid, in w-bit chunks *)
}

type t = {
  b : int; (* tree arity; b <= w so a node mask fits one word *)
  levels : int;
  n : int;
  width : int;
  pid_chunks : int;
  nodes : node array array; (* nodes.(k).(j) *)
  pstatus : Memory.loc array; (* per process, in its own segment *)
  succ : Memory.loc array array; (* succ.(p).(k) *)
  xdone : Memory.loc array array; (* xdone.(p).(k): level release done *)
  bell : Memory.loc array array; (* bell.(p).(k): doorbell, local spin *)
}

(* [slot_of t pid k] and [node_of t pid k]: process [pid]'s position at
   level [k] of the [b]-ary tree. The whole path is static. *)
let slot_of t ~pid ~k =
  let rec div p i = if i = 0 then p else div (p / t.b) (i - 1) in
  div pid k mod t.b

let node_of t ~pid ~k =
  let rec div p i = if i = 0 then p else div (p / t.b) (i - 1) in
  div pid (k + 1)

let levels_for ~b ~n =
  if n <= 1 then 0
  else begin
    let rec loop l cap = if cap >= n then l else loop (l + 1) (cap * b) in
    loop 1 b
  end

(* Multi-word values (process IDs wider than w bits) are spelled out as
   little-endian w-bit chunks; see [write_pid_chunks] below. Writers of a
   [who] slot are serialized by slot occupancy, and readers only act on
   the value while the occupant's mask bit is set, so no torn value is
   ever acted upon (a torn read can only happen on the guarded
   crash-recovery re-ring paths, where a garbage pid is detected and
   skipped — spurious doorbells are filtered anyway). *)

let make_with_arity ~arity memory ~n =
  let width = Memory.width memory in
  let b = max 2 (min arity (max 2 n)) in
  if b > width then
    invalid_arg
      (Printf.sprintf "katzan-morrison: arity %d exceeds word width %d" b width);
  let levels = levels_for ~b ~n in
  let pid_bits = max 1 (Bitword.bits_needed n) in
  let pid_chunks = (pid_bits + width - 1) / width in
  let pow = Array.make (levels + 1) 1 in
  for k = 1 to levels do
    pow.(k) <- pow.(k - 1) * b
  done;
  let nodes =
    Array.init levels (fun k ->
        let count = ((n + (pow.(k) * b) - 1) / (pow.(k) * b)) in
        Array.init count (fun j ->
            {
              mask =
                Memory.alloc_named memory ~name:(fun () -> Printf.sprintf "km.mask[%d][%d]" k j)
                  ~init:0;
              owner =
                Memory.alloc_named memory ~name:(fun () -> Printf.sprintf "km.owner[%d][%d]" k j)
                  ~init:0;
              who =
                Array.init b (fun s ->
                    Array.init pid_chunks (fun c ->
                        Memory.alloc_named memory
                          ~name:(fun () -> Printf.sprintf "km.who[%d][%d][%d].%d" k j s c)
                          ~init:0));
            }))
  in
  let per_proc name init =
    Array.init n (fun p ->
        Array.init levels (fun k ->
            Memory.alloc_named memory ~owner:p
              ~name:(fun () -> Printf.sprintf "km.%s[%d][%d]" name p k)
              ~init))
  in
  let t =
    {
      b;
      levels;
      n;
      width;
      pid_chunks;
      nodes;
      pstatus =
        Array.init n (fun p ->
            Memory.alloc_named memory ~owner:p
              ~name:(fun () -> Printf.sprintf "km.pstatus[%d]" p)
              ~init:st_idle);
      succ = per_proc "succ" succ_unset;
      xdone = per_proc "xdone" 0;
      bell = per_proc "bell" 0;
    }
  in
  let node t ~pid ~k = t.nodes.(k).(node_of t ~pid ~k) in
  let chunk_mask = Bitword.mask width in
  let write_pid_chunks locs pid =
    let rec loop i v =
      if i >= Array.length locs then Prog.return ()
      else
        let* () = Prog.write locs.(i) (v land chunk_mask) in
        loop (i + 1) (v lsr width)
    in
    loop 0 pid
  in
  let read_pid_chunks locs =
    let rec loop i acc shift =
      if i >= Array.length locs then Prog.return acc
      else
        let* c = Prog.read locs.(i) in
        loop (i + 1) (acc lor (c lsl shift)) (shift + width)
    in
    loop 0 0 0
  in
  (* Ring the doorbell of the occupant of [slot] at node [nd] for level
     [k]. Safe to call spuriously: a woken waiter believes nothing until
     it sees [owner = its slot + 1]. A torn pid (possible only on
     crash-recovery re-rings while the slot transitions) is skipped. *)
  let ring nd ~k ~slot =
    let* q = read_pid_chunks nd.who.(slot) in
    if q >= 0 && q < n then Prog.write t.bell.(q).(k) 1 else Prog.return ()
  in
  (* Acquire one level: register in the node mask (idempotently — the own
     bit tells whether a crashed run already registered), then take or
     await ownership. *)
  let acquire_level ~pid ~k =
    let nd = node t ~pid ~k in
    let s = slot_of t ~pid ~k in
    let* m = Prog.read nd.mask in
    let* () =
      if Bitword.test_bit m s then Prog.return ()
      else begin
        (* Fresh registration: reset this level's release bookkeeping for
           the new passage, publish the pid, then set the bit. The FAA is
           the commit point; everything before it may be harmlessly
           re-done after a crash. *)
        let* () = Prog.write t.xdone.(pid).(k) 0 in
        let* () = Prog.write t.succ.(pid).(k) succ_unset in
        let* () = write_pid_chunks nd.who.(s) pid in
        let* _ = Prog.faa nd.mask (1 lsl s) in
        Prog.return ()
      end
    in
    let* won = Prog.cas nd.owner ~expected:0 ~desired:(s + 1) in
    if won then Prog.return ()
    else begin
      let rec park () =
        let* o = Prog.read nd.owner in
        if o = s + 1 then Prog.return ()
        else begin
          let* () = Prog.write t.bell.(pid).(k) 0 in
          let* o = Prog.read nd.owner in
          if o = s + 1 then Prog.return ()
          else begin
            let* _ = Prog.await t.bell.(pid).(k) (fun v -> v = 1) in
            park ()
          end
        end
      in
      park ()
    end
  in
  (* Ownership of the path is re-derivable from shared memory: [pid]
     holds a contiguous lower segment of its path, and holds level [k]
     iff it holds level [k-1] and [owner = slot + 1] there (a same-slot
     holder of a higher node must have come through the child node [pid]
     holds, hence is [pid] itself; at level 0 the slot denotes a unique
     process). *)
  let held_prefix ~pid =
    let rec scan k =
      if k >= t.levels then Prog.return t.levels
      else begin
        let nd = node t ~pid ~k in
        let s = slot_of t ~pid ~k in
        let* o = Prog.read nd.owner in
        if o = s + 1 then scan (k + 1) else Prog.return k
      end
    in
    scan 0
  in
  let entry ~pid =
    let* () = Prog.write t.pstatus.(pid) st_trying in
    let* h = held_prefix ~pid in
    let rec climb k =
      if k >= t.levels then Prog.return ()
      else
        let* () = acquire_level ~pid ~k in
        climb (k + 1)
    in
    climb h
  in
  (* Release one level. Idempotent: [xdone] marks completion, [succ]
     commits the successor choice before the ownership transfer, and
     every shared-memory write is guarded so a crashed release re-executes
     exactly the same handoff. *)
  let release_level ~pid ~k =
    let nd = node t ~pid ~k in
    let s = slot_of t ~pid ~k in
    let* xd = Prog.read t.xdone.(pid).(k) in
    if xd = 1 then Prog.return ()
    else begin
      (* Clear the own registration bit first, so no later releaser can
         pick this process as a successor. Only this process touches its
         bit while it occupies the slot, so read-then-FAA is crash-safe. *)
      let* m0 = Prog.read nd.mask in
      let* () =
        if Bitword.test_bit m0 s then
          let* _ = Prog.faa nd.mask (- (1 lsl s)) in
          Prog.return ()
        else Prog.return ()
      in
      let* sc0 = Prog.read t.succ.(pid).(k) in
      let* sc =
        if sc0 <> succ_unset then Prog.return sc0
        else begin
          let* m = Prog.read nd.mask in
          match Bitword.lowest_set_bit m with
          | Some x ->
              let* () = Prog.write t.succ.(pid).(k) (x + 2) in
              Prog.return (x + 2)
          | None ->
              (* Nobody visible: free the node, then look again — an
                 arrival that registered before we freed may have already
                 failed its ownership CAS and parked. *)
              let* o = Prog.read nd.owner in
              let* () =
                if o = s + 1 then Prog.write nd.owner 0 else Prog.return ()
              in
              let* m2 = Prog.read nd.mask in
              let choice =
                match Bitword.lowest_set_bit m2 with
                | Some x -> x + 2
                | None -> succ_none
              in
              let* () = Prog.write t.succ.(pid).(k) choice in
              Prog.return choice
        end
      in
      let* () =
        if sc = succ_none then Prog.return ()
        else begin
          let x = sc - 2 in
          let* o = Prog.read nd.owner in
          let* () =
            if o = s + 1 then Prog.write nd.owner (x + 1)
            else if o = 0 then begin
              (* Crash-recovery or helped-grant path: grant only if slot
                 [x] is still occupied (its bit is set); otherwise the
                 handoff already happened in a previous attempt. *)
              let* mm = Prog.read nd.mask in
              if Bitword.test_bit mm x then
                let* _ = Prog.cas nd.owner ~expected:0 ~desired:(x + 1) in
                Prog.return ()
              else Prog.return ()
            end
            else Prog.return ()
          in
          ring nd ~k ~slot:x
        end
      in
      Prog.write t.xdone.(pid).(k) 1
    end
  in
  let exit ~pid =
    let* () = Prog.write t.pstatus.(pid) st_releasing in
    let rec descend k =
      if k < 0 then Prog.return ()
      else
        let* () = release_level ~pid ~k in
        descend (k - 1)
    in
    let* () = descend (t.levels - 1) in
    Prog.write t.pstatus.(pid) st_idle
  in
  let recover ~pid =
    let* st = Prog.read t.pstatus.(pid) in
    (* idle = the crash hit before the first entry step (see Rcas). *)
    if st = st_idle then Prog.return Lock_intf.Resume_entry
    else if st = st_releasing then Prog.return Lock_intf.Resume_exit
    else begin
      let* h = held_prefix ~pid in
      if h = t.levels then Prog.return Lock_intf.In_cs
      else Prog.return Lock_intf.Resume_entry
    end
  in
  { Lock_intf.entry; exit; recover; system_epoch = None }

let factory_with_arity arity =
  {
    Lock_intf.name = Printf.sprintf "katzan-morrison-b%d" arity;
    recoverable = true;
    min_width = (fun ~n:_ -> max 2 arity);
    make = (fun memory ~n -> make_with_arity ~arity memory ~n);
  }

let factory =
  {
    Lock_intf.name = "katzan-morrison";
    recoverable = true;
    min_width = (fun ~n:_ -> 2);
    make =
      (fun memory ~n ->
        make_with_arity ~arity:(max 2 (min (Memory.width memory) n)) memory ~n);
  }
