(* The benchmark harness: regenerates every experiment table (E1..E7,
   one per reproduced claim of the paper — see DESIGN.md section 4) and
   runs Bechamel timing suites over the simulator, the lemma solvers and
   the adversary.

   Usage:
     dune exec bench/main.exe                 # all experiments + timing
     dune exec bench/main.exe e3              # one experiment
     dune exec bench/main.exe time            # timing suites only
     dune exec bench/main.exe -- -j 4 e1 e2   # shard trial cells over 4 domains
     dune exec bench/main.exe -- --workers 2 e2   # shard batches over 2 processes
     dune exec bench/main.exe -- --cache-dir .rme-cache e1   # persist results
     dune exec bench/main.exe -- --resume --cache-dir D e1   # continue after ^C
     dune exec bench/main.exe -- --cell-timeout 5 e2         # per-cell budgets
     dune exec bench/main.exe -- --progress e2               # live ETA on stderr

   SIGINT/SIGTERM stop cell hand-out, drain in-flight cells, flush the
   store and the run manifest, and exit 75 — re-run with --resume to
   continue. --autosave-cells/--autosave-secs bound what a hard kill
   can lose.
     dune exec bench/main.exe -- time --json BENCH.json      # machine-readable probes
     dune exec bench/main.exe -- compare OLD.json NEW.json --tolerance 3.0
                                              # CI regression gate (exit 1 on
                                              # any probe slower than 3x old)

   --workers N (or RME_WORKERS) forks N worker subprocesses of this
   binary (the hidden --worker serve mode) and streams cell batches to
   them over pipes, behind a code-fingerprint handshake; worker
   failures of any kind degrade to in-process compute, so tables stay
   bit-identical to --workers 0.

   A cache directory (--cache-dir, or the RME_CACHE_DIR environment
   variable; --no-cache overrides both) persists trial-cell results
   across runs, versioned by a code fingerprint: a rerun of identical
   code serves every cell from memory or disk ("0 computed") with
   byte-identical tables.

   Tables are bit-identical at any -j: experiments decompose into
   independent trial cells, the engine runs them across domains, and the
   tables are assembled by memo lookup in canonical order. *)

module E = Rme_experiments.Experiments
module Engine = Rme_experiments.Engine
module Table = Rme_util.Table
module Json = Rme_util.Json

let print_outcome tables = List.iter Table.print tables

(* Accumulated measurements for --json: probe name -> ns/run, and
   per-experiment wall clock / cell counters, in execution order. *)
let probe_results : (string * float) list ref = ref []
let experiment_results : (string * (float * int * int * int)) list ref = ref []

let run_experiment (id, descr, f) =
  Printf.printf "---- %s: %s ----\n%!" (String.uppercase_ascii id) descr;
  let eng = Engine.default () in
  let c0 = Engine.counters eng in
  let t0 = Unix.gettimeofday () in
  print_outcome (f ());
  let dt = Unix.gettimeofday () -. t0 in
  let c1 = Engine.counters eng in
  let computed = c1.Engine.computed - c0.Engine.computed in
  let cached = c1.Engine.cached - c0.Engine.cached in
  let disk = c1.Engine.disk - c0.Engine.disk in
  experiment_results := (id, (dt, computed, cached, disk)) :: !experiment_results;
  Printf.printf
    "(%s completed in %.1fs; j=%d; cells: %d computed (%d remote), %d cached, %d disk)\n\n%!"
    id dt (Engine.jobs eng) computed
    (c1.Engine.remote - c0.Engine.remote)
    cached disk

(* ------------------------------------------------------------------ *)
(* Bechamel timing: one probe per moving part, so the harness doubles
   as a performance regression suite. *)

let bechamel_tests () =
  let open Bechamel in
  let module H = Rme_sim.Harness in
  let module Rmr = Rme_memory.Rmr in
  let harness_run factory n model () =
    let cfg =
      { (H.default_config ~n ~width:16 model) with H.superpassages = 1 }
    in
    ignore (H.run cfg factory)
  in
  let adversary_run factory n () =
    ignore
      (Rme_core.Adversary.run
         (Rme_core.Adversary.default_config ~n ~width:8 Rmr.Cc)
         factory)
  in
  let lemma5_run () =
    let parts = Array.init 4 (fun i -> Array.init 3 (fun j -> (i * 10) + j)) in
    let edges = (Rme_core.Partite.complete ~parts).Rme_core.Partite.edges in
    ignore (Rme_core.Lemma5.solve ~s:2.5 ~eps:0.2 ~parts ~edges)
  in
  let machine_completion () =
    let m =
      Rme_core.Machine.create ~n:8 ~width:16 ~model:Rmr.Cc
        Rme_locks.Katzan_morrison.factory
    in
    for p = 0 to 7 do
      ignore
        (Rme_core.Machine.run_to_completion m ~pid:p ~cap:10_000 ~on_step:(fun _ -> ()))
    done
  in
  [
    Test.make ~name:"harness: mcs n=8 CC"
      (Staged.stage (harness_run Rme_locks.Mcs.factory 8 Rmr.Cc));
    Test.make ~name:"harness: km n=8 CC"
      (Staged.stage (harness_run Rme_locks.Katzan_morrison.factory 8 Rmr.Cc));
    Test.make ~name:"harness: km n=8 DSM"
      (Staged.stage (harness_run Rme_locks.Katzan_morrison.factory 8 Rmr.Dsm));
    Test.make ~name:"harness: rtournament n=16 CC"
      (Staged.stage (harness_run Rme_locks.Rtournament.factory 16 Rmr.Cc));
    Test.make ~name:"adversary: rcas n=64"
      (Staged.stage (adversary_run Rme_locks.Rcas.factory 64));
    Test.make ~name:"adversary: km n=64"
      (Staged.stage (adversary_run Rme_locks.Katzan_morrison.factory 64));
    Test.make ~name:"lemma5: complete 3^4" (Staged.stage lemma5_run);
    Test.make ~name:"machine: 8 km completions" (Staged.stage machine_completion);
  ]

let pp_ns x =
  if x > 1e9 then Printf.sprintf "%.2f s" (x /. 1e9)
  else if x > 1e6 then Printf.sprintf "%.2f ms" (x /. 1e6)
  else if x > 1e3 then Printf.sprintf "%.2f us" (x /. 1e3)
  else Printf.sprintf "%.0f ns" x

let run_timing () =
  let open Bechamel in
  print_endline "---- TIMING (Bechamel, monotonic clock) ----";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let t = Table.create ~title:"timing" ~columns:[ "probe"; "time/run" ] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let cell =
            match Analyze.OLS.estimates ols_result with
            | Some (x :: _) ->
                probe_results := (name, x) :: !probe_results;
                pp_ns x
            | Some [] | None -> "n/a"
          in
          Table.add_row t [ name; cell ])
        analyzed)
    (bechamel_tests ());
  Table.print t

(* ------------------------------------------------------------------ *)
(* Machine-readable results (--json FILE) and regression comparison
   (the [compare] subcommand): the perf numbers above, as BENCH_<n>.json
   files CI can diff with a tolerance. *)

let write_json file =
  let probes =
    List.rev_map
      (fun (name, ns) -> (name, Json.Obj [ ("ns_per_run", Json.Num ns) ]))
      !probe_results
  in
  let experiments =
    List.rev_map
      (fun (id, (wall, computed, cached, disk)) ->
        ( id,
          Json.Obj
            [
              ("wall_s", Json.Num wall);
              ("cells_computed", Json.num_int computed);
              ("cells_cached", Json.num_int cached);
              ("cells_disk", Json.num_int disk);
            ] ))
      !experiment_results
  in
  let doc =
    Json.Obj
      [
        ("schema", Json.num_int 1);
        ("probes", Json.Obj probes);
        ("experiments", Json.Obj experiments);
      ]
  in
  let oc = open_out file in
  output_string oc (Json.to_string doc);
  close_out oc;
  Printf.printf "(wrote %s)\n%!" file

let load_json file =
  let ic = open_in_bin file in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  match Json.of_string s with
  | Ok v -> v
  | Error e ->
      Printf.eprintf "%s: %s\n" file e;
      exit 1

let probe_ns doc name =
  Option.bind (Json.member "probes" doc) (fun probes ->
      Option.bind (Json.member name probes) (fun p ->
          Option.bind (Json.member "ns_per_run" p) Json.to_float))

(* Compare two --json files: per-probe new/old ratios, failing (exit 1)
   when any probe slowed down by more than [tolerance]. Probes present
   on only one side are reported but never fail the run — the suite is
   allowed to grow and shrink. *)
let run_compare ~tolerance ~out old_file new_file =
  let old_doc = load_json old_file and new_doc = load_json new_file in
  let old_probes =
    List.map fst (Json.obj_bindings (Option.value ~default:(Json.Obj []) (Json.member "probes" old_doc)))
  in
  let new_probes =
    List.map fst (Json.obj_bindings (Option.value ~default:(Json.Obj []) (Json.member "probes" new_doc)))
  in
  let shared = List.filter (fun n -> List.mem n new_probes) old_probes in
  let t =
    Table.create ~title:"bench compare"
      ~columns:[ "probe"; "old"; "new"; "ratio"; "verdict" ]
  in
  let regressions = ref [] in
  let rows =
    List.filter_map
      (fun name ->
        match (probe_ns old_doc name, probe_ns new_doc name) with
        | Some o, Some n when o > 0.0 ->
            let ratio = n /. o in
            let verdict =
              if ratio > tolerance then begin
                regressions := name :: !regressions;
                "REGRESSION"
              end
              else if ratio < 1.0 /. tolerance then "improved"
              else "ok"
            in
            Table.add_row t
              [ name; pp_ns o; pp_ns n; Printf.sprintf "%.2fx" ratio; verdict ];
            Some
              ( name,
                Json.Obj
                  [
                    ("old_ns", Json.Num o);
                    ("new_ns", Json.Num n);
                    ("ratio", Json.Num ratio);
                    ("speedup", Json.Num (o /. n));
                  ] )
        | _ -> None)
      shared
  in
  Table.print t;
  List.iter
    (fun n ->
      if not (List.mem n new_probes) then
        Printf.printf "note: probe %S only in %s\n" n old_file)
    old_probes;
  List.iter
    (fun n ->
      if not (List.mem n old_probes) then
        Printf.printf "note: probe %S only in %s\n" n new_file)
    new_probes;
  (match out with
  | Some file ->
      let doc =
        Json.Obj
          [
            ("schema", Json.num_int 1);
            ("old", Json.Str old_file);
            ("new", Json.Str new_file);
            ("tolerance", Json.Num tolerance);
            ("probes", Json.Obj rows);
          ]
      in
      let oc = open_out file in
      output_string oc (Json.to_string doc);
      close_out oc;
      Printf.printf "(wrote %s)\n%!" file
  | None -> ());
  match !regressions with
  | [] -> Printf.printf "compare: ok (%d probes within %.1fx)\n" (List.length shared) tolerance
  | l ->
      Printf.printf "compare: %d regression(s) beyond %.1fx: %s\n" (List.length l)
        tolerance
        (String.concat ", " (List.rev l));
      exit 1

(* Accepts [-j N], [--jobs N], [-jN], [--workers N], [--worker],
   [--cache-dir DIR], [--no-cache], [--progress]/[-v], [--resume],
   the budget flags ([--cell-timeout S], [--step-budget N],
   [--batch-deadline S]) and the autosave cadence ([--autosave-cells N],
   [--autosave-secs S]); returns the options and the remaining args. *)
type opts = {
  jobs : int;
  workers : int option;
  worker : bool;  (* serve mode: this process IS a worker *)
  cache_dir : string option;
  no_cache : bool;
  progress : bool;
  resume : bool;  (* continue an interrupted sweep from the cache *)
  cell_timeout : float option;  (* wall-clock budget per cell *)
  step_budget : int option;  (* scheduler-turn budget per cell *)
  batch_deadline : float option;  (* coordinator batch deadline *)
  autosave_cells : int option;
  autosave_secs : float option;
  json : string option;  (* write probe/experiment measurements here *)
  tolerance : float;  (* compare: max allowed new/old slowdown *)
  out : string option;  (* compare: write the comparison JSON here *)
}

let parse_opts args =
  let int_value flag v =
    match int_of_string_opt v with
    | Some j -> j
    | None ->
        Printf.eprintf "invalid %s value %S\n" flag v;
        exit 1
  in
  let jobs_value = int_value "-j" in
  let float_value flag v =
    match float_of_string_opt v with
    | Some f -> f
    | None ->
        Printf.eprintf "invalid %s value %S\n" flag v;
        exit 1
  in
  let rec go o acc = function
    | [] -> (o, List.rev acc)
    | ("-j" | "--jobs") :: v :: rest -> go { o with jobs = jobs_value v } acc rest
    | ("-j" | "--jobs") :: [] ->
        prerr_endline "missing value after -j";
        exit 1
    | "--workers" :: v :: rest ->
        go { o with workers = Some (int_value "--workers" v) } acc rest
    | "--workers" :: [] ->
        prerr_endline "missing value after --workers";
        exit 1
    | "--worker" :: rest -> go { o with worker = true } acc rest
    | "--cache-dir" :: d :: rest -> go { o with cache_dir = Some d } acc rest
    | "--cache-dir" :: [] ->
        prerr_endline "missing value after --cache-dir";
        exit 1
    | "--no-cache" :: rest -> go { o with no_cache = true } acc rest
    | ("--progress" | "-v") :: rest -> go { o with progress = true } acc rest
    | "--resume" :: rest -> go { o with resume = true } acc rest
    | "--cell-timeout" :: v :: rest ->
        go { o with cell_timeout = Some (float_value "--cell-timeout" v) } acc rest
    | "--step-budget" :: v :: rest ->
        go { o with step_budget = Some (int_value "--step-budget" v) } acc rest
    | "--batch-deadline" :: v :: rest ->
        go { o with batch_deadline = Some (float_value "--batch-deadline" v) } acc rest
    | "--autosave-cells" :: v :: rest ->
        go { o with autosave_cells = Some (int_value "--autosave-cells" v) } acc rest
    | "--autosave-secs" :: v :: rest ->
        go { o with autosave_secs = Some (float_value "--autosave-secs" v) } acc rest
    | ("--cell-timeout" | "--step-budget" | "--batch-deadline"
      | "--autosave-cells" | "--autosave-secs") :: ([] as rest) ->
        ignore rest;
        prerr_endline "missing value after budget/autosave flag";
        exit 1
    | "--json" :: f :: rest -> go { o with json = Some f } acc rest
    | "--json" :: [] ->
        prerr_endline "missing value after --json";
        exit 1
    | "--tolerance" :: v :: rest -> (
        match float_of_string_opt v with
        | Some tol when tol >= 1.0 -> go { o with tolerance = tol } acc rest
        | Some _ | None ->
            Printf.eprintf "invalid --tolerance value %S (need >= 1.0)\n" v;
            exit 1)
    | "--tolerance" :: [] ->
        prerr_endline "missing value after --tolerance";
        exit 1
    | "--out" :: f :: rest -> go { o with out = Some f } acc rest
    | "--out" :: [] ->
        prerr_endline "missing value after --out";
        exit 1
    | a :: rest when String.length a > 2 && String.sub a 0 2 = "-j" ->
        go { o with jobs = jobs_value (String.sub a 2 (String.length a - 2)) } acc rest
    | a :: rest -> go o (a :: acc) rest
  in
  go
    {
      jobs = 1;
      workers = None;
      worker = false;
      cache_dir = None;
      no_cache = false;
      progress = false;
      resume = false;
      cell_timeout = None;
      step_budget = None;
      batch_deadline = None;
      autosave_cells = None;
      autosave_secs = None;
      json = None;
      tolerance = 1.5;
      out = None;
    }
    [] args

(* The worker command line the coordinator spawns: this binary in
   --worker serve mode, with the same cache directory and the same
   cell budgets (workers must time cells out like the coordinator). *)
let worker_argv cache (b : Engine.budgets) =
  Array.of_list
    ((Sys.executable_name :: [ "--worker" ])
    @ (match cache with Some d -> [ "--cache-dir"; d ] | None -> [])
    @ (match b.Engine.cell_timeout with
      | Some s -> [ "--cell-timeout"; string_of_float s ]
      | None -> [])
    @ (match b.Engine.step_budget with
      | Some n -> [ "--step-budget"; string_of_int n ]
      | None -> [])
    @
    if b.Engine.retry_timed_out then
      [ "--resume" ] (* parsed back into retry semantics below *)
    else [])

let () =
  let o, args = parse_opts (Array.to_list Sys.argv |> List.tl) in
  let cache = Engine.resolve_cache_dir ?cli:o.cache_dir ~no_cache:o.no_cache () in
  let cell_timeout = Engine.resolve_cell_timeout ?cli:o.cell_timeout () in
  let step_budget = Engine.resolve_step_budget ?cli:o.step_budget () in
  let budgets =
    {
      Engine.cell_timeout;
      step_budget;
      retry_timed_out = o.resume;
      escalation = (if o.resume then 4.0 else 1.0);
    }
  in
  if o.worker then begin
    Engine.serve_worker ?cache_dir:cache ~budgets stdin stdout;
    exit 0
  end;
  if o.resume && cache = None then begin
    prerr_endline
      "bench: --resume needs a cache directory (--cache-dir or RME_CACHE_DIR)";
    exit 2
  end;
  Engine.install_interrupt_handlers ();
  Engine.set_jobs o.jobs;
  Engine.set_cache_dir cache;
  Engine.configure ?cell_timeout ?step_budget ~label:"bench" ();
  if o.resume then begin
    (match cache with
    | Some dir -> Printf.eprintf "%s\n%!" (Engine.resume_banner ~dir)
    | None -> ());
    Engine.configure ~retry_timed_out:true ~escalation:4.0 ()
  end;
  let env_cells, env_secs = Engine.resolve_autosave () in
  Engine.configure
    ?autosave_cells:(match o.autosave_cells with Some _ as c -> c | None -> env_cells)
    ?autosave_secs:(match o.autosave_secs with Some _ as s -> s | None -> env_secs)
    ();
  Engine.set_workers
    ~argv:(worker_argv cache budgets)
    ?deadline:(Engine.resolve_batch_deadline ?cli:o.batch_deadline ())
    (Engine.resolve_workers ?cli:o.workers ());
  Engine.set_progress (Engine.resolve_progress ~cli:o.progress ());
  try
    (match args with
  | "compare" :: rest -> (
      match rest with
      | [ old_file; new_file ] ->
          run_compare ~tolerance:o.tolerance ~out:o.out old_file new_file
      | _ ->
          prerr_endline
            "usage: bench compare OLD.json NEW.json [--tolerance X] [--out FILE]";
          exit 1)
  | [] ->
      List.iter run_experiment E.all;
      run_timing ()
  | [ "time" ] -> run_timing ()
  | ids ->
      List.iter
        (fun id ->
          match List.find_opt (fun (i, _, _) -> i = id) E.all with
          | Some e -> run_experiment e
          | None ->
              Printf.eprintf
                "unknown experiment %S (available: %s, time, compare)\n" id
                (String.concat ", " (List.map (fun (i, _, _) -> i) E.all));
              exit 1)
        ids);
    (match o.json with Some file -> write_json file | None -> ());
    (* Stop worker subprocesses politely (EOF + reap) before exit. *)
    Engine.set_workers 0
  with Engine.Interrupted ->
    (match cache with
    | Some _ ->
        prerr_endline
          "bench: interrupted — committed cells are saved; re-run with \
           --resume to continue"
    | None ->
        prerr_endline
          "bench: interrupted — no cache directory, computed cells are lost");
    Engine.set_workers 0;
    exit Engine.exit_interrupted
