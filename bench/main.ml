(* The benchmark harness: regenerates every experiment table (E1..E7,
   one per reproduced claim of the paper — see DESIGN.md section 4) and
   runs Bechamel timing suites over the simulator, the lemma solvers and
   the adversary.

   Usage:
     dune exec bench/main.exe                 # all experiments + timing
     dune exec bench/main.exe e3              # one experiment
     dune exec bench/main.exe time            # timing suites only
     dune exec bench/main.exe -- -j 4 e1 e2   # shard trial cells over 4 domains
     dune exec bench/main.exe -- --workers 2 e2   # shard batches over 2 processes
     dune exec bench/main.exe -- --cache-dir .rme-cache e1   # persist results
     dune exec bench/main.exe -- --progress e2               # live ETA on stderr

   --workers N (or RME_WORKERS) forks N worker subprocesses of this
   binary (the hidden --worker serve mode) and streams cell batches to
   them over pipes, behind a code-fingerprint handshake; worker
   failures of any kind degrade to in-process compute, so tables stay
   bit-identical to --workers 0.

   A cache directory (--cache-dir, or the RME_CACHE_DIR environment
   variable; --no-cache overrides both) persists trial-cell results
   across runs, versioned by a code fingerprint: a rerun of identical
   code serves every cell from memory or disk ("0 computed") with
   byte-identical tables.

   Tables are bit-identical at any -j: experiments decompose into
   independent trial cells, the engine runs them across domains, and the
   tables are assembled by memo lookup in canonical order. *)

module E = Rme_experiments.Experiments
module Engine = Rme_experiments.Engine
module Table = Rme_util.Table

let print_outcome tables = List.iter Table.print tables

let run_experiment (id, descr, f) =
  Printf.printf "---- %s: %s ----\n%!" (String.uppercase_ascii id) descr;
  let eng = Engine.default () in
  let c0 = Engine.counters eng in
  let t0 = Unix.gettimeofday () in
  print_outcome (f ());
  let dt = Unix.gettimeofday () -. t0 in
  let c1 = Engine.counters eng in
  Printf.printf
    "(%s completed in %.1fs; j=%d; cells: %d computed (%d remote), %d cached, %d disk)\n\n%!"
    id dt (Engine.jobs eng)
    (c1.Engine.computed - c0.Engine.computed)
    (c1.Engine.remote - c0.Engine.remote)
    (c1.Engine.cached - c0.Engine.cached)
    (c1.Engine.disk - c0.Engine.disk)

(* ------------------------------------------------------------------ *)
(* Bechamel timing: one probe per moving part, so the harness doubles
   as a performance regression suite. *)

let bechamel_tests () =
  let open Bechamel in
  let module H = Rme_sim.Harness in
  let module Rmr = Rme_memory.Rmr in
  let harness_run factory n model () =
    let cfg =
      { (H.default_config ~n ~width:16 model) with H.superpassages = 1 }
    in
    ignore (H.run cfg factory)
  in
  let adversary_run factory n () =
    ignore
      (Rme_core.Adversary.run
         (Rme_core.Adversary.default_config ~n ~width:8 Rmr.Cc)
         factory)
  in
  let lemma5_run () =
    let parts = Array.init 4 (fun i -> Array.init 3 (fun j -> (i * 10) + j)) in
    let edges = (Rme_core.Partite.complete ~parts).Rme_core.Partite.edges in
    ignore (Rme_core.Lemma5.solve ~s:2.5 ~eps:0.2 ~parts ~edges)
  in
  let machine_completion () =
    let m =
      Rme_core.Machine.create ~n:8 ~width:16 ~model:Rmr.Cc
        Rme_locks.Katzan_morrison.factory
    in
    for p = 0 to 7 do
      ignore
        (Rme_core.Machine.run_to_completion m ~pid:p ~cap:10_000 ~on_step:(fun _ -> ()))
    done
  in
  [
    Test.make ~name:"harness: mcs n=8 CC"
      (Staged.stage (harness_run Rme_locks.Mcs.factory 8 Rmr.Cc));
    Test.make ~name:"harness: km n=8 CC"
      (Staged.stage (harness_run Rme_locks.Katzan_morrison.factory 8 Rmr.Cc));
    Test.make ~name:"harness: km n=8 DSM"
      (Staged.stage (harness_run Rme_locks.Katzan_morrison.factory 8 Rmr.Dsm));
    Test.make ~name:"harness: rtournament n=16 CC"
      (Staged.stage (harness_run Rme_locks.Rtournament.factory 16 Rmr.Cc));
    Test.make ~name:"adversary: rcas n=64"
      (Staged.stage (adversary_run Rme_locks.Rcas.factory 64));
    Test.make ~name:"adversary: km n=64"
      (Staged.stage (adversary_run Rme_locks.Katzan_morrison.factory 64));
    Test.make ~name:"lemma5: complete 3^4" (Staged.stage lemma5_run);
    Test.make ~name:"machine: 8 km completions" (Staged.stage machine_completion);
  ]

let run_timing () =
  let open Bechamel in
  print_endline "---- TIMING (Bechamel, monotonic clock) ----";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let t = Table.create ~title:"timing" ~columns:[ "probe"; "time/run" ] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let cell =
            match Analyze.OLS.estimates ols_result with
            | Some (x :: _) ->
                if x > 1e9 then Printf.sprintf "%.2f s" (x /. 1e9)
                else if x > 1e6 then Printf.sprintf "%.2f ms" (x /. 1e6)
                else if x > 1e3 then Printf.sprintf "%.2f us" (x /. 1e3)
                else Printf.sprintf "%.0f ns" x
            | Some [] | None -> "n/a"
          in
          Table.add_row t [ name; cell ])
        analyzed)
    (bechamel_tests ());
  Table.print t

(* Accepts [-j N], [--jobs N], [-jN], [--workers N], [--worker],
   [--cache-dir DIR], [--no-cache] and [--progress]/[-v]; returns the
   options and the remaining args. *)
type opts = {
  jobs : int;
  workers : int option;
  worker : bool;  (* serve mode: this process IS a worker *)
  cache_dir : string option;
  no_cache : bool;
  progress : bool;
}

let parse_opts args =
  let int_value flag v =
    match int_of_string_opt v with
    | Some j -> j
    | None ->
        Printf.eprintf "invalid %s value %S\n" flag v;
        exit 1
  in
  let jobs_value = int_value "-j" in
  let rec go o acc = function
    | [] -> (o, List.rev acc)
    | ("-j" | "--jobs") :: v :: rest -> go { o with jobs = jobs_value v } acc rest
    | ("-j" | "--jobs") :: [] ->
        prerr_endline "missing value after -j";
        exit 1
    | "--workers" :: v :: rest ->
        go { o with workers = Some (int_value "--workers" v) } acc rest
    | "--workers" :: [] ->
        prerr_endline "missing value after --workers";
        exit 1
    | "--worker" :: rest -> go { o with worker = true } acc rest
    | "--cache-dir" :: d :: rest -> go { o with cache_dir = Some d } acc rest
    | "--cache-dir" :: [] ->
        prerr_endline "missing value after --cache-dir";
        exit 1
    | "--no-cache" :: rest -> go { o with no_cache = true } acc rest
    | ("--progress" | "-v") :: rest -> go { o with progress = true } acc rest
    | a :: rest when String.length a > 2 && String.sub a 0 2 = "-j" ->
        go { o with jobs = jobs_value (String.sub a 2 (String.length a - 2)) } acc rest
    | a :: rest -> go o (a :: acc) rest
  in
  go
    {
      jobs = 1;
      workers = None;
      worker = false;
      cache_dir = None;
      no_cache = false;
      progress = false;
    }
    [] args

(* The worker command line the coordinator spawns: this binary in
   --worker serve mode, with the same cache directory. *)
let worker_argv cache =
  Array.of_list
    ((Sys.executable_name :: [ "--worker" ])
    @ match cache with Some d -> [ "--cache-dir"; d ] | None -> [])

let () =
  let o, args = parse_opts (Array.to_list Sys.argv |> List.tl) in
  let cache = Engine.resolve_cache_dir ?cli:o.cache_dir ~no_cache:o.no_cache () in
  if o.worker then begin
    Engine.serve_worker ?cache_dir:cache stdin stdout;
    exit 0
  end;
  Engine.set_jobs o.jobs;
  Engine.set_cache_dir cache;
  Engine.set_workers ~argv:(worker_argv cache)
    (Engine.resolve_workers ?cli:o.workers ());
  Engine.set_progress o.progress;
  (match args with
  | [] ->
      List.iter run_experiment E.all;
      run_timing ()
  | [ "time" ] -> run_timing ()
  | ids ->
      List.iter
        (fun id ->
          match List.find_opt (fun (i, _, _) -> i = id) E.all with
          | Some e -> run_experiment e
          | None ->
              Printf.eprintf "unknown experiment %S (available: %s, time)\n" id
                (String.concat ", " (List.map (fun (i, _, _) -> i) E.all));
              exit 1)
        ids);
  (* Stop worker subprocesses politely (EOF + reap) before exit. *)
  Engine.set_workers 0
