(* Crash-free correctness and RMR-shape tests for every lock, in both
   cost models, across schedules. *)

module H = Rme_sim.Harness
module Lock_intf = Rme_sim.Lock_intf
module Rmr = Rme_memory.Rmr
module Registry = Rme_locks.Registry
module Tree = Rme_locks.Tree

let run ?(n = 8) ?(w = 16) ?(sp = 3) ?(policy = H.Round_robin) model factory =
  H.run { (H.default_config ~n ~width:w model) with superpassages = sp; policy } factory

let assert_ok name (r : H.result) =
  if not r.H.ok then
    Alcotest.failf "%s: ok=false (completed=%b, violations=%s)" name r.H.completed
      (String.concat "; " r.H.violations)

(* Every lock, both models, several seeds: mutual exclusion + progress. *)
let test_all_locks_all_models () =
  List.iter
    (fun (factory : Lock_intf.factory) ->
      List.iter
        (fun model ->
          List.iter
            (fun policy ->
              let r = run ~n:8 ~sp:3 ~policy model factory in
              assert_ok factory.Lock_intf.name r)
            [ H.Round_robin; H.Random_policy 42; H.Random_policy 7; H.Random_policy 999 ])
        Rmr.all_models)
    Registry.all

let test_various_n () =
  List.iter
    (fun (factory : Lock_intf.factory) ->
      List.iter
        (fun n ->
          let r = run ~n ~sp:2 ~policy:(H.Random_policy 3) Rmr.Cc factory in
          assert_ok (Printf.sprintf "%s n=%d" factory.Lock_intf.name n) r)
        [ 1; 2; 3; 5; 16; 33 ])
    Registry.all

(* Width edge: every lock at its own minimum width. *)
let test_min_width () =
  List.iter
    (fun (factory : Lock_intf.factory) ->
      let n = 6 in
      let w = factory.Lock_intf.min_width ~n in
      let r = run ~n ~w ~sp:2 ~policy:(H.Random_policy 11) Rmr.Cc factory in
      assert_ok (Printf.sprintf "%s at w=%d" factory.Lock_intf.name w) r)
    Registry.all

(* MCS is the O(1)-RMR lock in DSM: constant per passage regardless of n. *)
let test_mcs_dsm_constant () =
  let rmr_at n =
    let r = run ~n ~sp:2 Rmr.Dsm Rme_locks.Mcs.factory in
    assert_ok "mcs" r;
    r.H.max_passage_rmr
  in
  let r8 = rmr_at 8 and r32 = rmr_at 32 in
  Alcotest.(check bool) "constant in n" true (r32 <= r8 + 1);
  Alcotest.(check bool) "small constant" true (r32 <= 6)

(* The recoverable tournament is O(log n): growth from n to 4n is bounded
   by a constant number of extra levels. *)
let test_rtournament_log_shape () =
  let rmr_at n =
    let r = run ~n ~sp:1 Rmr.Cc Rme_locks.Rtournament.factory in
    assert_ok "rtournament" r;
    r.H.max_passage_rmr
  in
  let r4 = rmr_at 4 and r16 = rmr_at 16 and r64 = rmr_at 64 in
  Alcotest.(check bool) "grows" true (r16 >= r4);
  (* log growth: doubling levels at most triples the cost here *)
  Alcotest.(check bool) "sub-linear" true (r64 < (r4 * 64 / 4));
  Alcotest.(check bool) "roughly log" true (r64 <= 3 * r16)

(* Katzan–Morrison: at fixed n, wider words mean fewer RMRs. *)
let test_km_width_tradeoff () =
  let rmr_at w =
    let r =
      run ~n:64 ~w ~sp:1 ~policy:(H.Random_policy 5) Rmr.Cc
        Rme_locks.Katzan_morrison.factory
    in
    assert_ok "km" r;
    r.H.max_passage_rmr
  in
  let narrow = rmr_at 2 and mid = rmr_at 8 and wide = rmr_at 62 in
  Alcotest.(check bool)
    (Printf.sprintf "monotone-ish: %d >= %d >= %d" narrow mid wide)
    true
    (narrow >= mid && mid >= wide)

(* Ticket lock is FIFO: under round-robin, CS grants follow ticket order. *)
let test_ticket_fifo () =
  let r = run ~n:6 ~sp:1 Rmr.Cc Rme_locks.Ticket.factory in
  assert_ok "ticket" r

(* Tree helper. *)
let test_tree_indexing () =
  Alcotest.(check int) "pow2 of 5" 8 (Tree.pow2_ceil 5);
  Alcotest.(check int) "pow2 of 8" 8 (Tree.pow2_ceil 8);
  Alcotest.(check int) "levels n=1" 0 (Tree.levels ~n:1);
  Alcotest.(check int) "levels n=2" 1 (Tree.levels ~n:2);
  Alcotest.(check int) "levels n=5" 3 (Tree.levels ~n:5);
  Alcotest.(check int) "num_nodes n=8" 7 (Tree.num_nodes ~n:8);
  let path = Tree.path ~n:8 ~pid:5 in
  Alcotest.(check int) "path length" 3 (Array.length path);
  (* leaf 8+5=13 -> node 6 side 1 -> node 3 side 0 -> node 1 side 1 *)
  Alcotest.(check (list (pair int int))) "path content"
    [ (6, 1); (3, 0); (1, 1) ]
    (Array.to_list path)

let test_tree_paths_end_at_root () =
  for n = 2 to 17 do
    for pid = 0 to n - 1 do
      let path = Tree.path ~n ~pid in
      let root, _ = path.(Array.length path - 1) in
      Alcotest.(check int) "root is node 1" 1 root
    done
  done

let test_tree_siblings_differ () =
  (* Two processes sharing their lowest node must arrive on different sides. *)
  let n = 8 in
  let p0 = Tree.path ~n ~pid:0 and p1 = Tree.path ~n ~pid:1 in
  let n0, s0 = p0.(0) and n1, s1 = p1.(0) in
  Alcotest.(check int) "same node" n0 n1;
  Alcotest.(check bool) "different sides" true (s0 <> s1)

let prop_tree_path_valid =
  QCheck.Test.make ~name:"tree paths are parent chains"
    QCheck.(pair (int_range 2 64) (int_range 0 63))
    (fun (n, pid) ->
      QCheck.assume (pid < n);
      let path = Tree.path ~n ~pid in
      let ok = ref true in
      for i = 0 to Array.length path - 2 do
        let node, _ = path.(i) in
        let parent, _ = path.(i + 1) in
        if node / 2 <> parent then ok := false
      done;
      !ok)

(* Registry sanity. *)
let test_registry () =
  Alcotest.(check int) "11 locks" 11 (List.length Registry.all);
  Alcotest.(check int) "5 individually recoverable" 5 (List.length Registry.recoverable);
  Alcotest.(check int) "1 system-wide" 1 (List.length Registry.system_wide);
  Alcotest.(check bool) "find mcs" true (Registry.find "mcs" <> None);
  Alcotest.(check bool) "find nothing" true (Registry.find "nope" = None);
  Alcotest.(check bool) "names unique" true
    (let names = Registry.names () in
     List.length names = List.length (List.sort_uniq compare names))

(* Fairness: queue locks are FIFO from their doorway (the ticket draw /
   queue enqueue). Measured from the *request* instant, the doorway adds
   at most another n - 1 bypasses, so the bound is 2n - 2. *)
let test_queue_locks_fifo () =
  List.iter
    (fun name ->
      match Registry.find name with
      | None -> Alcotest.failf "missing lock %s" name
      | Some factory ->
          List.iter
            (fun seed ->
              let n = 8 in
              let cfg =
                {
                  (H.default_config ~n ~width:16 Rmr.Cc) with
                  superpassages = 5;
                  policy = H.Random_policy seed;
                }
              in
              let r = H.run cfg factory in
              assert_ok name r;
              Array.iter
                (fun (p : H.proc_stats) ->
                  Alcotest.(check bool)
                    (Printf.sprintf "%s seed=%d p%d bypass %d <= 2n-2" name seed
                       p.H.pid p.H.max_bypass)
                    true (p.H.max_bypass <= (2 * n) - 2))
                r.H.procs)
            [ 1; 2; 3; 4; 5 ])
    [ "ticket"; "mcs"; "clh" ]

(* Broad fuzz: random lock, size, width, model, policy — everything must
   stay correct, crash-free. *)
let prop_lock_fuzz =
  let locks = Array.of_list Registry.all in
  QCheck.Test.make ~name:"any lock, any configuration, stays correct" ~count:80
    QCheck.(
      quad (int_range 1 12) (int_range 1 62) (int_range 0 100000) (int_range 0 1))
    (fun (n, w, seed, model_idx) ->
      let factory = locks.(seed mod Array.length locks) in
      let model = if model_idx = 0 then Rmr.Cc else Rmr.Dsm in
      QCheck.assume (Lock_intf.supports factory ~n ~width:w);
      let r = run ~n ~w ~sp:2 ~policy:(H.Random_policy seed) model factory in
      r.H.ok)

(* High contention stress: n processes, many super-passages, random. *)
let test_stress_contention () =
  List.iter
    (fun (factory : Lock_intf.factory) ->
      let r = run ~n:12 ~sp:5 ~policy:(H.Random_policy 2024) Rmr.Cc factory in
      assert_ok (factory.Lock_intf.name ^ " stress") r)
    Registry.all

let suite =
  ( "locks",
    [
      Alcotest.test_case "all locks, all models, several schedules" `Quick
        test_all_locks_all_models;
      Alcotest.test_case "all locks across n" `Quick test_various_n;
      Alcotest.test_case "all locks at minimum width" `Quick test_min_width;
      Alcotest.test_case "mcs O(1) in DSM" `Quick test_mcs_dsm_constant;
      Alcotest.test_case "rtournament O(log n) shape" `Quick test_rtournament_log_shape;
      Alcotest.test_case "km width tradeoff" `Quick test_km_width_tradeoff;
      Alcotest.test_case "ticket completes under contention" `Quick test_ticket_fifo;
      Alcotest.test_case "tree indexing" `Quick test_tree_indexing;
      Alcotest.test_case "tree paths reach root" `Quick test_tree_paths_end_at_root;
      Alcotest.test_case "tree siblings differ" `Quick test_tree_siblings_differ;
      Qc.to_alcotest prop_tree_path_valid;
      Alcotest.test_case "registry" `Quick test_registry;
      Alcotest.test_case "queue locks are FIFO" `Quick test_queue_locks_fifo;
      Qc.to_alcotest prop_lock_fuzz;
      Alcotest.test_case "contention stress" `Slow test_stress_contention;
    ] )
