(* Tests for Splitmix, Stats, Table, Vec and Intset. *)

module Splitmix = Rme_util.Splitmix
module Stats = Rme_util.Stats
module Table = Rme_util.Table
module Vec = Rme_util.Vec
module Intset = Rme_util.Intset

let test_splitmix_deterministic () =
  let a = Splitmix.create 42 and b = Splitmix.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Splitmix.next a) (Splitmix.next b)
  done

let test_splitmix_seeds_differ () =
  let a = Splitmix.create 1 and b = Splitmix.create 2 in
  Alcotest.(check bool) "different streams" false (Splitmix.next a = Splitmix.next b)

let test_splitmix_int_range () =
  let g = Splitmix.create 7 in
  for _ = 1 to 1000 do
    let v = Splitmix.int g 10 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 10)
  done

let test_splitmix_int_rejects () =
  Alcotest.check_raises "bound 0" (Invalid_argument "Splitmix.int: bound must be positive")
    (fun () -> ignore (Splitmix.int (Splitmix.create 1) 0))

let test_splitmix_float_range () =
  let g = Splitmix.create 9 in
  for _ = 1 to 1000 do
    let v = Splitmix.float g in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_splitmix_copy_independent () =
  let a = Splitmix.create 5 in
  ignore (Splitmix.next a);
  let b = Splitmix.copy a in
  Alcotest.(check int64) "copies agree" (Splitmix.next a) (Splitmix.next b)

let test_splitmix_shuffle_permutation () =
  let g = Splitmix.create 11 in
  let a = Array.init 50 (fun i -> i) in
  Splitmix.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_stats_summary () =
  let s = Stats.summarize [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check int) "count" 4 s.Stats.count;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 4.0 s.Stats.max;
  Alcotest.(check (float 1e-9)) "mean" 2.5 s.Stats.mean;
  Alcotest.(check (float 1e-9)) "p50" 2.5 s.Stats.p50

let test_stats_single () =
  let s = Stats.summarize [| 7.0 |] in
  Alcotest.(check (float 1e-9)) "p95 of singleton" 7.0 s.Stats.p95;
  Alcotest.(check (float 1e-9)) "stddev" 0.0 s.Stats.stddev

let test_stats_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.summarize: empty sample")
    (fun () -> ignore (Stats.summarize [||]))

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec loop i = i + nl <= hl && (String.sub haystack i nl = needle || loop (i + 1)) in
  loop 0

let test_table_render () =
  let t = Table.create ~title:"demo" ~columns:[ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_rowf t "%d | %s" 10 "xyz";
  let s = Table.render t in
  Alcotest.(check bool) "has title" true (contains ~needle:"== demo ==" s);
  Alcotest.(check bool) "has formatted row" true (contains ~needle:"10" s);
  Alcotest.(check bool) "rowf splits on pipe" true (contains ~needle:"xyz" s)

let test_table_wrong_arity () =
  let t = Table.create ~title:"t" ~columns:[ "a" ] in
  Alcotest.check_raises "arity"
    (Invalid_argument "Table.add_row: 2 cells for 1 columns (table \"t\")")
    (fun () -> Table.add_row t [ "x"; "y" ])

let test_vec_basic () =
  let v = Vec.create () in
  Alcotest.(check int) "empty" 0 (Vec.length v);
  Alcotest.(check int) "push returns index" 0 (Vec.push v 10);
  Alcotest.(check int) "push returns index" 1 (Vec.push v 20);
  Alcotest.(check int) "get" 20 (Vec.get v 1);
  Vec.set v 0 99;
  Alcotest.(check int) "set" 99 (Vec.get v 0);
  Alcotest.(check (array int)) "to_array" [| 99; 20 |] (Vec.to_array v)

let test_vec_bounds () =
  let v = Vec.of_array [| 1 |] in
  Alcotest.check_raises "oob" (Invalid_argument "Vec: index 1 out of bounds [0, 1)")
    (fun () -> ignore (Vec.get v 1))

let test_vec_growth () =
  let v = Vec.create () in
  for i = 0 to 999 do
    ignore (Vec.push v i)
  done;
  Alcotest.(check int) "length" 1000 (Vec.length v);
  Alcotest.(check int) "content" 567 (Vec.get v 567)

let test_intset_encode_decode () =
  let s = Intset.of_list [ 0; 3; 5 ] in
  Alcotest.(check int) "encode" 0b101001 (Intset.encode s);
  Alcotest.(check bool) "roundtrip" true (Intset.equal s (Intset.decode (Intset.encode s)))

let test_intset_of_range () =
  Alcotest.(check int) "cardinality" 5 (Intset.cardinal (Intset.of_range 2 6));
  Alcotest.(check bool) "empty when lo > hi" true (Intset.is_empty (Intset.of_range 3 2))

let prop_encode_decode =
  QCheck.Test.make ~name:"intset encode/decode roundtrip"
    QCheck.(list_of_size Gen.(int_bound 10) (int_range 0 61))
    (fun l ->
      let s = Intset.of_list l in
      Intset.equal s (Intset.decode (Intset.encode s)))

let suite =
  ( "util",
    [
      Alcotest.test_case "splitmix determinism" `Quick test_splitmix_deterministic;
      Alcotest.test_case "splitmix seed sensitivity" `Quick test_splitmix_seeds_differ;
      Alcotest.test_case "splitmix int bound" `Quick test_splitmix_int_range;
      Alcotest.test_case "splitmix int rejects 0" `Quick test_splitmix_int_rejects;
      Alcotest.test_case "splitmix float range" `Quick test_splitmix_float_range;
      Alcotest.test_case "splitmix copy" `Quick test_splitmix_copy_independent;
      Alcotest.test_case "splitmix shuffle permutes" `Quick test_splitmix_shuffle_permutation;
      Alcotest.test_case "stats summary" `Quick test_stats_summary;
      Alcotest.test_case "stats singleton" `Quick test_stats_single;
      Alcotest.test_case "stats empty rejected" `Quick test_stats_empty;
      Alcotest.test_case "table renders" `Quick test_table_render;
      Alcotest.test_case "table arity checked" `Quick test_table_wrong_arity;
      Alcotest.test_case "vec basics" `Quick test_vec_basic;
      Alcotest.test_case "vec bounds" `Quick test_vec_bounds;
      Alcotest.test_case "vec growth" `Quick test_vec_growth;
      Alcotest.test_case "intset encode/decode" `Quick test_intset_encode_decode;
      Alcotest.test_case "intset of_range" `Quick test_intset_of_range;
      Qc.to_alcotest prop_encode_decode;
    ] )
