(* Tests for the in-place reset and snapshot/restore machinery that the
   adversary's replay resume rides on: Memory.checkpoint, Rmr.snapshot,
   Machine.snapshot/reset and Schedule.snapshot_play/reset_play. *)

module Memory = Rme_memory.Memory
module Op = Rme_memory.Op
module Rmr = Rme_memory.Rmr
module Machine = Rme_core.Machine
module Schedule = Rme_core.Schedule
module Intset = Rme_util.Intset

let test_memory_checkpoint () =
  let m = Memory.create ~width:16 in
  let a = Memory.alloc m ~init:1 and b = Memory.alloc m ~init:2 in
  ignore (Memory.apply m ~pid:0 a (Op.Write 7));
  let ck = Memory.checkpoint m in
  ignore (Memory.apply m ~pid:1 a (Op.Write 9));
  ignore (Memory.apply m ~pid:1 b (Op.Write 9));
  Memory.restore m ck;
  Alcotest.(check int) "a restored" 7 (Memory.value m a);
  Alcotest.(check int) "b restored" 2 (Memory.value m b);
  Alcotest.(check (option int)) "a accessor restored" (Some 0)
    (Memory.last_accessor m a);
  Alcotest.(check (option int)) "b accessor restored" None
    (Memory.last_accessor m b)

let test_memory_checkpoint_mismatch () =
  let m = Memory.create ~width:16 in
  ignore (Memory.alloc m ~init:0);
  let ck = Memory.checkpoint m in
  let m' = Memory.create ~width:16 in
  Alcotest.(check bool) "mismatched restore rejected" true
    (try
       Memory.restore m' ck;
       false
     with Invalid_argument _ -> true)

let test_rmr_snapshot () =
  List.iter
    (fun model ->
      let r = Rmr.create model ~n:2 in
      let owner = match model with Rmr.Dsm -> Some 0 | Rmr.Cc -> None in
      ignore (Rmr.record r ~pid:0 ~loc:3 ~owner ~is_read:true);
      ignore (Rmr.record r ~pid:1 ~loc:3 ~owner ~is_read:true);
      let snap = Rmr.snapshot r in
      let t0 = Rmr.total r ~pid:0 and t1 = Rmr.total r ~pid:1 in
      let would = Rmr.would_incur r ~pid:1 ~loc:3 ~owner ~is_read:true in
      ignore (Rmr.record r ~pid:0 ~loc:3 ~owner ~is_read:false);
      ignore (Rmr.record r ~pid:1 ~loc:3 ~owner ~is_read:true);
      Rmr.restore r snap;
      Alcotest.(check int) "total p0 restored" t0 (Rmr.total r ~pid:0);
      Alcotest.(check int) "total p1 restored" t1 (Rmr.total r ~pid:1);
      Alcotest.(check bool) "cache state restored" would
        (Rmr.would_incur r ~pid:1 ~loc:3 ~owner ~is_read:true))
    [ Rmr.Cc; Rmr.Dsm ]

let test_rmr_reset () =
  let r = Rmr.create Rmr.Cc ~n:2 in
  ignore (Rmr.record r ~pid:0 ~loc:1 ~owner:None ~is_read:true);
  ignore (Rmr.record r ~pid:1 ~loc:2 ~owner:None ~is_read:false);
  Rmr.reset r;
  Alcotest.(check int) "grand total zero" 0 (Rmr.grand_total r);
  (* Cache emptied: the read that was cached incurs an RMR again. *)
  Alcotest.(check bool) "cache emptied" true
    (Rmr.would_incur r ~pid:0 ~loc:1 ~owner:None ~is_read:true)

(* Drive a machine a few steps, snapshot, drive further, restore: every
   observable (phases, totals, memory values, poised ops) must return to
   the snapshot point, and a re-run from the restored state must take the
   same steps as the first run from the snapshot did. *)
let machine_observables m =
  let n = Machine.n m in
  ( Array.init n (fun pid -> Machine.phase m ~pid),
    Array.init n (fun pid -> Machine.total_rmrs m ~pid),
    Array.init n (fun pid -> Machine.peek m ~pid),
    Memory.snapshot (Machine.memory m) )

let test_machine_snapshot_restore () =
  List.iter
    (fun model ->
      let m =
        Machine.create ~n:3 ~width:16 ~model Rme_locks.Katzan_morrison.factory
      in
      for _ = 1 to 4 do
        ignore (Machine.step m ~pid:0)
      done;
      ignore (Machine.step m ~pid:1);
      Machine.crash m ~pid:1;
      let snap = Machine.snapshot m in
      let before = machine_observables m in
      (* Diverge: more steps, another crash, a completion. *)
      ignore (Machine.run_while_local m ~pid:2 ~cap:50);
      ignore (Machine.step m ~pid:0);
      Machine.crash m ~pid:0;
      ignore (Machine.run_to_completion m ~pid:0 ~cap:2000 ~on_step:(fun _ -> ()));
      Machine.restore m snap;
      Alcotest.(check bool) "observables restored" true
        (machine_observables m = before);
      Alcotest.(check int) "crash count restored" 1 (Machine.crashes m ~pid:1);
      (* The restored machine must be a live, runnable state. *)
      let ok =
        Machine.run_to_completion m ~pid:0 ~cap:5000 ~on_step:(fun _ -> ())
      in
      Alcotest.(check bool) "runs on after restore" true ok)
    [ Rmr.Cc; Rmr.Dsm ]

let test_machine_reset_equals_fresh () =
  List.iter
    (fun model ->
      let m = Machine.create ~n:3 ~width:16 ~model Rme_locks.Rcas.factory in
      let fresh = machine_observables m in
      ignore (Machine.step m ~pid:0);
      ignore (Machine.step m ~pid:1);
      Machine.crash m ~pid:0;
      ignore (Machine.run_to_completion m ~pid:1 ~cap:2000 ~on_step:(fun _ -> ()));
      Machine.reset m;
      Alcotest.(check bool) "reset equals fresh" true
        (machine_observables m = fresh);
      Alcotest.(check int) "crashes cleared" 0 (Machine.crashes m ~pid:0);
      Alcotest.(check int) "cs entries cleared" 0 (Machine.cs_entries m ~pid:1))
    [ Rmr.Cc; Rmr.Dsm ]

let ctx model : Schedule.context =
  {
    Schedule.n = 3;
    width = 16;
    model;
    factory = Rme_locks.Rcas.factory;
    local_cap = 200;
    completion_cap = 5000;
  }

let test_play_snapshot_restore () =
  List.iter
    (fun model ->
      let ctx = ctx model in
      let play = Schedule.fresh_play ctx in
      ignore (Schedule.do_step play ~pid:0 ~hidden_as:[]);
      ignore (Schedule.do_step play ~pid:1 ~hidden_as:[ 2 ]);
      let snap = Schedule.snapshot_play play in
      let vis0 = Schedule.visible_at play 0 in
      ignore (Schedule.do_step play ~pid:2 ~hidden_as:[]);
      ignore (Schedule.do_step play ~pid:0 ~hidden_as:[]);
      Schedule.restore_play play snap;
      Alcotest.(check bool) "visibility restored" true
        (Intset.equal vis0 (Schedule.visible_at play 0));
      Alcotest.(check int) "checked reset: restores verify nothing" 0
        play.Schedule.checked;
      (* Executing from the restored state matches executing from the
         original state: same poised op for every process. *)
      let m = play.Schedule.m in
      for pid = 0 to 2 do
        Alcotest.(check bool)
          (Printf.sprintf "p%d poised" pid)
          true
          (Machine.peek m ~pid <> None)
      done)
    [ Rmr.Cc; Rmr.Dsm ]

let test_reset_play () =
  let ctx = ctx Rmr.Cc in
  let play = Schedule.fresh_play ctx in
  let fresh = machine_observables play.Schedule.m in
  ignore (Schedule.do_step play ~pid:0 ~hidden_as:[]);
  ignore (Schedule.do_step play ~pid:1 ~hidden_as:[]);
  Schedule.reset_play play;
  Alcotest.(check bool) "machine back to fresh" true
    (machine_observables play.Schedule.m = fresh);
  Alcotest.(check int) "visibility emptied" 0
    (Hashtbl.length play.Schedule.visible);
  Alcotest.(check int) "checked zeroed" 0 play.Schedule.checked

let suite =
  ( "snapshot",
    [
      Alcotest.test_case "memory checkpoint/restore" `Quick
        test_memory_checkpoint;
      Alcotest.test_case "memory checkpoint mismatch" `Quick
        test_memory_checkpoint_mismatch;
      Alcotest.test_case "rmr snapshot/restore (CC+DSM)" `Quick
        test_rmr_snapshot;
      Alcotest.test_case "rmr reset" `Quick test_rmr_reset;
      Alcotest.test_case "machine snapshot/restore (CC+DSM)" `Quick
        test_machine_snapshot_restore;
      Alcotest.test_case "machine reset equals fresh" `Quick
        test_machine_reset_equals_fresh;
      Alcotest.test_case "play snapshot/restore" `Quick
        test_play_snapshot_restore;
      Alcotest.test_case "reset_play" `Quick test_reset_play;
    ] )
