(* Tests for the persistent result store: codec round-trips for every
   cell/result variant, store robustness (fingerprint invalidation,
   truncation, garbage — recompute and quarantine, never crash, never
   stale), concurrent shared-directory writers, and the headline
   guarantee — a warm store reproduces tables byte-identically with
   zero cells computed, at any -j. *)

module Store = Rme_store.Store
module Codec = Rme_store.Codec
module Record = Rme_store.Record
module Fsck = Rme_store.Fsck
module Engine = Rme_experiments.Engine
module E = Rme_experiments.Experiments
module Table = Rme_util.Table
module H = Rme_sim.Harness
module Rmr = Rme_memory.Rmr

(* ---------------- scratch directories ---------------- *)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let dir_counter = ref 0

let with_dir f =
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "rme_store_test_%d_%d" (Unix.getpid ()) !dir_counter)
  in
  rm_rf d;
  Sys.mkdir d 0o755;
  Fun.protect ~finally:(fun () -> rm_rf d) (fun () -> f d)

let shards dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".rme")
  |> List.map (Filename.concat dir)

let quarantine_count dir =
  let q = Filename.concat dir "quarantine" in
  if Sys.file_exists q then Array.length (Sys.readdir q) else 0

(* ---------------- codec round-trips ---------------- *)

let crash_policies : H.crash_policy list =
  [
    H.No_crashes;
    H.Crash_prob { prob = 0.05; seed = 1302 };
    H.Crash_prob { prob = 1.0 /. 3.0; seed = -7 };
    H.Crash_script [];
    H.Crash_script [ (3, 1); (700, 2) ];
    H.System_crash_script [];
    H.System_crash_script [ 10; 20; 30 ];
    H.System_crash_prob { prob = 0.125; seed = 9; max = 4 };
  ]

let test_crash_policy_round_trip () =
  List.iter
    (fun cp ->
      let enc = Codec.crash_policy_enc cp in
      Alcotest.(check bool)
        (Printf.sprintf "decode %s" enc)
        true
        (Codec.crash_policy_dec enc = Some cp))
    crash_policies;
  (* Distinct policies must have distinct encodings. *)
  let encs = List.map Codec.crash_policy_enc crash_policies in
  Alcotest.(check int) "encodings distinct"
    (List.length encs)
    (List.length (List.sort_uniq compare encs));
  (* Malformed inputs decode to None, never raise. *)
  List.iter
    (fun bad -> Alcotest.(check bool) bad true (Codec.crash_policy_dec bad = None))
    [ ""; "nonsense"; "prob[]"; "prob[0.5]"; "script[1:2,x]"; "sys[a]"; "sysprob[1;2]" ]

let test_float_round_trip () =
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Printf.sprintf "float %h" f)
        true
        (Codec.float_dec (Codec.float_enc f) = Some f))
    [ 0.0; 1.0; -1.5; 1.0 /. 3.0; 1e-300; 6.02e23; Float.max_float ]

let test_escape_round_trip () =
  List.iter
    (fun s ->
      let e = Codec.escape s in
      Alcotest.(check bool) ("no structural chars in " ^ e) false
        (String.exists (fun c -> c = ' ' || c = '=' || c = '\n') e);
      Alcotest.(check bool) ("unescape " ^ e) true (Codec.unescape e = Some s))
    [ "plain"; "katzan-morrison-b4"; "with space"; "a=b"; "100%"; "nl\nnl" ]

let mk_cell ?superpassages ?crashes ?allow_cs_crash ?max_crashes ?(seed = 42)
    ?(n = 4) ?(width = 16) ?(model = Rmr.Cc) ?(lock = Rme_locks.Tas.factory) () =
  Engine.cell ?superpassages ?crashes ?allow_cs_crash ?max_crashes ~seed ~n ~width
    ~model lock

let test_cell_key_strings () =
  (* Every key field must show up in the encoding: cells differing in
     any one field get distinct canonical keys. *)
  let variants =
    mk_cell ()
    :: mk_cell ~lock:Rme_locks.Mcs.factory ()
    :: mk_cell ~n:8 ()
    :: mk_cell ~width:8 ()
    :: mk_cell ~model:Rmr.Dsm ()
    :: mk_cell ~seed:7 ()
    :: mk_cell ~superpassages:3 ()
    :: mk_cell ~allow_cs_crash:true ()
    :: mk_cell ~max_crashes:5 ()
       (* [No_crashes] (head of the list) IS the default cell — same
          key by design — so only the non-default policies add
          variants here. *)
    :: List.map (fun cp -> mk_cell ~crashes:cp ()) (List.tl crash_policies)
  in
  let keys = List.map Engine.cell_key_string variants in
  Alcotest.(check int) "all cell keys distinct" (List.length keys)
    (List.length (List.sort_uniq compare keys));
  List.iter
    (fun k ->
      Alcotest.(check bool) ("single line: " ^ k) false (String.contains k '\n'))
    keys;
  (* Canonical: the same cell encodes identically every time. *)
  Alcotest.(check string) "stable" (Engine.cell_key_string (mk_cell ()))
    (Engine.cell_key_string (mk_cell ()))

let test_cell_result_round_trip () =
  let r =
    {
      Engine.ok = true;
      timed_out = false;
      max_passage_rmr = 17;
      mean_passage_rmr = 10.0 /. 3.0;
      total_crashes = 2;
      total_rmrs = 12345;
      cs_entries = 64;
      max_bypass = 9;
    }
  in
  Alcotest.(check bool) "round-trip" true
    (Engine.cell_result_decode (Engine.cell_result_encode r) = Some r);
  let r' = { r with Engine.ok = false; mean_passage_rmr = 0.0 } in
  Alcotest.(check bool) "round-trip 2" true
    (Engine.cell_result_decode (Engine.cell_result_encode r') = Some r');
  List.iter
    (fun bad ->
      Alcotest.(check bool) ("reject " ^ bad) true
        (Engine.cell_result_decode bad = None))
    [ ""; "ok=true"; "ok=yes max=1 mean=0x0p+0 crashes=0 rmrs=0 cs=0 bypass=0"; "garbage" ]

let test_adv_round_trip () =
  let c =
    Engine.adv_cell ~k:5 ~n:32 ~width:8 ~model:Rmr.Cc Rme_locks.Rcas.factory
  in
  let c_default =
    Engine.adv_cell ~n:32 ~width:8 ~model:Rmr.Cc Rme_locks.Rcas.factory
  in
  (* Like the memo, keys use the *effective* threshold: an explicit k
     equal to the default shares the entry. *)
  let c_explicit_default =
    Engine.adv_cell ~k:9 ~n:32 ~width:8 ~model:Rmr.Cc Rme_locks.Rcas.factory
  in
  Alcotest.(check string) "effective threshold shared"
    (Engine.adv_key_string c_default)
    (Engine.adv_key_string c_explicit_default);
  Alcotest.(check bool) "explicit non-default distinct" true
    (Engine.adv_key_string c <> Engine.adv_key_string c_default);
  let r = { Engine.rounds = 4; bound = 3.75; survivors = 12 } in
  Alcotest.(check bool) "adv result round-trip" true
    (Engine.adv_result_decode (Engine.adv_result_encode r) = Some r)

(* ---------------- the store itself ---------------- *)

let fp = "0123456789abcdef0123456789abcdef"

let test_store_basic () =
  with_dir (fun d ->
      let s = Store.open_ ~dir:d ~fingerprint:fp in
      Alcotest.(check bool) "empty at open" true (Store.find s ~section:"cell" "k1" = None);
      Store.add s ~section:"cell" ~key:"k1" ~value:"v1";
      Store.add s ~section:"adv" ~key:"k1" ~value:"v2";
      Alcotest.(check bool) "sections separate" true
        (Store.find s ~section:"cell" "k1" = Some "v1"
        && Store.find s ~section:"adv" "k1" = Some "v2");
      Store.flush s;
      Store.flush s;
      Alcotest.(check int) "one shard, flush idempotent" 1 (List.length (shards d));
      let s2 = Store.open_ ~dir:d ~fingerprint:fp in
      Alcotest.(check bool) "persisted" true
        (Store.find s2 ~section:"cell" "k1" = Some "v1"
        && Store.find s2 ~section:"adv" "k1" = Some "v2");
      let st = Store.stats s2 in
      Alcotest.(check int) "entries" 2 st.Store.entries;
      Alcotest.(check int) "shards loaded" 1 st.Store.shards_loaded;
      Alcotest.(check int) "disk hits counted" 2 st.Store.disk_hits)

let test_store_pending_buffer () =
  (* Regression: a written-but-unflushed entry must be served by [find]
     from the in-memory pending buffer — workers consult their store
     between [add] and the end-of-batch [flush], and losing those
     lookups would recompute cells the handle already holds. *)
  with_dir (fun d ->
      let s = Store.open_ ~dir:d ~fingerprint:fp in
      Store.add s ~section:"cell" ~key:"pending" ~value:"v";
      Alcotest.(check bool) "unflushed entry served" true
        (Store.find s ~section:"cell" "pending" = Some "v");
      Alcotest.(check int) "unflushed entry counted live" 1
        (Store.stats s).Store.entries;
      let seen = ref [] in
      Store.iter s (fun ~section ~key ~value -> seen := (section, key, value) :: !seen);
      Alcotest.(check bool) "unflushed entry iterated" true
        (!seen = [ ("cell", "pending", "v") ]);
      (* Pending entries are per-handle until flushed: a second handle
         over the same directory must not see them yet. *)
      let s2 = Store.open_ ~dir:d ~fingerprint:fp in
      Alcotest.(check bool) "other handle blind before flush" true
        (Store.find s2 ~section:"cell" "pending" = None);
      (* A pending overwrite shadows what this handle loaded from disk. *)
      Store.flush s;
      let s3 = Store.open_ ~dir:d ~fingerprint:fp in
      Store.add s3 ~section:"cell" ~key:"pending" ~value:"v2";
      Alcotest.(check bool) "pending overwrite wins over disk" true
        (Store.find s3 ~section:"cell" "pending" = Some "v2");
      Alcotest.(check int) "overwrite not double-counted" 1
        (Store.stats s3).Store.entries)

let test_store_fingerprint_mismatch () =
  with_dir (fun d ->
      let s = Store.open_ ~dir:d ~fingerprint:fp in
      Store.add s ~section:"cell" ~key:"k" ~value:"v";
      Store.flush s;
      (* A different code fingerprint must see none of it... *)
      let s2 = Store.open_ ~dir:d ~fingerprint:"ffffffffffffffffffffffffffffffff" in
      Alcotest.(check bool) "stale entry invisible" true
        (Store.find s2 ~section:"cell" "k" = None);
      Alcotest.(check int) "counted stale" 1 (Store.stats s2).Store.stale_shards;
      Alcotest.(check int) "not quarantined" 0 (quarantine_count d);
      (* ... while the original fingerprint still can (no destruction). *)
      let s3 = Store.open_ ~dir:d ~fingerprint:fp in
      Alcotest.(check bool) "original still served" true
        (Store.find s3 ~section:"cell" "k" = Some "v"))

let test_store_truncation () =
  with_dir (fun d ->
      let s = Store.open_ ~dir:d ~fingerprint:fp in
      for i = 1 to 5 do
        Store.add s ~section:"cell" ~key:(Printf.sprintf "k%d" i) ~value:"v"
      done;
      Store.flush s;
      let shard = List.hd (shards d) in
      (* Chop the file mid-way through the last line. *)
      let len = (Unix.stat shard).Unix.st_size in
      let fd = Unix.openfile shard [ Unix.O_WRONLY ] 0o644 in
      Unix.ftruncate fd (len - 3);
      Unix.close fd;
      let s2 = Store.open_ ~dir:d ~fingerprint:fp in
      let st = Store.stats s2 in
      Alcotest.(check int) "file quarantined" 1 st.Store.quarantined;
      Alcotest.(check int) "quarantine dir holds it" 1 (quarantine_count d);
      Alcotest.(check bool) "shard removed from store dir" true (shards d = []);
      Alcotest.(check int) "valid prefix salvaged" 4 st.Store.entries;
      Alcotest.(check bool) "torn tail entry recomputes" true
        (Store.find s2 ~section:"cell" "k5" = None);
      (* The salvaged prefix is re-persisted by the new handle. *)
      Store.flush s2;
      let s3 = Store.open_ ~dir:d ~fingerprint:fp in
      Alcotest.(check bool) "salvage survives the quarantine" true
        (Store.find s3 ~section:"cell" "k1" = Some "v"))

let test_store_garbage () =
  with_dir (fun d ->
      let s = Store.open_ ~dir:d ~fingerprint:fp in
      Store.add s ~section:"cell" ~key:"good" ~value:"v";
      Store.flush s;
      (* Drop a file of binary junk beside the healthy shard. *)
      let junk = Filename.concat d "shard-junk.rme" in
      let oc = open_out_bin junk in
      output_string oc "\x00\x01\x02 not a store file at all\xff";
      close_out oc;
      let s2 = Store.open_ ~dir:d ~fingerprint:fp in
      let st = Store.stats s2 in
      Alcotest.(check int) "junk quarantined" 1 st.Store.quarantined;
      Alcotest.(check bool) "healthy shard unaffected" true
        (Store.find s2 ~section:"cell" "good" = Some "v"))

let test_store_shared_directory () =
  (* Two handles over one directory — the -j4 bench + CI sharing shape.
     Writers own distinct shard files, so neither can lose or tear the
     other's entries, without any cross-process locking. *)
  with_dir (fun d ->
      let s1 = Store.open_ ~dir:d ~fingerprint:fp in
      let s2 = Store.open_ ~dir:d ~fingerprint:fp in
      for i = 0 to 99 do
        Store.add s1 ~section:"cell" ~key:(Printf.sprintf "a%d" i) ~value:(string_of_int i)
      done;
      for i = 0 to 99 do
        Store.add s2 ~section:"cell" ~key:(Printf.sprintf "b%d" i) ~value:(string_of_int i)
      done;
      (* An overlapping key gets the same (deterministic) value from both. *)
      Store.add s1 ~section:"cell" ~key:"dup" ~value:"same";
      Store.add s2 ~section:"cell" ~key:"dup" ~value:"same";
      (* Interleaved flushes, as concurrent batch commits would do. *)
      Store.flush s1;
      Store.flush s2;
      Store.add s1 ~section:"cell" ~key:"late" ~value:"l";
      Store.flush s1;
      Alcotest.(check int) "one shard per writer" 2 (List.length (shards d));
      let s3 = Store.open_ ~dir:d ~fingerprint:fp in
      let st = Store.stats s3 in
      Alcotest.(check int) "no lost entries" 202 st.Store.entries;
      Alcotest.(check int) "no torn files" 0 st.Store.quarantined;
      for i = 0 to 99 do
        Alcotest.(check bool) "a entries" true
          (Store.find s3 ~section:"cell" (Printf.sprintf "a%d" i) = Some (string_of_int i));
        Alcotest.(check bool) "b entries" true
          (Store.find s3 ~section:"cell" (Printf.sprintf "b%d" i) = Some (string_of_int i))
      done;
      Alcotest.(check bool) "dup consistent" true
        (Store.find s3 ~section:"cell" "dup" = Some "same"))

(* ---------------- the engine over the store ---------------- *)

let with_engine ~jobs ?cache_dir f =
  let e = Engine.create ~jobs ?cache_dir () in
  Fun.protect ~finally:(fun () -> Engine.shutdown e) (fun () -> f e)

let render_all tables = String.concat "\n" (List.map Table.render tables)

(* A reduced suite covering both cell kinds: E1/E2 are harness trial
   cells, E3 is adversary cells. *)
let render_suite engine =
  render_all
    (E.e1_lock_landscape ~engine ~ns:[ 2; 4 ] ()
    @ E.e2_word_size_tradeoff ~engine ~ns:[ 8 ] ~ws:[ 2; 8 ] ()
    @ E.e3_adversary_bound ~engine ~ns:[ 16 ] ~ws:[ 4 ] ())

let test_warm_store_determinism () =
  with_dir (fun d ->
      let cold = with_engine ~jobs:1 ~cache_dir:d render_suite in
      let cold_counters =
        with_engine ~jobs:1 (fun e ->
            ignore (render_suite e);
            Engine.counters e)
      in
      Alcotest.(check bool) "cold run computes" true (cold_counters.Engine.computed > 0);
      (* Warm rerun, sequential: byte-identical tables, zero computed. *)
      with_engine ~jobs:1 ~cache_dir:d (fun e ->
          let warm = render_suite e in
          Alcotest.(check string) "warm -j1 tables byte-identical" cold warm;
          let c = Engine.counters e in
          Alcotest.(check int) "warm -j1 computed = 0" 0 c.Engine.computed;
          Alcotest.(check bool) "served from disk" true (c.Engine.disk > 0));
      (* Warm rerun, parallel: same again. *)
      with_engine ~jobs:4 ~cache_dir:d (fun e ->
          let warm = render_suite e in
          Alcotest.(check string) "warm -j4 tables byte-identical" cold warm;
          Alcotest.(check int) "warm -j4 computed = 0" 0 (Engine.counters e).Engine.computed))

let test_engine_corrupt_store_recomputes () =
  with_dir (fun d ->
      let cold = with_engine ~jobs:1 ~cache_dir:d render_suite in
      (* Smash every shard with garbage. *)
      List.iter
        (fun shard ->
          let oc = open_out_bin shard in
          output_string oc "\x00\x01 garbage, not a shard";
          close_out oc)
        (shards d);
      with_engine ~jobs:2 ~cache_dir:d (fun e ->
          let again = render_suite e in
          Alcotest.(check string) "corrupt store: tables still identical" cold again;
          let c = Engine.counters e in
          Alcotest.(check bool) "corrupt store: recomputed" true (c.Engine.computed > 0);
          Alcotest.(check int) "corrupt store: nothing from disk" 0 c.Engine.disk);
      Alcotest.(check bool) "corrupt shards quarantined" true (quarantine_count d > 0))

let test_engine_fingerprint_gates_disk () =
  with_dir (fun d ->
      (* Forge a store written by "different code": same directory,
         different fingerprint. The engine must recompute everything. *)
      let forged = Store.open_ ~dir:d ~fingerprint:"deadbeefdeadbeefdeadbeefdeadbeef" in
      let cell = mk_cell () in
      Store.add forged ~section:"cell"
        ~key:(Engine.cell_key_string cell)
        ~value:
          (Engine.cell_result_encode
             {
               Engine.ok = true;
               timed_out = false;
               max_passage_rmr = 99999;
               mean_passage_rmr = 99999.0;
               total_crashes = 0;
               total_rmrs = 0;
               cs_entries = 0;
               max_bypass = 0;
             });
      Store.flush forged;
      with_engine ~jobs:1 ~cache_dir:d (fun e ->
          Engine.prefetch e [ cell ];
          let c = Engine.counters e in
          Alcotest.(check int) "stale store: recomputed" 1 c.Engine.computed;
          Alcotest.(check int) "stale store: no disk hits" 0 c.Engine.disk;
          let r = Engine.get e cell in
          Alcotest.(check bool) "stale numbers never served" true
            (r.Engine.max_passage_rmr <> 99999)))

let test_engine_get_persists () =
  with_dir (fun d ->
      let cell = mk_cell ~seed:1302 () in
      let r1 =
        with_engine ~jobs:1 ~cache_dir:d (fun e -> Engine.get e cell)
      in
      with_engine ~jobs:1 ~cache_dir:d (fun e ->
          let r2 = Engine.get e cell in
          Alcotest.(check bool) "get round-trips through disk" true (r1 = r2);
          let c = Engine.counters e in
          Alcotest.(check int) "get miss→disk hit" 0 c.Engine.computed;
          Alcotest.(check int) "one disk hit" 1 c.Engine.disk))

let test_engine_unusable_dir_degrades () =
  (* A cache path that cannot be a directory must warn and run
     uncached — never crash, never wrong. *)
  with_dir (fun d ->
      let file = Filename.concat d "not-a-dir" in
      let oc = open_out file in
      output_string oc "occupied";
      close_out oc;
      with_engine ~jobs:1 ~cache_dir:(Filename.concat file "sub") (fun e ->
          Alcotest.(check bool) "no store attached" true (Engine.cache_dir e = None);
          Engine.prefetch e [ mk_cell () ];
          Alcotest.(check int) "still computes" 1 (Engine.counters e).Engine.computed))

let test_resolve_cache_dir () =
  (* --no-cache beats everything; the flag beats the environment. *)
  Unix.putenv "RME_CACHE_DIR" "/tmp/from-env";
  Alcotest.(check bool) "env respected" true
    (Engine.resolve_cache_dir ~no_cache:false () = Some "/tmp/from-env");
  Alcotest.(check bool) "flag wins" true
    (Engine.resolve_cache_dir ~cli:"/tmp/flag" ~no_cache:false () = Some "/tmp/flag");
  Alcotest.(check bool) "no-cache wins" true
    (Engine.resolve_cache_dir ~cli:"/tmp/flag" ~no_cache:true () = None);
  Unix.putenv "RME_CACHE_DIR" "";
  Alcotest.(check bool) "empty env is off" true
    (Engine.resolve_cache_dir ~no_cache:false () = None)

(* ---------------- properties: per-line CRC vs file damage ---------------- *)

(* Write a shard of [n] entries and return its path plus content. *)
let write_entries d n =
  let s = Store.open_ ~dir:d ~fingerprint:fp in
  for i = 0 to n - 1 do
    Store.add s ~section:"cell"
      ~key:(Printf.sprintf "k%02d" i)
      ~value:(string_of_int i)
  done;
  Store.flush s;
  let shard = List.hd (shards d) in
  let ic = open_in_bin shard in
  let content = really_input_string ic (in_channel_length ic) in
  close_in ic;
  (shard, content)

(* Truncating a shard at ANY byte offset must, after [Fsck.repair],
   leave exactly the entry lines wholly contained before the cut —
   the per-line CRC keeps a partial line from ever parsing as a
   (different) valid entry, and the torn-tail heal keeps the prefix. *)
let prop_truncation_salvages_exact_prefix =
  QCheck.Test.make ~count:80
    ~name:"store: truncation at any offset keeps exactly the full lines"
    QCheck.(pair (int_range 1 16) (int_bound 10_000))
    (fun (n, cut_sel) ->
      with_dir (fun d ->
          let shard, content = write_entries d n in
          let len = String.length content in
          let header_end = String.index content '\n' + 1 in
          let cut = header_end + (cut_sel mod (len - header_end + 1)) in
          let fd = Unix.openfile shard [ Unix.O_WRONLY ] 0o644 in
          Unix.ftruncate fd cut;
          Unix.close fd;
          let expected = ref 0 in
          String.iteri
            (fun i c -> if c = '\n' && i >= header_end && i < cut then incr expected)
            content;
          ignore (Fsck.repair ~dir:d ~fingerprint:fp);
          let s = Store.open_ ~dir:d ~fingerprint:fp in
          (Store.stats s).Store.entries = !expected))

(* Flipping any single payload byte must knock out that line — and
   only that line — whether the damage reads as a torn tail (last
   line) or interior corruption (quarantine + salvage). *)
let prop_byte_flip_drops_only_that_line =
  QCheck.Test.make ~count:80
    ~name:"store: a flipped byte drops exactly its own line"
    QCheck.(pair (int_range 2 12) (pair (int_bound 1_000) (int_bound 10_000)))
    (fun (n, (line_sel, pos_sel)) ->
      with_dir (fun d ->
          let shard, content = write_entries d n in
          let header_end = String.index content '\n' + 1 in
          (* Line starts, in key order (write_shard sorts; k%02d sorts
             like the index). *)
          let starts = ref [ header_end ] in
          String.iteri
            (fun i c ->
              if c = '\n' && i >= header_end && i < String.length content - 1 then
                starts := (i + 1) :: !starts)
            content;
          let starts = Array.of_list (List.rev !starts) in
          let target = line_sel mod n in
          let line_start = starts.(target) in
          let line_end = String.index_from content line_start '\n' in
          let pos = line_start + (pos_sel mod (line_end - line_start)) in
          let b = Bytes.of_string content in
          Bytes.set b pos (if Bytes.get b pos = 'Z' then 'Y' else 'Z');
          let oc = open_out_bin shard in
          output_bytes oc b;
          close_out oc;
          ignore (Fsck.repair ~dir:d ~fingerprint:fp);
          let s = Store.open_ ~dir:d ~fingerprint:fp in
          let have i =
            Store.find s ~section:"cell" (Printf.sprintf "k%02d" i) <> None
          in
          (Store.stats s).Store.entries = n - 1
          && (not (have target))
          && List.for_all have
               (List.filter (fun i -> i <> target) (List.init n Fun.id))))

let suite =
  ( "store",
    [
      Alcotest.test_case "codec: crash policies round-trip" `Quick
        test_crash_policy_round_trip;
      Alcotest.test_case "codec: floats round-trip exactly" `Quick test_float_round_trip;
      Alcotest.test_case "codec: escaping round-trips" `Quick test_escape_round_trip;
      Alcotest.test_case "codec: cell keys canonical and distinct" `Quick
        test_cell_key_strings;
      Alcotest.test_case "codec: cell results round-trip" `Quick
        test_cell_result_round_trip;
      Alcotest.test_case "codec: adversary keys and results" `Quick test_adv_round_trip;
      Alcotest.test_case "store: add/flush/reopen" `Quick test_store_basic;
      Alcotest.test_case "store: unflushed entries served from pending buffer"
        `Quick test_store_pending_buffer;
      Alcotest.test_case "store: fingerprint mismatch invalidates" `Quick
        test_store_fingerprint_mismatch;
      Alcotest.test_case "store: truncated shard quarantined, prefix salvaged" `Quick
        test_store_truncation;
      Alcotest.test_case "store: garbage file quarantined" `Quick test_store_garbage;
      Alcotest.test_case "store: shared directory loses nothing" `Quick
        test_store_shared_directory;
      Alcotest.test_case "engine: warm store — identical tables, 0 computed" `Quick
        test_warm_store_determinism;
      Alcotest.test_case "engine: corrupt store recomputes" `Quick
        test_engine_corrupt_store_recomputes;
      Alcotest.test_case "engine: fingerprint gates disk entries" `Quick
        test_engine_fingerprint_gates_disk;
      Alcotest.test_case "engine: get persists single cells" `Quick
        test_engine_get_persists;
      Alcotest.test_case "engine: unusable cache dir degrades gracefully" `Quick
        test_engine_unusable_dir_degrades;
      Alcotest.test_case "engine: cache dir resolution order" `Quick
        test_resolve_cache_dir;
      Qc.to_alcotest prop_truncation_salvages_exact_prefix;
      Qc.to_alcotest prop_byte_flip_drops_only_that_line;
    ] )
