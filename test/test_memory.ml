(* Tests for the operation algebra, the w-bit memory, CC cache state and
   RMR accounting in both models. *)

module Op = Rme_memory.Op
module Memory = Rme_memory.Memory
module Cache = Rme_memory.Cache
module Rmr = Rme_memory.Rmr
module Intset = Rme_util.Intset

(* ---------------- operations ---------------- *)

let test_op_read () =
  Alcotest.(check int) "read keeps value" 5 (Op.next_value ~width:8 Op.Read 5);
  Alcotest.(check bool) "read is a read" true (Op.is_read Op.Read)

let test_op_write () =
  Alcotest.(check int) "write stores" 9 (Op.next_value ~width:8 (Op.Write 9) 5);
  Alcotest.(check int) "write truncates" 1 (Op.next_value ~width:4 (Op.Write 17) 5);
  Alcotest.(check bool) "write not a read" false (Op.is_read (Op.Write 9))

let test_op_cas () =
  Alcotest.(check int) "cas success" 7
    (Op.next_value ~width:8 (Op.Cas { expected = 5; desired = 7 }) 5);
  Alcotest.(check int) "cas failure" 5
    (Op.next_value ~width:8 (Op.Cas { expected = 6; desired = 7 }) 5)

let test_op_fas () =
  Alcotest.(check int) "fas stores" 3 (Op.next_value ~width:8 (Op.Fas 3) 200)

let test_op_faa () =
  Alcotest.(check int) "faa adds" 8 (Op.next_value ~width:8 (Op.Faa 3) 5);
  Alcotest.(check int) "faa wraps" 1 (Op.next_value ~width:4 (Op.Faa 2) 15);
  Alcotest.(check int) "faa negative" 4 (Op.next_value ~width:4 (Op.Faa (-1)) 5);
  Alcotest.(check int) "fai" 6 (Op.next_value ~width:8 Op.fai 5)

let test_op_rmw () =
  let double = Op.Rmw { name = "double"; f = (fun ~width:_ v -> v * 2) } in
  Alcotest.(check int) "rmw applies" 10 (Op.next_value ~width:8 double 5);
  Alcotest.(check int) "rmw truncated" 4 (Op.next_value ~width:4 double 10)

(* ---------------- memory ---------------- *)

let test_memory_alloc_and_apply () =
  let m = Memory.create ~width:8 in
  let l = Memory.alloc m ~init:5 in
  Alcotest.(check int) "initial value" 5 (Memory.value m l);
  Alcotest.(check (option int)) "no accessor yet" None (Memory.last_accessor m l);
  let old = Memory.apply m ~pid:3 l (Op.Faa 2) in
  Alcotest.(check int) "returns pre-op value" 5 old;
  Alcotest.(check int) "stored" 7 (Memory.value m l);
  Alcotest.(check (option int)) "accessor recorded" (Some 3) (Memory.last_accessor m l)

let test_memory_width_enforced () =
  let m = Memory.create ~width:3 in
  let l = Memory.alloc m ~init:100 in
  Alcotest.(check int) "init truncated" 4 (Memory.value m l);
  ignore (Memory.apply m ~pid:0 l (Op.Write 255));
  Alcotest.(check int) "write truncated" 7 (Memory.value m l)

let test_memory_owner () =
  let m = Memory.create ~width:8 in
  let l0 = Memory.alloc m ~owner:2 ~init:0 in
  let l1 = Memory.alloc m ~init:0 in
  Alcotest.(check (option int)) "owned" (Some 2) (Memory.owner m l0);
  Alcotest.(check (option int)) "unowned" None (Memory.owner m l1)

let test_memory_reset () =
  let m = Memory.create ~width:8 in
  let l = Memory.alloc m ~init:9 in
  ignore (Memory.apply m ~pid:1 l (Op.Write 4));
  Memory.reset_values m;
  Alcotest.(check int) "value restored" 9 (Memory.value m l);
  Alcotest.(check (option int)) "accessor cleared" None (Memory.last_accessor m l)

let test_memory_peek () =
  let m = Memory.create ~width:8 in
  let l = Memory.alloc m ~init:5 in
  Alcotest.(check int) "peek" 8 (Memory.peek_next_value m l (Op.Faa 3));
  Alcotest.(check int) "peek does not apply" 5 (Memory.value m l)

let test_memory_alloc_array () =
  let m = Memory.create ~width:8 in
  let ls = Memory.alloc_array m ~init:1 ~len:4 in
  Alcotest.(check int) "length" 4 (Array.length ls);
  Alcotest.(check int) "distinct handles" 4
    (List.length (List.sort_uniq compare (Array.to_list ls)))

(* ---------------- cache (CC) ---------------- *)

let test_cache_read_installs () =
  let c = Cache.create ~n:2 in
  Alcotest.(check bool) "first read is RMR" true (Cache.access c ~pid:0 ~loc:7 ~is_read:true);
  Alcotest.(check bool) "copy installed" true (Cache.has_copy c ~pid:0 ~loc:7);
  Alcotest.(check bool) "second read cached" false (Cache.access c ~pid:0 ~loc:7 ~is_read:true)

let test_cache_write_invalidates () =
  let c = Cache.create ~n:3 in
  ignore (Cache.access c ~pid:0 ~loc:7 ~is_read:true);
  ignore (Cache.access c ~pid:1 ~loc:7 ~is_read:true);
  Alcotest.(check bool) "write is RMR" true (Cache.access c ~pid:2 ~loc:7 ~is_read:false);
  Alcotest.(check bool) "p0 invalidated" false (Cache.has_copy c ~pid:0 ~loc:7);
  Alcotest.(check bool) "p1 invalidated" false (Cache.has_copy c ~pid:1 ~loc:7)

let test_cache_write_does_not_install () =
  let c = Cache.create ~n:2 in
  ignore (Cache.access c ~pid:0 ~loc:3 ~is_read:false);
  Alcotest.(check bool) "writer holds no copy" false (Cache.has_copy c ~pid:0 ~loc:3)

let test_cache_crash_drops () =
  let c = Cache.create ~n:2 in
  ignore (Cache.access c ~pid:0 ~loc:1 ~is_read:true);
  ignore (Cache.access c ~pid:0 ~loc:2 ~is_read:true);
  Cache.drop_process c ~pid:0;
  Alcotest.(check bool) "dropped 1" false (Cache.has_copy c ~pid:0 ~loc:1);
  Alcotest.(check bool) "dropped 2" false (Cache.has_copy c ~pid:0 ~loc:2);
  Alcotest.(check bool) "valid set empty" true (Intset.is_empty (Cache.valid_set c ~pid:0))

let test_cache_copy_equal () =
  let c = Cache.create ~n:2 in
  ignore (Cache.access c ~pid:0 ~loc:1 ~is_read:true);
  let c' = Cache.copy c in
  Alcotest.(check bool) "copies agree" true (Cache.equal_for c c' ~pid:0);
  ignore (Cache.access c ~pid:1 ~loc:1 ~is_read:false);
  Alcotest.(check bool) "copies diverge after invalidation" false (Cache.equal_for c c' ~pid:0)

(* ---------------- RMR accounting ---------------- *)

let test_rmr_dsm () =
  let r = Rmr.create Rmr.Dsm ~n:2 in
  Alcotest.(check bool) "own segment is local" false
    (Rmr.record r ~pid:0 ~loc:5 ~owner:(Some 0) ~is_read:false);
  Alcotest.(check bool) "foreign segment is remote" true
    (Rmr.record r ~pid:0 ~loc:6 ~owner:(Some 1) ~is_read:true);
  Alcotest.(check bool) "unowned is remote" true
    (Rmr.record r ~pid:0 ~loc:7 ~owner:None ~is_read:true);
  Alcotest.(check int) "total" 2 (Rmr.total r ~pid:0)

let test_rmr_cc () =
  let r = Rmr.create Rmr.Cc ~n:2 in
  Alcotest.(check bool) "first read remote" true
    (Rmr.record r ~pid:0 ~loc:5 ~owner:None ~is_read:true);
  Alcotest.(check bool) "cached read local" false
    (Rmr.record r ~pid:0 ~loc:5 ~owner:None ~is_read:true);
  Alcotest.(check bool) "any write remote" true
    (Rmr.record r ~pid:0 ~loc:5 ~owner:None ~is_read:false);
  Alcotest.(check bool) "read after own write remote again" true
    (Rmr.record r ~pid:0 ~loc:5 ~owner:None ~is_read:true)

let test_rmr_would_incur () =
  let r = Rmr.create Rmr.Cc ~n:1 in
  Alcotest.(check bool) "would (uncached)" true
    (Rmr.would_incur r ~pid:0 ~loc:9 ~owner:None ~is_read:true);
  Alcotest.(check int) "would does not count" 0 (Rmr.total r ~pid:0);
  ignore (Rmr.record r ~pid:0 ~loc:9 ~owner:None ~is_read:true);
  Alcotest.(check bool) "would (cached)" false
    (Rmr.would_incur r ~pid:0 ~loc:9 ~owner:None ~is_read:true)

let test_rmr_passage () =
  let r = Rmr.create Rmr.Dsm ~n:1 in
  ignore (Rmr.record r ~pid:0 ~loc:1 ~owner:None ~is_read:true);
  ignore (Rmr.record r ~pid:0 ~loc:2 ~owner:None ~is_read:true);
  Alcotest.(check int) "passage" 2 (Rmr.passage r ~pid:0);
  Rmr.start_passage r ~pid:0;
  Alcotest.(check int) "passage reset" 0 (Rmr.passage r ~pid:0);
  Alcotest.(check int) "total kept" 2 (Rmr.total r ~pid:0)

let test_rmr_crash_drops_cache () =
  let r = Rmr.create Rmr.Cc ~n:1 in
  ignore (Rmr.record r ~pid:0 ~loc:1 ~owner:None ~is_read:true);
  Rmr.on_crash r ~pid:0;
  Alcotest.(check bool) "cache gone after crash" true
    (Rmr.would_incur r ~pid:0 ~loc:1 ~owner:None ~is_read:true)

let prop_op_truncated =
  QCheck.Test.make ~name:"every op result fits the word"
    QCheck.(triple (int_range 1 20) (int_bound 10000) (int_bound 1000000))
    (fun (w, v, x) ->
      let module B = Rme_util.Bitword in
      let v = B.truncate ~width:w v in
      List.for_all
        (fun op ->
          let r = Op.next_value ~width:w op v in
          r >= 0 && r <= B.mask w)
        [
          Op.Read;
          Op.Write x;
          Op.Fas x;
          Op.Faa x;
          Op.Faa (-x);
          Op.Cas { expected = v; desired = x };
          Op.Rmw { name = "sq"; f = (fun ~width:_ u -> (u * u) + x) };
        ])

let suite =
  ( "memory",
    [
      Alcotest.test_case "op: read" `Quick test_op_read;
      Alcotest.test_case "op: write" `Quick test_op_write;
      Alcotest.test_case "op: cas" `Quick test_op_cas;
      Alcotest.test_case "op: fas" `Quick test_op_fas;
      Alcotest.test_case "op: faa wraps" `Quick test_op_faa;
      Alcotest.test_case "op: arbitrary rmw" `Quick test_op_rmw;
      Alcotest.test_case "memory: alloc/apply" `Quick test_memory_alloc_and_apply;
      Alcotest.test_case "memory: width enforced" `Quick test_memory_width_enforced;
      Alcotest.test_case "memory: ownership" `Quick test_memory_owner;
      Alcotest.test_case "memory: reset" `Quick test_memory_reset;
      Alcotest.test_case "memory: peek" `Quick test_memory_peek;
      Alcotest.test_case "memory: alloc_array" `Quick test_memory_alloc_array;
      Alcotest.test_case "cache: read installs" `Quick test_cache_read_installs;
      Alcotest.test_case "cache: non-read invalidates all" `Quick test_cache_write_invalidates;
      Alcotest.test_case "cache: write installs nothing" `Quick test_cache_write_does_not_install;
      Alcotest.test_case "cache: crash drops" `Quick test_cache_crash_drops;
      Alcotest.test_case "cache: copy/equal" `Quick test_cache_copy_equal;
      Alcotest.test_case "rmr: DSM rule" `Quick test_rmr_dsm;
      Alcotest.test_case "rmr: CC rule" `Quick test_rmr_cc;
      Alcotest.test_case "rmr: would_incur" `Quick test_rmr_would_incur;
      Alcotest.test_case "rmr: passage counters" `Quick test_rmr_passage;
      Alcotest.test_case "rmr: crash semantics" `Quick test_rmr_crash_drops_cache;
      Qc.to_alcotest prop_op_truncated;
    ] )
