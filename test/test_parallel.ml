(* Tests for the multicore experiment engine: the domain pool itself,
   the trial-cell memo cache and its counters, and the headline
   guarantee — experiment tables are bit-identical no matter how many
   domains compute the cells. *)

module Pool = Rme_util.Pool
module Engine = Rme_experiments.Engine
module E = Rme_experiments.Experiments
module Table = Rme_util.Table
module H = Rme_sim.Harness
module Rmr = Rme_memory.Rmr

(* ---------------- the domain pool ---------------- *)

let with_pool ~jobs f =
  let p = Pool.create ~jobs in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

let test_pool_map_order () =
  with_pool ~jobs:4 (fun p ->
      (* Uneven work so domains finish out of order; results must still
         land in index order. *)
      let out =
        Pool.map_array p 100 (fun i ->
            let spin = if i mod 7 = 0 then 10_000 else 10 in
            let acc = ref 0 in
            for _ = 1 to spin do
              incr acc
            done;
            ignore !acc;
            i * i)
      in
      Alcotest.(check bool) "order" true
        (Array.to_list out = List.init 100 (fun i -> i * i)))

let test_pool_map_list () =
  with_pool ~jobs:3 (fun p ->
      Alcotest.(check (list int)) "map_list" [ 2; 4; 6; 8 ]
        (Pool.map_list p (fun x -> 2 * x) [ 1; 2; 3; 4 ]))

let test_pool_sequential_paths () =
  with_pool ~jobs:1 (fun p ->
      Alcotest.(check int) "jobs 1" 1 (Pool.jobs p);
      Alcotest.(check bool) "seq map" true
        (Pool.map_array p 5 (fun i -> i) = [| 0; 1; 2; 3; 4 |]));
  with_pool ~jobs:0 (fun p ->
      Alcotest.(check bool) "auto-detect positive" true (Pool.jobs p >= 1);
      Alcotest.(check bool) "empty map" true (Pool.map_array p 0 (fun i -> i) = [||]))

exception Boom of int

let test_pool_exception () =
  with_pool ~jobs:4 (fun p ->
      (match Pool.map_array p 20 (fun i -> if i = 13 then raise (Boom i) else i) with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom 13 -> ());
      (* The pool must survive a failed map and keep working. *)
      Alcotest.(check bool) "usable after" true
        (Pool.map_array p 8 (fun i -> i + 1) = [| 1; 2; 3; 4; 5; 6; 7; 8 |]))

let test_pool_shutdown_idempotent () =
  let p = Pool.create ~jobs:3 in
  Pool.shutdown p;
  Pool.shutdown p

let test_pool_chunked () =
  (* Explicit chunk sizes — including ones that don't divide n, exceed
     n, or claim everything at once — must not change the output. *)
  let expect = List.init 100 (fun i -> i * i) in
  List.iter
    (fun chunk ->
      with_pool ~jobs:4 (fun p ->
          let out = Pool.map_array ~chunk p 100 (fun i -> i * i) in
          Alcotest.(check bool)
            (Printf.sprintf "chunk %d keeps order" chunk)
            true
            (Array.to_list out = expect)))
    [ 1; 3; 7; 64; 100; 1000 ];
  (* Auto chunking (the n <= 8 tiny-cell batch shape: many microsecond
     tasks) also preserves order. *)
  with_pool ~jobs:4 (fun p ->
      let out = Pool.map_array p 1000 (fun i -> i + 1) in
      Alcotest.(check bool) "auto chunk keeps order" true
        (Array.to_list out = List.init 1000 (fun i -> i + 1)))

let test_pool_chunked_exception () =
  with_pool ~jobs:4 (fun p ->
      (match
         Pool.map_array ~chunk:8 p 100 (fun i -> if i = 57 then raise (Boom i) else i)
       with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom 57 -> ());
      Alcotest.(check bool) "usable after chunked failure" true
        (Pool.map_array ~chunk:3 p 8 (fun i -> i + 1) = [| 1; 2; 3; 4; 5; 6; 7; 8 |]))

(* ---------------- the memo cache and counters ---------------- *)

let mk_cell seed =
  Engine.cell ~seed ~n:2 ~width:16 ~model:Rmr.Cc Rme_locks.Tas.factory

let with_engine ~jobs f =
  let e = Engine.create ~jobs () in
  Fun.protect ~finally:(fun () -> Engine.shutdown e) (fun () -> f e)

let test_memo_counters () =
  with_engine ~jobs:2 (fun e ->
      Engine.prefetch e [ mk_cell 1; mk_cell 2; mk_cell 1 ];
      let c = Engine.counters e in
      Alcotest.(check int) "computed = unique misses" 2 c.Engine.computed;
      Alcotest.(check int) "cached = duplicates" 1 c.Engine.cached;
      Engine.prefetch e [ mk_cell 1; mk_cell 2; mk_cell 1 ];
      let c = Engine.counters e in
      Alcotest.(check int) "nothing recomputed" 2 c.Engine.computed;
      Alcotest.(check int) "all served from cache" 4 c.Engine.cached;
      (* [get] of a memoised cell touches no counter. *)
      ignore (Engine.get e (mk_cell 1));
      let c' = Engine.counters e in
      Alcotest.(check bool) "get is counter-neutral" true (c = c');
      (* [get] of a novel cell computes inline. *)
      ignore (Engine.get e (mk_cell 3));
      Alcotest.(check int) "inline miss computes" 3 (Engine.counters e).Engine.computed)

let test_memo_equals_direct () =
  (* The memoised result must be the plain harness result. *)
  with_engine ~jobs:4 (fun e ->
      let cell =
        Engine.cell ~superpassages:2 ~seed:11 ~n:5 ~width:16 ~model:Rmr.Dsm
          Rme_locks.Mcs.factory
      in
      Engine.prefetch e [ cell ];
      let r = Engine.get e cell in
      let direct =
        H.run
          {
            (H.default_config ~n:5 ~width:16 Rmr.Dsm) with
            superpassages = 2;
            policy = H.Random_policy 11;
          }
          Rme_locks.Mcs.factory
      in
      Alcotest.(check bool) "ok" direct.H.ok r.Engine.ok;
      Alcotest.(check int) "max" direct.H.max_passage_rmr r.Engine.max_passage_rmr;
      Alcotest.(check (float 1e-9)) "mean" direct.H.mean_passage_rmr
        r.Engine.mean_passage_rmr)

(* ---------------- bit-identical tables at any -j ---------------- *)

let render_all tables = String.concat "\n" (List.map Table.render tables)

(* Render the reduced-parameter versions of E1, E2 and E5 (the shapes
   the issue pins down: crash-free sweeps and the probabilistic-crash
   experiment) on a given engine. *)
let render_suite engine =
  render_all
    (E.e1_lock_landscape ~engine ~ns:[ 2; 4; 8 ] ()
    @ E.e2_word_size_tradeoff ~engine ~ns:[ 8; 16 ] ~ws:[ 2; 8; 32 ] ()
    @ E.e5_crash_cost ~engine ~n:4 ~probs:[ 0.0; 0.05 ] ())

let test_tables_bit_identical () =
  let seq = with_engine ~jobs:1 render_suite in
  let par = with_engine ~jobs:4 render_suite in
  let par' = with_engine ~jobs:4 render_suite in
  Alcotest.(check string) "-j 4 == -j 1" seq par;
  Alcotest.(check string) "-j 4 reruns agree" par par'

(* ---------------- bit-identical tables at --workers 2 ---------------- *)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let test_tables_workers_identical () =
  (* The j1 == j4 guarantee extended to process sharding: an in-process
     coordinator driving two forked workers, all sharing one cache
     directory, must produce byte-identical tables — and the warm rerun
     must be answered entirely from the shared store (0 computed). *)
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "rme_workers_test_%d" (Unix.getpid ()))
  in
  rm_rf d;
  Fun.protect ~finally:(fun () -> rm_rf d) (fun () ->
      let worker_argv =
        [| Sys.executable_name; "__rme_worker__"; "engine"; "--cache-dir"; d |]
      in
      let base = with_engine ~jobs:1 render_suite in
      let cold =
        let e = Engine.create ~jobs:1 ~cache_dir:d ~workers:2 ~worker_argv () in
        Fun.protect ~finally:(fun () -> Engine.shutdown e) (fun () ->
            let out = render_suite e in
            Alcotest.(check bool) "cold pass: workers computed cells" true
              ((Engine.counters e).Engine.remote > 0);
            out)
      in
      Alcotest.(check string) "--workers 2 == --workers 0" base cold;
      let e = Engine.create ~jobs:1 ~cache_dir:d ~workers:2 ~worker_argv () in
      Fun.protect ~finally:(fun () -> Engine.shutdown e) (fun () ->
          let warm = render_suite e in
          Alcotest.(check string) "warm --workers 2 byte-identical" base warm;
          Alcotest.(check int) "warm pass: 0 computed" 0
            (Engine.counters e).Engine.computed))

let test_adversary_tables_bit_identical () =
  let render engine = render_all (E.e3_adversary_bound ~engine ~ns:[ 32 ] ~ws:[ 8 ] ()) in
  let seq = with_engine ~jobs:1 render in
  let par = with_engine ~jobs:4 render in
  Alcotest.(check string) "adversary cells shard deterministically" seq par

(* ---------------- cross-experiment cell sharing ---------------- *)

let test_e6_shares_e1_cells () =
  (* E6's defaults (seed 42, n=32, w=16, 2 super-passages) are E1 cells:
     after E1, E6 must be answered entirely from the memo. *)
  with_engine ~jobs:2 (fun e ->
      ignore (E.e1_lock_landscape ~engine:e ());
      let c0 = Engine.counters e in
      ignore (E.e6_model_comparison ~engine:e ());
      let c1 = Engine.counters e in
      Alcotest.(check int) "e6 computes nothing new" 0
        (c1.Engine.computed - c0.Engine.computed);
      Alcotest.(check bool) "e6 hits the cache" true
        (c1.Engine.cached > c0.Engine.cached))

(* ---------------- -j changes keep the memo ---------------- *)

let test_set_jobs_keeps_memo () =
  (* Regression: [set_jobs] used to rebuild the default engine from
     scratch, forfeiting every computed cell. The memo (and counters)
     must survive a mid-process -j change. *)
  Engine.set_jobs 1;
  let e1 = Engine.default () in
  Engine.prefetch e1 [ mk_cell 101; mk_cell 102 ];
  let c1 = Engine.counters e1 in
  Engine.set_jobs 2;
  let e2 = Engine.default () in
  Alcotest.(check int) "jobs changed" 2 (Engine.jobs e2);
  Alcotest.(check bool) "counters carried over" true
    ((Engine.counters e2).Engine.computed = c1.Engine.computed);
  Engine.prefetch e2 [ mk_cell 101; mk_cell 102 ];
  let c2 = Engine.counters e2 in
  Alcotest.(check int) "memo carried over: nothing recomputed" c1.Engine.computed
    c2.Engine.computed;
  Alcotest.(check int) "served from the carried memo" (c1.Engine.cached + 2)
    c2.Engine.cached;
  Engine.set_jobs 1

let suite =
  ( "parallel",
    [
      Alcotest.test_case "pool: map_array keeps index order" `Quick test_pool_map_order;
      Alcotest.test_case "pool: map_list keeps order" `Quick test_pool_map_list;
      Alcotest.test_case "pool: sequential and auto paths" `Quick
        test_pool_sequential_paths;
      Alcotest.test_case "pool: task exception propagates" `Quick test_pool_exception;
      Alcotest.test_case "pool: shutdown is idempotent" `Quick
        test_pool_shutdown_idempotent;
      Alcotest.test_case "pool: chunked scheduling keeps order" `Quick test_pool_chunked;
      Alcotest.test_case "pool: chunked exception propagates" `Quick
        test_pool_chunked_exception;
      Alcotest.test_case "engine: set_jobs keeps the memo cache" `Quick
        test_set_jobs_keeps_memo;
      Alcotest.test_case "engine: memo counters" `Quick test_memo_counters;
      Alcotest.test_case "engine: memo result = direct harness run" `Quick
        test_memo_equals_direct;
      Alcotest.test_case "tables bit-identical at -j 1/-j 4" `Quick
        test_tables_bit_identical;
      Alcotest.test_case "tables bit-identical at --workers 2 (shared cache)" `Quick
        test_tables_workers_identical;
      Alcotest.test_case "adversary tables bit-identical" `Quick
        test_adversary_tables_bit_identical;
      Alcotest.test_case "e6 served from e1's cells" `Quick test_e6_shares_e1_cells;
    ] )
