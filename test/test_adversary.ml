(* Tests for the lower-bound adversary: against every recoverable lock
   and model it must force at least the Theorem 1 bound, keep survivors
   crash-free and CS-free, and every replay must stay consistent. *)

module A = Rme_core.Adversary
module T = Rme_core.Schedule_table
module Bounds = Rme_core.Bounds
module Rmr = Rme_memory.Rmr
module Intset = Rme_util.Intset

let recoverable = Rme_locks.Registry.recoverable

let run ?(n = 64) ?(w = 8) ?(model = Rmr.Cc) ?k factory =
  let cfg = A.default_config ~n ~width:w model in
  let cfg = match k with Some k -> { cfg with A.k } | None -> cfg in
  (A.run cfg factory, cfg)

let test_meets_bound_all_locks () =
  List.iter
    (fun (factory : Rme_sim.Lock_intf.factory) ->
      List.iter
        (fun model ->
          let r, _ = run ~model factory in
          let name =
            Printf.sprintf "%s %s" factory.Rme_sim.Lock_intf.name (Rmr.model_name model)
          in
          Alcotest.(check bool) (name ^ ": meets Theorem 1 bound") true
            (float_of_int r.A.rounds_completed >= r.A.predicted_lower_bound);
          Alcotest.(check bool) (name ^ ": survivors exist") true
            (not (Intset.is_empty r.A.survivors));
          Alcotest.(check int) (name ^ ": no escapes") 0 r.A.escaped;
          Alcotest.(check bool) (name ^ ": replays checked") true
            (r.A.replay_checked_steps > 0))
        Rmr.all_models)
    recoverable

let test_survivors_have_round_many_rmrs () =
  List.iter
    (fun (factory : Rme_sim.Lock_intf.factory) ->
      let r, _ = run factory in
      Alcotest.(check bool)
        (factory.Rme_sim.Lock_intf.name ^ ": min survivor RMRs >= rounds")
        true
        (r.A.survivor_min_rmrs >= r.A.rounds_completed))
    recoverable

let test_round_bookkeeping () =
  let r, _ = run Rme_locks.Rcas.factory in
  List.iter
    (fun (ri : A.round_info) ->
      Alcotest.(check int) "population conserved" ri.A.active_before
        (ri.A.active_after + ri.A.newly_finished + ri.A.newly_removed);
      Alcotest.(check bool) "rounds make progress or hold" true
        (ri.A.active_after <= ri.A.active_before))
    r.A.rounds;
  Alcotest.(check int) "round list length" r.A.rounds_completed
    (List.length r.A.rounds)

(* The decay bound of Lemma 6: n_i >= n_{i-1} / w^{O(1)} — checked with
   the concrete k: each round keeps at least active_before/(2k) of its
   actives (or ends the construction). *)
let test_decay_bound () =
  List.iter
    (fun (factory : Rme_sim.Lock_intf.factory) ->
      let r, cfg = run factory in
      List.iter
        (fun (ri : A.round_info) ->
          if ri.A.active_after >= 2 then
            Alcotest.(check bool)
              (Printf.sprintf "%s round %d decay: %d -> %d (k=%d)"
                 factory.Rme_sim.Lock_intf.name ri.A.index ri.A.active_before
                 ri.A.active_after cfg.A.k)
              true
              (ri.A.active_after * 2 * cfg.A.k >= ri.A.active_before))
        r.A.rounds)
    recoverable

let test_km_rounds_decrease_with_width () =
  let rounds w =
    let r, _ = run ~n:1024 ~w Rme_locks.Katzan_morrison.factory in
    r.A.rounds_completed
  in
  let r4 = rounds 4 and r8 = rounds 8 and r16 = rounds 16 in
  Alcotest.(check bool)
    (Printf.sprintf "rounds fall with w: %d >= %d >= %d" r4 r8 r16)
    true
    (r4 >= r8 && r8 >= r16);
  Alcotest.(check bool) "strictly falls over the sweep" true (r4 > r16)

let test_rounds_grow_with_n () =
  let rounds n =
    let r, _ = run ~n ~w:8 Rme_locks.Rtournament.factory in
    r.A.rounds_completed
  in
  Alcotest.(check bool) "more processes, more rounds" true (rounds 256 > rounds 16)

let test_k_parameter () =
  (* Larger k merges more processes per hide group: fewer survivors per
     high round but the bound still holds. *)
  List.iter
    (fun k ->
      let r, _ = run ~k Rme_locks.Rcas.factory in
      Alcotest.(check bool)
        (Printf.sprintf "k=%d meets bound" k)
        true
        (float_of_int r.A.rounds_completed >= r.A.predicted_lower_bound))
    [ 9; 16; 32 ]

let test_k_validation () =
  let cfg = { (A.default_config ~n:8 ~width:8 Rmr.Cc) with A.k = 1 } in
  Alcotest.check_raises "k < 2 rejected" (Invalid_argument "Adversary.run: k must be >= 2")
    (fun () -> ignore (A.run cfg Rme_locks.Rcas.factory))

let test_determinism () =
  let go () =
    let r, _ = run ~n:128 Rme_locks.Katzan_morrison.factory in
    (r.A.rounds_completed, Intset.to_sorted_list r.A.survivors, r.A.survivor_min_rmrs)
  in
  Alcotest.(check bool) "identical reruns" true (go () = go ())

let test_schedule_exported () =
  let r, _ = run ~n:16 Rme_locks.Rcas.factory in
  let s = r.A.schedule in
  Alcotest.(check bool) "directives present" true (Array.length s.A.directives > 0);
  Alcotest.(check int) "one meta per round" r.A.rounds_completed
    (List.length s.A.metas);
  (* boundaries are increasing and end at the full schedule *)
  let rec increasing = function
    | a :: b :: rest -> a.A.boundary <= b.A.boundary && increasing (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "boundaries increase" true (increasing s.A.metas)

(* ---------------- schedule-table invariants ---------------- *)

let test_invariants_small_n () =
  List.iter
    (fun (factory : Rme_sim.Lock_intf.factory) ->
      List.iter
        (fun model ->
          let cfg = { (A.default_config ~n:8 ~width:16 model) with A.k = 4 } in
          let r = A.run cfg factory in
          let rep = T.check ~max_actives:8 r.A.schedule in
          if not (T.ok rep) then
            Alcotest.failf "%s %s: %s" factory.Rme_sim.Lock_intf.name
              (Rmr.model_name model)
              (Format.asprintf "%a" T.pp_report rep);
          Alcotest.(check bool) "columns checked" true (rep.T.columns_checked > 0))
        Rmr.all_models)
    recoverable

let test_invariants_n10 () =
  let cfg = { (A.default_config ~n:10 ~width:16 Rmr.Cc) with A.k = 4 } in
  let r = A.run cfg Rme_locks.Rtournament.factory in
  let rep = T.check ~max_actives:10 r.A.schedule in
  Alcotest.(check bool) "no violations" true (T.ok rep);
  Alcotest.(check bool) "thousands of assertions" true (rep.T.assertions > 1000)

(* ---------------- bounds formulas ---------------- *)

let test_bounds_formulas () =
  Alcotest.(check (float 1e-9)) "log2 8" 3.0 (Bounds.log2 8.0);
  Alcotest.(check (float 1e-9)) "log_n 1024" 10.0 (Bounds.log_n ~n:1024);
  Alcotest.(check (float 1e-9)) "km n=256 w=16" 2.0 (Bounds.km_upper ~n:256 ~w:16);
  Alcotest.(check (float 1e-9)) "km n=257 w=16" 3.0 (Bounds.km_upper ~n:257 ~w:16);
  Alcotest.(check (float 1e-9)) "km trivial" 0.0 (Bounds.km_upper ~n:1 ~w:8);
  Alcotest.(check int) "levels b=8 n=64" 2 (Bounds.tree_levels ~n:64 ~b:8);
  Alcotest.(check int) "levels b=8 n=65" 3 (Bounds.tree_levels ~n:65 ~b:8);
  Alcotest.(check int) "levels n=1" 0 (Bounds.tree_levels ~n:1 ~b:8);
  (* min(log_w n, log/loglog): for w >= log n the first term wins *)
  Alcotest.(check bool) "theorem1 <= km" true
    (Bounds.theorem1_lower ~n:4096 ~w:16 <= Bounds.km_upper ~n:4096 ~w:16);
  Alcotest.(check bool) "theorem1 <= log/loglog" true
    (Bounds.theorem1_lower ~n:4096 ~w:2 <= Bounds.log_over_loglog ~n:4096 +. 1e-9);
  Alcotest.(check bool) "crossover near log n" true
    (let c = Bounds.crossover_width ~n:65536 in
     c >= 14 && c <= 18)

let prop_adversary_meets_bound =
  (* Random (lock, n, w, model): the construction always reaches the
     Theorem 1 bound with zero escapes and consistent replays. *)
  let locks = Array.of_list recoverable in
  QCheck.Test.make ~name:"adversary meets the bound for random configurations"
    ~count:25
    QCheck.(triple (int_range 16 256) (int_range 2 32) (int_range 0 100000))
    (fun (n, w, seed) ->
      let factory = locks.(seed mod Array.length locks) in
      let model = if seed mod 2 = 0 then Rmr.Cc else Rmr.Dsm in
      QCheck.assume (Rme_sim.Lock_intf.supports factory ~n ~width:w);
      let cfg = A.default_config ~n ~width:w model in
      let r = A.run cfg factory in
      float_of_int r.A.rounds_completed >= r.A.predicted_lower_bound
      && r.A.escaped = 0
      && r.A.survivor_min_rmrs >= r.A.rounds_completed)

let prop_theorem1_min =
  QCheck.Test.make ~name:"theorem1 formula is the min of its two terms"
    QCheck.(pair (int_range 2 100000) (int_range 2 62))
    (fun (n, w) ->
      let t = Bounds.theorem1_lower ~n ~w in
      t <= Bounds.km_upper ~n ~w +. 1e-9
      && t <= Float.max 1.0 (Bounds.log_over_loglog ~n) +. 1e-9
      && t >= 1.0 -. 1e-9)

let suite =
  ( "adversary",
    [
      Alcotest.test_case "meets Theorem 1 bound (all locks, both models)" `Quick
        test_meets_bound_all_locks;
      Alcotest.test_case "survivor RMRs >= rounds" `Quick
        test_survivors_have_round_many_rmrs;
      Alcotest.test_case "round bookkeeping" `Quick test_round_bookkeeping;
      Alcotest.test_case "per-round decay bound (Lemma 6 shape)" `Quick test_decay_bound;
      Alcotest.test_case "KM: rounds fall with word size" `Quick
        test_km_rounds_decrease_with_width;
      Alcotest.test_case "rounds grow with n" `Quick test_rounds_grow_with_n;
      Alcotest.test_case "k parameter sweep" `Quick test_k_parameter;
      Alcotest.test_case "k validation" `Quick test_k_validation;
      Alcotest.test_case "determinism" `Quick test_determinism;
      Alcotest.test_case "schedule exported" `Quick test_schedule_exported;
      Alcotest.test_case "invariants I1-I10 at n=8" `Slow test_invariants_small_n;
      Alcotest.test_case "invariants I1-I10 at n=10" `Slow test_invariants_n10;
      Alcotest.test_case "bounds formulas" `Quick test_bounds_formulas;
      Qc.to_alcotest prop_adversary_meets_bound;
      Qc.to_alcotest prop_theorem1_min;
    ] )
