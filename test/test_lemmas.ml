(* Tests for Lemma 4 and Lemma 5: unit cases plus randomized hypergraphs
   whose outcomes are independently re-verified against the statements. *)

module P = Rme_core.Partite
module L4 = Rme_core.Lemma4
module L5 = Rme_core.Lemma5
module Splitmix = Rme_util.Splitmix
module Intset = Rme_util.Intset

let mk_parts sizes =
  let base = ref 0 in
  Array.map
    (fun s ->
      let p = Array.init s (fun i -> !base + i) in
      base := !base + s + 100;
      p)
    (Array.of_list sizes)

(* Random sub-hypergraph of the complete one, with at least [min_edges]. *)
let random_edges rng parts ~keep_prob ~min_edges =
  let all = (P.complete ~parts).P.edges in
  let kept = List.filter (fun _ -> Splitmix.float rng < keep_prob) all in
  if List.length kept >= min_edges then kept
  else begin
    (* top up deterministically *)
    let missing = min_edges - List.length kept in
    let extra =
      List.filteri (fun i e -> i < missing && not (List.mem e kept)) all
    in
    kept @ extra
  end

(* ---------------- Lemma 4 ---------------- *)

let check_l4 ~s ~eps ~parts ~edges =
  let outcome = L4.solve ~s ~eps ~parts ~edges in
  match L4.verify ~s ~eps ~parts ~edges outcome with
  | Ok () -> outcome
  | Error m -> Alcotest.failf "Lemma4 verification failed: %s" m

let test_l4_single_vertex_union () =
  (* All edges share the same X_1 vertex: case (a) with |Z| = 1. *)
  let parts = mk_parts [ 2; 3 ] in
  let edges = List.map (fun i -> [| parts.(0).(0); parts.(1).(i) |]) [ 0; 1; 2 ] in
  match check_l4 ~s:2.0 ~eps:0.0 ~parts ~edges with
  | L4.Union_small { zs; union } ->
      Alcotest.(check bool) "|Z| <= 2" true (List.length zs <= 2);
      Alcotest.(check bool) "union large" true
        (float_of_int (List.length union) >= 3.0 /. 2.0)
  | L4.Intersect_large _ -> Alcotest.fail "expected case (a)"

let test_l4_complete_bipartite () =
  let parts = mk_parts [ 4; 4 ] in
  let edges = (P.complete ~parts).P.edges in
  ignore (check_l4 ~s:3.4 ~eps:0.2 ~parts ~edges)

let test_l4_intersection_case () =
  (* Complete bipartite 6 x 4 with s = 5: every projection is the same
     4-tail set, so |p_i ∪ p_j| = 4 < |E|/s = 4.8 for all pairs — case
     (a) is unreachable and every tail intersects all six projections. *)
  let parts = mk_parts [ 6; 4 ] in
  let edges = (P.complete ~parts).P.edges in
  match check_l4 ~s:5.0 ~eps:0.2 ~parts ~edges with
  | L4.Intersect_large { zs; witness = _ } ->
      (* threshold: s(1+eps)(1-2eps) = 5 * 1.2 * 0.6 = 3.6 *)
      Alcotest.(check bool) "many vertices" true (List.length zs >= 4);
      Alcotest.(check bool) "Z within X_1" true
        (List.for_all (fun z -> Array.exists (fun v -> v = z) parts.(0)) zs)
  | L4.Union_small { zs; union } ->
      Alcotest.failf "expected case (b), got (a) with |Z|=%d |U|=%d"
        (List.length zs) (List.length union)

let test_l4_preconditions () =
  let parts = mk_parts [ 4; 2 ] in
  let edges = (P.complete ~parts).P.edges in
  Alcotest.(check bool) "bad eps rejected" true
    (try
       ignore (L4.solve ~s:4.0 ~eps:0.7 ~parts ~edges);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "oversized X_1 rejected" true
    (try
       ignore (L4.solve ~s:2.0 ~eps:0.1 ~parts ~edges);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "no edges rejected" true
    (try
       ignore (L4.solve ~s:4.0 ~eps:0.1 ~parts ~edges:[]);
       false
     with Invalid_argument _ -> true)

let prop_l4_random =
  QCheck.Test.make ~name:"lemma 4 outcome always verifies on random hypergraphs"
    ~count:100
    QCheck.(triple (int_range 2 5) (int_range 2 5) (int_range 0 10_000))
    (fun (a, b, seed) ->
      let rng = Splitmix.create seed in
      let parts = mk_parts [ a; b; 3 ] in
      let edges = random_edges rng parts ~keep_prob:0.6 ~min_edges:1 in
      let s = float_of_int a /. 1.1 and eps = 0.2 in
      QCheck.assume (float_of_int a <= s *. (1.0 +. eps));
      match L4.verify ~s ~eps ~parts ~edges (L4.solve ~s ~eps ~parts ~edges) with
      | Ok () -> true
      | Error _ -> false)

(* ---------------- Lemma 5 ---------------- *)

let check_l5 ~s ~eps ~parts ~edges =
  let outcome = L5.solve ~s ~eps ~parts ~edges in
  match L5.verify ~s ~eps ~parts ~edges outcome with
  | Ok () -> outcome
  | Error m -> Alcotest.failf "Lemma5 verification failed: %s" m

let test_l5_complete_small () =
  let parts = mk_parts [ 2; 2; 2 ] in
  let edges = (P.complete ~parts).P.edges in
  (* s = 2, eps = 0: |E| = 8 = s^k. *)
  let o = check_l5 ~s:2.0 ~eps:0.0 ~parts ~edges in
  Alcotest.(check bool) "d in range" true (o.L5.d >= 1 && o.L5.d <= 3);
  Alcotest.(check bool) "F non-empty" true (o.L5.hyperedges <> [])

let test_l5_complete_larger () =
  let parts = mk_parts [ 3; 3; 3; 3 ] in
  let edges = (P.complete ~parts).P.edges in
  let o = check_l5 ~s:2.5 ~eps:0.2 ~parts ~edges in
  let xd = parts.(o.L5.d - 1) in
  let inter =
    Array.fold_left (fun acc v -> if Intset.mem v o.L5.u then acc + 1 else acc) 0 xd
  in
  Alcotest.(check bool) "special part rich" true (float_of_int inter >= 2.5 *. 1.2 *. 0.6)

let test_l5_rejects_few_edges () =
  let parts = mk_parts [ 2; 2; 2 ] in
  let edges = [ [| parts.(0).(0); parts.(1).(0); parts.(2).(0) |] ] in
  Alcotest.(check bool) "|E| < s^k rejected" true
    (try
       ignore (L5.solve ~s:2.0 ~eps:0.0 ~parts ~edges);
       false
     with Invalid_argument _ -> true)

(* Negative tests: the verifiers must reject corrupted outcomes. *)

let test_l4_verify_rejects () =
  let parts = mk_parts [ 4; 4 ] in
  let edges = (P.complete ~parts).P.edges in
  let s = 3.4 and eps = 0.2 in
  let bogus_union =
    L4.Union_small { zs = [ parts.(0).(0) ]; union = [] }
  in
  Alcotest.(check bool) "empty union rejected" true
    (Result.is_error (L4.verify ~s ~eps ~parts ~edges bogus_union));
  let bogus_witness =
    L4.Intersect_large
      { zs = Array.to_list parts.(0); witness = [| parts.(1).(0) + 999 |] }
  in
  Alcotest.(check bool) "foreign witness rejected" true
    (Result.is_error (L4.verify ~s ~eps ~parts ~edges bogus_witness))

let test_l5_verify_rejects () =
  let parts = mk_parts [ 2; 2; 2 ] in
  let edges = (P.complete ~parts).P.edges in
  let s = 2.0 and eps = 0.0 in
  let good = L5.solve ~s ~eps ~parts ~edges in
  (* Corrupt U. *)
  let bad = { good with L5.u = Intset.add 424242 good.L5.u } in
  Alcotest.(check bool) "corrupted U rejected" true
    (Result.is_error (L5.verify ~s ~eps ~parts ~edges bad));
  (* Corrupt F with a foreign edge. *)
  let bad2 = { good with L5.hyperedges = [| 1; 2; 3 |] :: good.L5.hyperedges } in
  Alcotest.(check bool) "foreign edge rejected" true
    (Result.is_error (L5.verify ~s ~eps ~parts ~edges bad2));
  (* Out-of-range d. *)
  let bad3 = { good with L5.d = 9 } in
  Alcotest.(check bool) "bad d rejected" true
    (Result.is_error (L5.verify ~s ~eps ~parts ~edges bad3))

let prop_l5_random =
  QCheck.Test.make ~name:"lemma 5 outcome always verifies on random hypergraphs"
    ~count:60
    QCheck.(pair (int_range 2 3) (int_range 0 10_000))
    (fun (k, seed) ->
      let rng = Splitmix.create seed in
      let sizes = List.init k (fun _ -> 3) in
      let parts = mk_parts sizes in
      let s = 2.5 and eps = 0.2 in
      let min_edges = int_of_float (Float.ceil (s ** float_of_int k)) in
      let edges = random_edges rng parts ~keep_prob:0.9 ~min_edges in
      QCheck.assume (List.length edges >= min_edges);
      match L5.verify ~s ~eps ~parts ~edges (L5.solve ~s ~eps ~parts ~edges) with
      | Ok () -> true
      | Error _ -> false)

let suite =
  ( "lemmas",
    [
      Alcotest.test_case "L4: single-vertex union" `Quick test_l4_single_vertex_union;
      Alcotest.test_case "L4: complete bipartite" `Quick test_l4_complete_bipartite;
      Alcotest.test_case "L4: intersection case" `Quick test_l4_intersection_case;
      Alcotest.test_case "L4: preconditions" `Quick test_l4_preconditions;
      Qc.to_alcotest prop_l4_random;
      Alcotest.test_case "L5: complete 2^3" `Quick test_l5_complete_small;
      Alcotest.test_case "L5: complete 3^4" `Quick test_l5_complete_larger;
      Alcotest.test_case "L5: edge-count precondition" `Quick test_l5_rejects_few_edges;
      Alcotest.test_case "L4: verifier rejects corrupt outcomes" `Quick
        test_l4_verify_rejects;
      Alcotest.test_case "L5: verifier rejects corrupt outcomes" `Quick
        test_l5_verify_rejects;
      Qc.to_alcotest prop_l5_random;
    ] )
