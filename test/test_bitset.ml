(* Tests for the flat mutable Bitset, including a differential qcheck
   property against Intset (the persistent set it must agree with). *)

module Bitset = Rme_util.Bitset
module Intset = Rme_util.Intset

let test_basic () =
  let s = Bitset.create ~capacity:64 in
  Alcotest.(check bool) "fresh empty" true (Bitset.is_empty s);
  Bitset.add s 0;
  Bitset.add s 31;
  Bitset.add s 32;
  Bitset.add s 63;
  Alcotest.(check int) "cardinal" 4 (Bitset.cardinal s);
  Alcotest.(check bool) "mem 31" true (Bitset.mem s 31);
  Alcotest.(check bool) "mem 30" false (Bitset.mem s 30);
  Bitset.remove s 31;
  Alcotest.(check bool) "removed" false (Bitset.mem s 31);
  Bitset.remove s 31;
  Alcotest.(check int) "double remove is a no-op" 3 (Bitset.cardinal s)

let test_growth () =
  let s = Bitset.create ~capacity:8 in
  Bitset.add s 1000;
  Alcotest.(check bool) "grown member" true (Bitset.mem s 1000);
  Alcotest.(check bool) "beyond capacity absent, not an error" false
    (Bitset.mem s 100_000);
  Alcotest.(check bool) "capacity covers it" true (Bitset.capacity s > 1000)

let test_iter_ascending () =
  let s = Bitset.create ~capacity:16 in
  List.iter (Bitset.add s) [ 40; 3; 97; 3; 0 ];
  let seen = ref [] in
  Bitset.iter (fun i -> seen := i :: !seen) s;
  Alcotest.(check (list int)) "ascending, deduplicated" [ 0; 3; 40; 97 ]
    (List.rev !seen);
  Alcotest.(check (list int)) "fold agrees with iter" [ 0; 3; 40; 97 ]
    (List.rev (Bitset.fold (fun i acc -> i :: acc) s []))

let test_clear () =
  let s = Bitset.create ~capacity:16 in
  List.iter (Bitset.add s) [ 1; 2; 3 ];
  Bitset.clear s;
  Alcotest.(check bool) "cleared" true (Bitset.is_empty s);
  Alcotest.(check int) "cardinal 0" 0 (Bitset.cardinal s)

let test_equal_across_capacities () =
  let a = Bitset.create ~capacity:8 and b = Bitset.create ~capacity:512 in
  Bitset.add a 5;
  Bitset.add b 5;
  Alcotest.(check bool) "equal despite capacities" true (Bitset.equal a b);
  Bitset.add b 300;
  Alcotest.(check bool) "unequal" false (Bitset.equal a b);
  Alcotest.(check bool) "unequal (flipped)" false (Bitset.equal b a)

let test_copy_into () =
  let src = Bitset.create ~capacity:8 in
  List.iter (Bitset.add src) [ 2; 70 ];
  let dst = Bitset.create ~capacity:8 in
  List.iter (Bitset.add dst) [ 1; 3; 200 ];
  Bitset.copy_into ~src ~dst;
  Alcotest.(check bool) "dst equals src" true (Bitset.equal src dst);
  Bitset.add dst 9;
  Alcotest.(check bool) "src unaffected" false (Bitset.mem src 9);
  let c = Bitset.copy src in
  Alcotest.(check bool) "copy equal" true (Bitset.equal src c);
  Bitset.add c 11;
  Alcotest.(check bool) "copy independent" false (Bitset.mem src 11)

(* Differential property: a random add/remove/clear trace leaves Bitset
   and Intset extensionally equal (via to_intset and cardinal). *)
let prop_matches_intset =
  QCheck.Test.make ~count:300 ~name:"bitset =~ intset under random traces"
    QCheck.(
      list_of_size Gen.(int_bound 200)
        (pair (int_range 0 2) (int_range 0 500)))
    (fun trace ->
      let b = Bitset.create ~capacity:4 in
      let s = ref Intset.empty in
      List.iter
        (fun (kind, i) ->
          match kind with
          | 0 ->
              Bitset.add b i;
              s := Intset.add i !s
          | 1 ->
              Bitset.remove b i;
              s := Intset.remove i !s
          | _ ->
              Bitset.clear b;
              s := Intset.empty)
        trace;
      Intset.equal (Bitset.to_intset b) !s
      && Bitset.cardinal b = Intset.cardinal !s)

let suite =
  ( "bitset",
    [
      Alcotest.test_case "basics" `Quick test_basic;
      Alcotest.test_case "growth on add" `Quick test_growth;
      Alcotest.test_case "iteration ascending" `Quick test_iter_ascending;
      Alcotest.test_case "clear" `Quick test_clear;
      Alcotest.test_case "equality across capacities" `Quick
        test_equal_across_capacities;
      Alcotest.test_case "copy and copy_into" `Quick test_copy_into;
      Qc.to_alcotest prop_matches_intset;
    ] )
