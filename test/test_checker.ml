(* Tests for the offline trace checker: it must agree with the live
   harness on every lock, every model, with and without crashes — and it
   must catch tampered traces (differential testing both ways). *)

module H = Rme_sim.Harness
module C = Rme_sim.Checker
module Trace = Rme_sim.Trace
module Rmr = Rme_memory.Rmr
module Op = Rme_memory.Op

let run ?(n = 6) ?(w = 16) ?(sp = 2) ?(crashes = H.No_crashes)
    ?(allow_cs_crash = false) model factory =
  H.run
    {
      (H.default_config ~n ~width:w model) with
      superpassages = sp;
      policy = H.Random_policy 37;
      crashes;
      allow_cs_crash;
      max_crashes_per_process = 3;
      record_trace = true;
    }
    factory

let assert_clean name r =
  match C.check_result r with
  | None -> Alcotest.failf "%s: no trace" name
  | Some rep ->
      if not (C.ok rep) then
        Alcotest.failf "%s: checker errors: %s" name
          (String.concat "; " rep.C.errors);
      Alcotest.(check bool) (name ^ ": steps checked") true (rep.C.steps_checked > 0)

let test_all_locks_validate () =
  List.iter
    (fun (factory : Rme_sim.Lock_intf.factory) ->
      List.iter
        (fun model ->
          let r = run model factory in
          Alcotest.(check bool) "harness ok" true r.H.ok;
          assert_clean
            (Printf.sprintf "%s %s" factory.Rme_sim.Lock_intf.name
               (Rmr.model_name model))
            r)
        Rmr.all_models)
    Rme_locks.Registry.all

let test_crashy_traces_validate () =
  List.iter
    (fun (factory : Rme_sim.Lock_intf.factory) ->
      List.iter
        (fun model ->
          let r =
            run ~sp:3
              ~crashes:(H.Crash_prob { prob = 0.05; seed = 91 })
              ~allow_cs_crash:true model factory
          in
          Alcotest.(check bool) "harness ok" true r.H.ok;
          assert_clean (factory.Rme_sim.Lock_intf.name ^ " crashy") r)
        Rmr.all_models)
    Rme_locks.Registry.recoverable

let test_system_crash_traces_validate () =
  let r =
    run ~sp:3
      ~crashes:(H.System_crash_script [ 8; 50 ])
      ~allow_cs_crash:true Rmr.Cc Rme_locks.Epoch_mcs.factory
  in
  Alcotest.(check bool) "harness ok" true r.H.ok;
  assert_clean "epoch-mcs system crashes" r

(* Tamper with a recorded trace: flip values, RMR flags, and inject a
   foreign CS step; the checker must object every time. *)
let tampered_copy r ~f =
  match r.H.trace with
  | None -> Alcotest.fail "no trace"
  | Some t ->
      let t' = Trace.create () in
      let i = ref 0 in
      Trace.iter
        (fun e ->
          Trace.record t' (f !i e);
          incr i)
        t;
      t'

let recheck r t =
  C.check
    ~n:(Array.length r.H.procs)
    ~width:(Rme_memory.Memory.width r.H.memory)
    ~model:r.H.model
    ~owner:(fun loc -> Rme_memory.Memory.owner r.H.memory loc)
    t

let test_tampered_value_caught () =
  let r = run Rmr.Cc Rme_locks.Mcs.factory in
  let t =
    tampered_copy r ~f:(fun i e ->
        match (i, e) with
        | 3, Trace.Step s -> Trace.Step { s with new_value = s.new_value + 1 }
        | _, e -> e)
  in
  Alcotest.(check bool) "caught" false (C.ok (recheck r t))

let test_tampered_rmr_caught () =
  let r = run Rmr.Dsm Rme_locks.Mcs.factory in
  let t =
    tampered_copy r ~f:(fun i e ->
        match (i, e) with
        | 2, Trace.Step s -> Trace.Step { s with rmr = not s.rmr }
        | _, e -> e)
  in
  Alcotest.(check bool) "caught" false (C.ok (recheck r t))

let test_injected_cs_step_caught () =
  (* Duplicate an existing CS step under a different pid right after the
     original: two processes inside the CS. *)
  let r = run Rmr.Cc Rme_locks.Ticket.factory in
  match r.H.trace with
  | None -> Alcotest.fail "no trace"
  | Some t ->
      let t' = Trace.create () in
      let injected = ref false in
      Trace.iter
        (fun e ->
          Trace.record t' e;
          match e with
          | Trace.Step ({ section = Trace.In_cs; pid; _ } as s) when not !injected ->
              injected := true;
              Trace.record t'
                (Trace.Step
                   { s with pid = (pid + 1) mod Array.length r.H.procs })
          | _ -> ())
        t;
      Alcotest.(check bool) "injected" true !injected;
      let rep = recheck r t' in
      Alcotest.(check bool) "caught" false (C.ok rep)

let test_report_counts () =
  let r = run Rmr.Cc Rme_locks.Tas.factory in
  match C.check_result r with
  | None -> Alcotest.fail "no trace"
  | Some rep ->
      Alcotest.(check bool) "events >= steps" true (rep.C.events >= rep.C.steps_checked);
      Alcotest.(check int) "steps = harness steps minus phase-only turns"
        rep.C.steps_checked
        (match r.H.trace with
        | Some t ->
            let c = ref 0 in
            Trace.iter (function Trace.Step _ -> incr c | Trace.Crash _ -> ()) t;
            !c
        | None -> -1)

let prop_checker_agrees =
  let locks = Array.of_list Rme_locks.Registry.all in
  QCheck.Test.make ~name:"offline checker validates every live trace" ~count:40
    QCheck.(triple (int_range 1 8) (int_range 0 10000) (int_range 0 1))
    (fun (n, seed, model_idx) ->
      let factory = locks.(seed mod Array.length locks) in
      let model = if model_idx = 0 then Rmr.Cc else Rmr.Dsm in
      QCheck.assume (Rme_sim.Lock_intf.supports factory ~n ~width:16);
      let r =
        H.run
          {
            (H.default_config ~n ~width:16 model) with
            superpassages = 2;
            policy = H.Random_policy seed;
            record_trace = true;
          }
          factory
      in
      r.H.ok
      && match C.check_result r with Some rep -> C.ok rep | None -> false)

(* Differential property: for random (lock, n, w, crash-prob, seed)
   configs, the live harness and the offline checker must agree — the
   trace validates, and in both cost models the RMR flags recorded in
   the trace sum to exactly the RMRs the harness charged. *)
let prop_differential_rmr_totals =
  let locks = Array.of_list Rme_locks.Registry.recoverable in
  QCheck.Test.make
    ~name:"random crashy configs: trace validates, trace RMRs = charged RMRs"
    ~count:30
    QCheck.(
      quad (int_range 2 6) (int_range 0 8) (int_range 0 25) (int_range 0 100000))
    (fun (n, w_jitter, prob_pct, seed) ->
      let factory = locks.(seed mod Array.length locks) in
      let width =
        min 62 (factory.Rme_sim.Lock_intf.min_width ~n + w_jitter)
      in
      QCheck.assume (Rme_sim.Lock_intf.supports factory ~n ~width);
      let prob = float_of_int prob_pct /. 100.0 in
      List.for_all
        (fun model ->
          let r =
            H.run
              {
                (H.default_config ~n ~width model) with
                superpassages = 2;
                policy = H.Random_policy seed;
                crashes =
                  (if prob = 0.0 then H.No_crashes
                   else H.Crash_prob { prob; seed = seed + 1 });
                allow_cs_crash = true;
                max_crashes_per_process = 3;
                record_trace = true;
              }
              factory
          in
          let checker_ok =
            match C.check_result r with Some rep -> C.ok rep | None -> false
          in
          let trace_rmrs =
            match r.H.trace with
            | None -> -1
            | Some t ->
                let c = ref 0 in
                Trace.iter
                  (function
                    | Trace.Step { rmr; _ } -> if rmr then incr c
                    | Trace.Crash _ -> ())
                  t;
                !c
          in
          let charged =
            Array.fold_left (fun acc (p : H.proc_stats) -> acc + p.H.total_rmrs) 0
              r.H.procs
          in
          r.H.ok && checker_ok && trace_rmrs = charged)
        Rmr.all_models)

let suite =
  ( "checker",
    [
      Alcotest.test_case "all locks validate" `Quick test_all_locks_validate;
      Alcotest.test_case "crashy traces validate" `Quick test_crashy_traces_validate;
      Alcotest.test_case "system-crash traces validate" `Quick
        test_system_crash_traces_validate;
      Alcotest.test_case "tampered value caught" `Quick test_tampered_value_caught;
      Alcotest.test_case "tampered RMR flag caught" `Quick test_tampered_rmr_caught;
      Alcotest.test_case "injected CS step caught" `Quick test_injected_cs_step_caught;
      Alcotest.test_case "report counts" `Quick test_report_counts;
      Qc.to_alcotest prop_checker_agrees;
      Qc.to_alcotest prop_differential_rmr_totals;
    ] )
