(* Resilience of long sweeps: CRC-32 vectors, fault-injection plumbing,
   per-cell budgets (a deliberately deadlocked lock is flagged, not
   hung), graceful interruption with checkpointing, and the headline
   guarantees — no committed store line is ever lost under injected
   faults, and a killed-and-resumed sweep reproduces the uninterrupted
   tables byte-identically. *)

module Crc32 = Rme_util.Crc32
module Fault = Rme_util.Fault
module Store = Rme_store.Store
module Record = Rme_store.Record
module Fsck = Rme_store.Fsck
module Engine = Rme_experiments.Engine
module H = Rme_sim.Harness
module Rmr = Rme_memory.Rmr
module Memory = Rme_memory.Memory
module Lock_intf = Rme_sim.Lock_intf
module Prog = Rme_sim.Prog

(* ---------------- scratch directories ---------------- *)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let dir_counter = ref 0

let with_dir f =
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "rme_resil_test_%d_%d" (Unix.getpid ()) !dir_counter)
  in
  rm_rf d;
  Sys.mkdir d 0o755;
  Fun.protect ~finally:(fun () -> rm_rf d) (fun () -> f d)

let fp = "0123456789abcdef0123456789abcdef"

(* Every test that arms faults or the interrupt flag must disarm them
   on the way out, pass or fail — global state leaking into the next
   test would be its own flakiness generator. *)
let with_clean_globals f =
  Fun.protect
    ~finally:(fun () ->
      Fault.set_spec None;
      Engine.clear_interrupt ())
    f

(* ---------------- CRC-32 ---------------- *)

let test_crc_vectors () =
  Alcotest.(check string) "IEEE check vector" "cbf43926"
    (Crc32.hex_of_string "123456789");
  Alcotest.(check int) "empty string" 0 (Crc32.string "");
  Alcotest.(check string) "8 hex digits, zero-padded" "00000000" (Crc32.to_hex 0);
  let s = "cell some-key := some-value" in
  let whole = Crc32.string s in
  let split = Crc32.update (Crc32.update 0 s 0 9) s 9 (String.length s - 9) in
  Alcotest.(check int) "incremental update = whole" whole split;
  Alcotest.(check int) "sub = string of substring"
    (Crc32.string "345")
    (Crc32.sub "12345678" ~pos:2 ~len:3);
  Alcotest.check_raises "bad bounds rejected"
    (Invalid_argument "Crc32.sub") (fun () ->
      ignore (Crc32.sub "abc" ~pos:2 ~len:5))

(* ---------------- fault-injection spec ---------------- *)

let test_fault_spec () =
  with_clean_globals (fun () ->
      Fault.set_spec (Some "counted:3,always,param-site:70");
      Alcotest.(check bool) "absent site never fires" false (Fault.fire "nope");
      Alcotest.(check bool) "absent site not armed" false (Fault.armed "nope");
      Alcotest.(check (list bool)) "counted fires exactly on the 3rd call"
        [ false; false; true; false; false ]
        (List.init 5 (fun _ -> Fault.fire "counted"));
      Alcotest.(check (list bool)) "bare name fires every call" [ true; true ]
        (List.init 2 (fun _ -> Fault.fire "always"));
      Alcotest.(check bool) "armed does not consume" true
        (Fault.armed "param-site" && Fault.armed "param-site");
      Alcotest.(check (option int)) "param read back" (Some 70)
        (Fault.param "param-site");
      Alcotest.(check (option int)) "bare site has no param" None
        (Fault.param "always");
      Fault.set_spec None;
      Alcotest.(check bool) "disarmed" false (Fault.fire "always"))

(* ---------------- budgets flag deadlocks ---------------- *)

(* A lock whose entry protocol spins on a fetch-and-add forever: the
   harness can never complete a passage, so only the budgets stand
   between a sweep and an infinite loop. *)
let deadlock_factory : Lock_intf.factory =
  {
    Lock_intf.name = "toy-deadlock";
    recoverable = false;
    min_width = (fun ~n:_ -> 1);
    make =
      (fun mem ~n:_ ->
        let cell = Memory.alloc mem ~init:0 in
        let rec churn () = Prog.bind (Prog.faa cell 1) (fun _ -> churn ()) in
        {
          Lock_intf.entry = (fun ~pid:_ -> Prog.bind (churn ()) Prog.return);
          exit = (fun ~pid:_ -> Prog.return ());
          recover = (fun ~pid:_ -> Prog.return Lock_intf.Resume_entry);
          system_epoch = None;
        });
  }

let test_step_budget_flags_deadlock () =
  (* S6 regression: the default budget formula must flag a deadlocked
     lock as timed out — never loop. *)
  Alcotest.(check int) "budget formula exposed" (20_000 + (4_000 * 2 * 2))
    (H.default_step_budget ~n:2);
  let cfg = H.default_config ~n:2 ~width:8 Rmr.Cc in
  let r = H.run cfg deadlock_factory in
  Alcotest.(check bool) "flagged timed out" true r.H.timed_out;
  Alcotest.(check bool) "not ok" false r.H.ok;
  Alcotest.(check int) "stopped at the budget" cfg.H.step_budget r.H.steps

let test_wall_clock_deadline () =
  let t0 = Unix.gettimeofday () in
  let cfg =
    {
      (H.default_config ~n:2 ~width:8 Rmr.Cc) with
      H.step_budget = 1_000_000_000;
      deadline = Some (t0 +. 0.05);
    }
  in
  let r = H.run cfg deadlock_factory in
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "deadline cuts the run" true r.H.timed_out;
  Alcotest.(check bool) "and does so promptly" true (dt < 10.0)

let toy_cell = Engine.cell ~seed:1 ~n:2 ~width:8 ~model:Rmr.Cc deadlock_factory

let test_engine_records_and_retries_timeouts () =
  with_dir (fun d ->
      (* A budgeted engine records an explicit timed-out result... *)
      let e1 = Engine.create ~jobs:1 ~cache_dir:d ~step_budget:2_000 () in
      let r1 = Engine.get e1 toy_cell in
      Engine.shutdown e1;
      Alcotest.(check bool) "timed out recorded" true r1.Engine.timed_out;
      (* ... the flag round-trips through the store ... *)
      let s = Store.open_ ~dir:d ~fingerprint:(Engine.code_fingerprint ()) in
      (match
         Store.find s ~section:"cell" (Engine.cell_key_string toy_cell)
       with
      | None -> Alcotest.fail "timed-out result not persisted"
      | Some v -> (
          match Engine.cell_result_decode v with
          | Some r -> Alcotest.(check bool) "to= flag on disk" true r.Engine.timed_out
          | None -> Alcotest.fail "stored result undecodable"));
      (* ... a plain rerun serves it from disk without recomputing ... *)
      let e2 = Engine.create ~jobs:1 ~cache_dir:d ~step_budget:2_000 () in
      ignore (Engine.get e2 toy_cell);
      let c2 = Engine.counters e2 in
      Engine.shutdown e2;
      Alcotest.(check int) "served from disk" 1 c2.Engine.disk;
      Alcotest.(check int) "not recomputed" 0 c2.Engine.computed;
      (* ... and a resume-mode engine retries it with escalated budgets. *)
      let e3 =
        Engine.create ~jobs:1 ~cache_dir:d ~step_budget:2_000
          ~retry_timed_out:true ~escalation:2.0 ()
      in
      let r3 = Engine.get e3 toy_cell in
      let c3 = Engine.counters e3 in
      Engine.shutdown e3;
      Alcotest.(check int) "retried, not served stale" 1 c3.Engine.computed;
      Alcotest.(check int) "disk hit skipped" 0 c3.Engine.disk;
      Alcotest.(check bool) "still flagged (a true deadlock)" true
        r3.Engine.timed_out)

(* ---------------- store faults lose nothing committed ---------------- *)

let test_store_eio_keeps_committed_lines () =
  with_clean_globals (fun () ->
      with_dir (fun d ->
          let s = Store.open_ ~dir:d ~fingerprint:fp in
          Store.add s ~section:"cell" ~key:"k1" ~value:"v1";
          Store.flush s;
          Store.add s ~section:"cell" ~key:"k2" ~value:"v2";
          Fault.set_spec (Some "store-eio");
          (match Store.flush s with
          | () -> Alcotest.fail "flush should have failed with EIO"
          | exception Sys_error _ -> ());
          (* The failed flush destroyed nothing already on disk... *)
          let s2 = Store.open_ ~dir:d ~fingerprint:fp in
          Alcotest.(check bool) "committed line intact" true
            (Store.find s2 ~section:"cell" "k1" = Some "v1");
          (* ... and the pending entry is still buffered: the next
             healthy flush commits it. *)
          Fault.set_spec None;
          Store.flush s;
          let s3 = Store.open_ ~dir:d ~fingerprint:fp in
          Alcotest.(check bool) "pending entry survives the fault" true
            (Store.find s3 ~section:"cell" "k2" = Some "v2")))

let test_store_rename_eio_keeps_committed_lines () =
  with_clean_globals (fun () ->
      with_dir (fun d ->
          let s = Store.open_ ~dir:d ~fingerprint:fp in
          Store.add s ~section:"cell" ~key:"k1" ~value:"v1";
          Store.flush s;
          Store.add s ~section:"cell" ~key:"k2" ~value:"v2";
          Fault.set_spec (Some "store-rename-eio");
          (match Store.flush s with
          | () -> Alcotest.fail "flush should have failed before rename"
          | exception Sys_error _ -> ());
          Fault.set_spec None;
          (* The atomic-rename discipline means the fault left no torn
             shard behind — only the healthy previous generation. *)
          let s2 = Store.open_ ~dir:d ~fingerprint:fp in
          Alcotest.(check int) "no quarantine, no tear" 0
            (Store.stats s2).Store.quarantined;
          Alcotest.(check bool) "committed line intact" true
            (Store.find s2 ~section:"cell" "k1" = Some "v1")))

(* ---------------- v1 shards still load ---------------- *)

let test_v1_shard_compat () =
  with_dir (fun d ->
      let path = Filename.concat d "shard-legacy-0.rme" in
      let oc = open_out path in
      Printf.fprintf oc "# rme-store 1 %s\ncell old-key := old-value\n" fp;
      close_out oc;
      let s = Store.open_ ~dir:d ~fingerprint:fp in
      Alcotest.(check bool) "pre-CRC line served" true
        (Store.find s ~section:"cell" "old-key" = Some "old-value");
      Alcotest.(check int) "nothing quarantined" 0 (Store.stats s).Store.quarantined;
      (* A v2 rewrite of the same directory re-persists it with CRCs. *)
      Store.add s ~section:"cell" ~key:"new-key" ~value:"new-value";
      Store.flush s;
      let r = Fsck.scan ~dir:d ~fingerprint:fp in
      Alcotest.(check int) "both shards readable" 2 r.Fsck.clean)

(* ---------------- fsck: scan / repair / compact ---------------- *)

(* A zoo with one shard of every class. Entry keys are distinct so the
   surviving population is checkable exactly. *)
let build_zoo d =
  let write name lines =
    let oc = open_out (Filename.concat d name) in
    List.iter (fun l -> output_string oc (l ^ "\n")) lines;
    close_out oc
  in
  let line k v = Record.encode_line ~section:"cell" ~key:k ~value:v in
  let hdr = Record.header ~fingerprint:fp in
  write "shard-clean-0.rme" [ hdr; line "c1" "v"; line "c2" "v" ];
  write "shard-v1-0.rme"
    [ Printf.sprintf "# rme-store 1 %s" fp; "cell o1 := v" ];
  write "shard-stale-0.rme"
    [ Record.header ~fingerprint:"ffffffffffffffffffffffffffffffff"; line "s1" "v" ];
  (* Torn: valid prefix, then an unterminated half line at EOF. *)
  let torn = Filename.concat d "shard-torn-0.rme" in
  let oc = open_out torn in
  output_string oc (hdr ^ "\n" ^ line "t1" "v" ^ "\n" ^ line "t2" "v" ^ "\n");
  output_string oc (String.sub (line "t3" "v") 0 8);
  close_out oc;
  (* Corrupt: a bit-flip in the middle line of three. *)
  let l2 = Bytes.of_string (line "m2" "v") in
  Bytes.set l2 6 'X';
  write "shard-corrupt-0.rme"
    [ hdr; line "m1" "v"; Bytes.to_string l2; line "m3" "v" ];
  write "shard-junk-0.rme" [ "\x00\x01 not a shard at all" ]

let test_fsck_scan_classifies () =
  with_dir (fun d ->
      build_zoo d;
      let r = Fsck.scan ~dir:d ~fingerprint:fp in
      Alcotest.(check int) "scanned" 6 r.Fsck.scanned;
      Alcotest.(check int) "clean (v2 + v1)" 2 r.Fsck.clean;
      Alcotest.(check int) "stale" 1 r.Fsck.stale;
      Alcotest.(check int) "torn" 1 r.Fsck.torn;
      Alcotest.(check int) "corrupt" 1 r.Fsck.corrupt;
      Alcotest.(check int) "unreadable" 1 r.Fsck.unreadable;
      Alcotest.(check int) "intact entries" 7 r.Fsck.entries;
      Alcotest.(check int) "lost lines" 2 r.Fsck.lost_lines;
      (* Scan is read-only: the zoo is untouched. *)
      Alcotest.(check int) "nothing quarantined" 0
        (let q = Filename.concat d "quarantine" in
         if Sys.file_exists q then Array.length (Sys.readdir q) else 0))

let test_fsck_repair_heals_and_salvages () =
  with_dir (fun d ->
      build_zoo d;
      let r = Fsck.repair ~dir:d ~fingerprint:fp in
      Alcotest.(check int) "torn shard healed in place" 1 r.Fsck.healed;
      Alcotest.(check int) "corrupt + junk quarantined" 2 r.Fsck.quarantined;
      Alcotest.(check int) "good lines salvaged out of the corrupt shard" 2
        r.Fsck.salvaged;
      (* Post-repair, the directory is wholly clean... *)
      let r2 = Fsck.scan ~dir:d ~fingerprint:fp in
      Alcotest.(check int) "no torn left" 0 r2.Fsck.torn;
      Alcotest.(check int) "no corrupt left" 0 r2.Fsck.corrupt;
      Alcotest.(check int) "no unreadable left" 0 r2.Fsck.unreadable;
      Alcotest.(check int) "entries preserved" 7 r2.Fsck.entries;
      (* ... and the store serves exactly the intact population. *)
      let s = Store.open_ ~dir:d ~fingerprint:fp in
      let have k = Store.find s ~section:"cell" k <> None in
      List.iter
        (fun k -> Alcotest.(check bool) (k ^ " survives") true (have k))
        [ "c1"; "c2"; "o1"; "t1"; "t2"; "m1"; "m3" ];
      List.iter
        (fun k -> Alcotest.(check bool) (k ^ " gone") false (have k))
        [ "t3"; "m2"; "s1" ])

let test_fsck_compact_merges () =
  with_dir (fun d ->
      build_zoo d;
      let merged, entries = Fsck.compact ~dir:d ~fingerprint:fp in
      Alcotest.(check bool) "several shards merged" true (merged >= 2);
      Alcotest.(check int) "all intact entries written" 7 entries;
      let r = Fsck.scan ~dir:d ~fingerprint:fp in
      Alcotest.(check int) "one clean shard remains" 1 r.Fsck.clean;
      Alcotest.(check int) "stale shard left alone" 1 r.Fsck.stale;
      Alcotest.(check int) "entries preserved" 7 r.Fsck.entries;
      let s = Store.open_ ~dir:d ~fingerprint:fp in
      Alcotest.(check bool) "salvaged entry survives the merge" true
        (Store.find s ~section:"cell" "m3" = Some "v"))

(* ---------------- graceful interruption, in process ---------------- *)

let sweep_cells =
  (* A small two-lock sweep of registry locks (so fingerprints match
     across processes), big enough for mid-sweep interruption. *)
  List.concat_map
    (fun lock ->
      List.map
        (fun seed -> Engine.cell ~seed ~n:4 ~width:16 ~model:Rmr.Cc lock)
        [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ])
    [ Rme_locks.Tas.factory; Rme_locks.Mcs.factory ]

let digest_of e =
  String.concat ";"
    (List.map
       (fun c ->
         let r = Engine.get e c in
         Printf.sprintf "%s=%d/%d/%d"
           (Engine.cell_key_string c)
           r.Engine.max_passage_rmr r.Engine.total_rmrs r.Engine.cs_entries)
       sweep_cells)

let reference_digest =
  lazy
    (let e = Engine.create ~jobs:1 () in
     let d = digest_of e in
     Engine.shutdown e;
     d)

let test_interrupt_checkpoints_and_resumes () =
  with_clean_globals (fun () ->
      with_dir (fun d ->
          let half, rest =
            ( List.filteri (fun i _ -> i < 10) sweep_cells,
              List.filteri (fun i _ -> i >= 10) sweep_cells )
          in
          let e = Engine.create ~jobs:2 ~cache_dir:d ~label:"interrupt-test" () in
          Engine.prefetch e half;
          Engine.request_interrupt ();
          (match Engine.prefetch e rest with
          | () -> Alcotest.fail "interrupted prefetch should raise"
          | exception Engine.Interrupted -> ());
          (* The checkpoint wrote an interrupted manifest... *)
          (match Engine.load_manifest ~dir:d with
          | None -> Alcotest.fail "no manifest after interrupt"
          | Some m ->
              Alcotest.(check bool) "manifest flagged interrupted" true
                m.Engine.m_interrupted;
              Alcotest.(check string) "label recorded" "interrupt-test"
                m.Engine.m_label;
              Alcotest.(check bool) "committed cells recorded" true
                (m.Engine.m_done >= 10));
          (* ... and everything committed before the interrupt is on
             disk: a fresh engine over the directory completes the sweep
             with the first half served from disk, byte-identically. *)
          Engine.clear_interrupt ();
          Engine.shutdown e;
          let e2 = Engine.create ~jobs:2 ~cache_dir:d () in
          Engine.prefetch e2 sweep_cells;
          let dg = digest_of e2 in
          let c = Engine.counters e2 in
          Engine.shutdown e2;
          Alcotest.(check string) "resumed tables byte-identical"
            (Lazy.force reference_digest) dg;
          Alcotest.(check bool) "first half came from disk" true
            (c.Engine.disk >= 10);
          (match Engine.load_manifest ~dir:d with
          | None -> Alcotest.fail "no manifest after resume"
          | Some m ->
              Alcotest.(check bool) "manifest cleared" false
                m.Engine.m_interrupted)))

(* ---------------- kill-and-resume, across processes ---------------- *)

(* The [__rme_sweep__] child (see test_main.ml): run [sweep_cells]
   through a store-backed engine, autosaving after every cell. The
   parent injects faults or signals and then resumes over the same
   directory in-process. *)
let sweep_main () =
  Engine.install_interrupt_handlers ();
  let dir = Sys.argv.(2) in
  let e = Engine.create ~jobs:1 ~cache_dir:dir ~autosave_cells:1 ~label:"child" () in
  match Engine.prefetch e sweep_cells with
  | () ->
      Engine.shutdown e;
      exit 0
  | exception Engine.Interrupted -> exit Engine.exit_interrupted

let spawn_sweep ~env_fault dir =
  let env =
    Array.append (Unix.environment ())
      (match env_fault with Some f -> [| "RME_FAULT=" ^ f |] | None -> [||])
  in
  Unix.create_process_env Sys.executable_name
    [| Sys.executable_name; "__rme_sweep__"; dir |]
    env Unix.stdin Unix.stdout Unix.stderr

let wait_code pid =
  match snd (Unix.waitpid [] pid) with
  | Unix.WEXITED c -> c
  | Unix.WSIGNALED s -> 128 + s
  | Unix.WSTOPPED s -> 256 + s

let resume_and_check d ~expect_disk =
  let e = Engine.create ~jobs:2 ~cache_dir:d () in
  Engine.prefetch e sweep_cells;
  let dg = digest_of e in
  let c = Engine.counters e in
  Engine.shutdown e;
  Alcotest.(check string) "resumed tables byte-identical"
    (Lazy.force reference_digest) dg;
  if expect_disk then
    Alcotest.(check bool) "resume reused committed cells" true (c.Engine.disk > 0)

let test_crash_after_flush_resumes () =
  with_dir (fun d ->
      (* The child dies with exit 70 right after its 3rd store flush —
         the published shard generation must be complete and a resume
         must reproduce the reference tables exactly. *)
      let code = wait_code (spawn_sweep ~env_fault:(Some "crash-after-flush:3") d) in
      Alcotest.(check int) "child crashed where injected" 70 code;
      let r = Fsck.scan ~dir:d ~fingerprint:(Engine.code_fingerprint ()) in
      Alcotest.(check int) "no torn shard behind the crash" 0
        (r.Fsck.torn + r.Fsck.corrupt + r.Fsck.unreadable);
      Alcotest.(check bool) "committed cells present" true (r.Fsck.entries >= 3);
      resume_and_check d ~expect_disk:true)

let test_sigint_mid_sweep_resumes () =
  with_dir (fun d ->
      (* Slow each cell down so the signal lands mid-sweep; exit 75
         (stopped at a checkpoint) or 0 (sweep won the race) are both
         legitimate, anything else is a broken shutdown path. *)
      let pid = spawn_sweep ~env_fault:(Some "slow-cell:30") d in
      Unix.sleepf 0.3;
      (try Unix.kill pid Sys.sigint with Unix.Unix_error _ -> ());
      let code = wait_code pid in
      Alcotest.(check bool)
        (Printf.sprintf "clean interrupt exit (got %d)" code)
        true
        (code = Engine.exit_interrupted || code = 0);
      resume_and_check d ~expect_disk:(code = 0 || code = Engine.exit_interrupted))

let suite =
  ( "resilience",
    [
      Alcotest.test_case "crc32: vectors and incremental update" `Quick
        test_crc_vectors;
      Alcotest.test_case "fault: spec parsing, counted fire, params" `Quick
        test_fault_spec;
      Alcotest.test_case "harness: step budget flags a deadlocked lock" `Quick
        test_step_budget_flags_deadlock;
      Alcotest.test_case "harness: wall-clock deadline cuts a deadlock" `Quick
        test_wall_clock_deadline;
      Alcotest.test_case "engine: timeouts recorded, retried on resume" `Quick
        test_engine_records_and_retries_timeouts;
      Alcotest.test_case "store: EIO on flush loses no committed line" `Quick
        test_store_eio_keeps_committed_lines;
      Alcotest.test_case "store: EIO on rename leaves no torn shard" `Quick
        test_store_rename_eio_keeps_committed_lines;
      Alcotest.test_case "store: v1 (pre-CRC) shards still load" `Quick
        test_v1_shard_compat;
      Alcotest.test_case "fsck: scan classifies the zoo" `Quick
        test_fsck_scan_classifies;
      Alcotest.test_case "fsck: repair heals, quarantines, salvages" `Quick
        test_fsck_repair_heals_and_salvages;
      Alcotest.test_case "fsck: compact merges clean shards" `Quick
        test_fsck_compact_merges;
      Alcotest.test_case "engine: interrupt checkpoints, resume completes" `Quick
        test_interrupt_checkpoints_and_resumes;
      Alcotest.test_case "process: crash-after-flush, resume byte-identical"
        `Quick test_crash_after_flush_resumes;
      Alcotest.test_case "process: SIGINT mid-sweep, resume byte-identical"
        `Quick test_sigint_mid_sweep_resumes;
    ] )
