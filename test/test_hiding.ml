(* Tests for the Process-Hiding Lemma, including a run with the paper's
   exact constants (ell = 1, delta = 1: binary-valued objects, groups of
   108, 27^4 tuples per group) and adversarially-chosen discovery sets. *)

module Hiding = Rme_core.Hiding
module Intset = Rme_util.Intset
module Splitmix = Rme_util.Splitmix
module Bitword = Rme_util.Bitword

(* Operation families as f_y functions on tuples (step order = tuple
   order). *)
let f_fas ~y e = if Array.length e = 0 then y else e.(Array.length e - 1) mod 2
let f_or ~y e = Array.fold_left (fun acc p -> acc lor (1 lsl (p mod 2))) y e

let f_faa ~width ~y e =
  Array.fold_left (fun acc p -> Bitword.add ~width acc (1 + (p mod 3))) y e

let f_parity ~y e = Array.fold_left (fun acc p -> acc lxor (p land 1)) y e

let groups_for p m =
  let g = Hiding.min_group_size p in
  Array.init m (fun i -> Array.init g (fun j -> (i * (g + 7)) + j))

let test_paper_params_values () =
  let p = Hiding.paper_params ~ell:1 ~delta:1.0 in
  Alcotest.(check int) "k = 4ell" 4 p.Hiding.k;
  Alcotest.(check int) "subgroup = 27" 27 p.Hiding.subgroup_size;
  Alcotest.(check int) "group size 108" 108 (Hiding.min_group_size p);
  Alcotest.(check (float 1e-9)) "s" 22.5 p.Hiding.s;
  (match Hiding.check_params p with
  | Ok () -> ()
  | Error m -> Alcotest.failf "paper params rejected: %s" m);
  let p2 = Hiding.paper_params ~ell:2 ~delta:1.5 in
  Alcotest.(check int) "k = 8" 8 p2.Hiding.k;
  Alcotest.(check int) "subgroup = 81" 81 p2.Hiding.subgroup_size;
  match Hiding.check_params p2 with
  | Ok () -> ()
  | Error m -> Alcotest.failf "ell=2 params rejected: %s" m

let test_param_validation () =
  Alcotest.(check bool) "ell 0 rejected" true
    (try
       ignore (Hiding.paper_params ~ell:0 ~delta:1.0);
       false
     with Invalid_argument _ -> true);
  let p = Hiding.paper_params ~ell:1 ~delta:1.0 in
  Alcotest.(check bool) "weak margin rejected" true
    (match Hiding.check_params { p with subgroup_size = 5; s = 5.0 /. 1.2 } with
    | Error _ -> true
    | Ok () -> false)

let solve_and_verify ?(m = 3) p f =
  let groups = groups_for p m in
  let t = Hiding.solve p ~groups ~f ~y0:0 in
  (match Hiding.verify t ~f with
  | Ok () -> ()
  | Error e -> Alcotest.failf "verify failed: %s" e);
  (t, groups)

(* Paper constants with three operation families. The FAS family is the
   one the Chan–Woelfel lower bound handles; OR is the Katzan–Morrison
   bit-setting pattern at width 1; parity is a genuinely arbitrary op. *)
let test_solve_paper_constants () =
  let p = Hiding.paper_params ~ell:1 ~delta:1.0 in
  List.iter
    (fun (name, f) ->
      let t, groups = solve_and_verify p f in
      Alcotest.(check int) (name ^ ": all groups solved") 3 (Array.length t.Hiding.groups);
      (* Adversarial D within budget: hit as many V-complements as possible. *)
      let v = Hiding.all_v t in
      let budget = int_of_float (p.Hiding.delta *. float_of_int (Intset.cardinal v)) in
      let rng = Splitmix.create 4242 in
      let pool = Array.concat (Array.to_list groups) in
      Splitmix.shuffle rng pool;
      let d =
        Array.sub pool 0 (min budget (Array.length pool))
        |> Array.fold_left (fun acc x -> Intset.add x acc) Intset.empty
      in
      let hs = Hiding.query t ~d in
      Alcotest.(check bool) (name ^ ": |I_D| >= m/2") true (2 * List.length hs >= 3);
      match Hiding.verify_query t ~f ~d hs with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: query verify failed: %s" name e)
    [ ("fas", f_fas); ("or", f_or); ("faa-w1", f_faa ~width:1); ("parity", f_parity) ]

(* Target one group's hidden-candidate pool explicitly: the lemma must
   still hand back at least m/2 groups. *)
let test_targeted_discovery () =
  let p = Hiding.paper_params ~ell:1 ~delta:1.0 in
  let t, _groups = solve_and_verify ~m:4 (p : Hiding.params) f_fas in
  let g0 = t.Hiding.groups.(0) in
  (* Discover all of group 0's candidates: U_0 minus V_0. *)
  let d = Intset.diff g0.Hiding.u g0.Hiding.v in
  let budget =
    p.Hiding.delta *. float_of_int (Intset.cardinal (Hiding.all_v t))
  in
  if float_of_int (Intset.cardinal d) <= budget then begin
    let hs = Hiding.query t ~d in
    Alcotest.(check bool) "group 0 yields no hidden process" true
      (not (List.exists (fun h -> h.Hiding.index = 0) hs));
    Alcotest.(check bool) "|I_D| >= m/2" true (2 * List.length hs >= 4);
    match Hiding.verify_query t ~f:f_fas ~d hs with
    | Ok () -> ()
    | Error e -> Alcotest.failf "query verify failed: %s" e
  end

let test_empty_discovery () =
  let p = Hiding.paper_params ~ell:1 ~delta:1.0 in
  let t, _ = solve_and_verify p f_or in
  let hs = Hiding.query t ~d:Intset.empty in
  Alcotest.(check int) "every group yields a hidden process" 3 (List.length hs);
  List.iter
    (fun h ->
      let g = t.Hiding.groups.(h.Hiding.index) in
      Alcotest.(check bool) "z outside V" true (not (Intset.mem h.Hiding.z g.Hiding.v));
      Alcotest.(check bool) "B inside V" true
        (Array.for_all (fun b -> Intset.mem b g.Hiding.v) h.Hiding.b))
    hs

let test_value_chaining () =
  (* y_i must chain: f_{y_{i-1}}(A_i) = y_i, verified via y_after. *)
  let p = Hiding.paper_params ~ell:1 ~delta:1.0 in
  let t, _ = solve_and_verify p f_parity in
  Array.iteri
    (fun i g ->
      let y_prev = Hiding.y_after t i in
      Alcotest.(check int)
        (Printf.sprintf "group %d chains" i)
        g.Hiding.y
        (f_parity ~y:y_prev g.Hiding.a))
    t.Hiding.groups

let test_group_too_small () =
  let p = Hiding.paper_params ~ell:1 ~delta:1.0 in
  let groups = [| Array.init 50 (fun i -> i) |] in
  Alcotest.(check bool) "small group rejected" true
    (try
       ignore (Hiding.solve p ~groups ~f:f_fas ~y0:0);
       false
     with Invalid_argument _ -> true)

(* Solve once; the property then varies only the discovery set. *)
let shared_solution =
  lazy
    (let p = Hiding.paper_params ~ell:1 ~delta:1.0 in
     let groups = groups_for p 3 in
     let t = Hiding.solve p ~groups ~f:f_fas ~y0:0 in
     (p, groups, t))

let prop_random_discovery_sets =
  (* For random within-budget D, the guarantees always hold. *)
  QCheck.Test.make ~name:"hiding query verifies for random D" ~count:50
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let p, groups, t = Lazy.force shared_solution in
      let v = Hiding.all_v t in
      let budget = int_of_float (p.Hiding.delta *. float_of_int (Intset.cardinal v)) in
      let rng = Splitmix.create seed in
      let pool = Array.concat (Array.to_list groups) in
      Splitmix.shuffle rng pool;
      let d =
        Array.sub pool 0 (Splitmix.int rng (budget + 1))
        |> Array.fold_left (fun acc x -> Intset.add x acc) Intset.empty
      in
      let hs = Hiding.query t ~d in
      2 * List.length hs >= 3 && Hiding.verify_query t ~f:f_fas ~d hs = Ok ())

let suite =
  ( "hiding",
    [
      Alcotest.test_case "paper constants" `Quick test_paper_params_values;
      Alcotest.test_case "parameter validation" `Quick test_param_validation;
      Alcotest.test_case "solve with paper constants (4 op families)" `Slow
        test_solve_paper_constants;
      Alcotest.test_case "targeted discovery set" `Slow test_targeted_discovery;
      Alcotest.test_case "empty discovery set" `Slow test_empty_discovery;
      Alcotest.test_case "value chaining" `Slow test_value_chaining;
      Alcotest.test_case "undersized group rejected" `Quick test_group_too_small;
      Qc.to_alcotest prop_random_discovery_sets;
    ] )
