(* Smoke tests for the rme CLI: drive the cmdliner terms in-process
   (Cli.eval ~argv) and check exit codes and output shape, including
   the -j flag of the experiment subcommand. *)

module Cli = Rme_cli.Cli

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec loop i = i + nl <= hl && (String.sub haystack i nl = needle || loop (i + 1)) in
  loop 0

(* Run [f] with stdout redirected to a temp file; return (result, output). *)
let capture_stdout f =
  let file, oc = Filename.open_temp_file "rme_cli_test" ".out" in
  close_out oc;
  flush stdout;
  let saved = Unix.dup Unix.stdout in
  let fd = Unix.openfile file [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  Unix.dup2 fd Unix.stdout;
  Unix.close fd;
  let restore () =
    flush stdout;
    Unix.dup2 saved Unix.stdout;
    Unix.close saved
  in
  let v = Fun.protect ~finally:restore f in
  let ic = open_in_bin file in
  let len = in_channel_length ic in
  let out = really_input_string ic len in
  close_in ic;
  Sys.remove file;
  (v, out)

let eval args = capture_stdout (fun () -> Cli.eval ~argv:(Array.of_list ("rme" :: args)) ())

let test_locks () =
  let code, out = eval [ "locks" ] in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "lists km" true (contains ~needle:"katzan-morrison" out);
  Alcotest.(check bool) "lists mcs" true (contains ~needle:"mcs" out)

let test_simulate () =
  let code, out = eval [ "simulate"; "--lock"; "mcs"; "-n"; "4" ] in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "reports ok" true (contains ~needle:"ok=true" out)

let test_adversary () =
  let code, out = eval [ "adversary"; "--lock"; "rcas"; "-n"; "32"; "--width"; "8" ] in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "reports rounds" true (contains ~needle:"rounds=" out)

let test_experiment_e1_parallel () =
  let code, out = eval [ "experiment"; "e1"; "-j"; "2" ] in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "prints the E1 table" true (contains ~needle:"E1" out);
  Alcotest.(check bool) "prints rows" true (contains ~needle:"katzan-morrison" out);
  Alcotest.(check bool) "prints counters" true (contains ~needle:"cells:" out);
  Alcotest.(check bool) "reports j=2" true (contains ~needle:"j=2" out)

let test_unknown_lock_rejected () =
  let code, _ = eval [ "simulate"; "--lock"; "nope" ] in
  Alcotest.(check bool) "non-zero exit" true (code <> 0)

let suite =
  ( "cli",
    [
      Alcotest.test_case "locks" `Quick test_locks;
      Alcotest.test_case "simulate" `Quick test_simulate;
      Alcotest.test_case "adversary" `Quick test_adversary;
      Alcotest.test_case "experiment e1 -j 2" `Quick test_experiment_e1_parallel;
      Alcotest.test_case "unknown lock rejected" `Quick test_unknown_lock_rejected;
    ] )
