module B = Rme_util.Bitword

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_mask () =
  check_int "mask 1" 1 (B.mask 1);
  check_int "mask 4" 15 (B.mask 4);
  check_int "mask 8" 255 (B.mask 8);
  check_int "mask 62" max_int (B.mask 62)

let test_mask_invalid () =
  Alcotest.check_raises "width 0" (Invalid_argument "Bitword: width 0 out of range [1, 62]")
    (fun () -> ignore (B.mask 0));
  Alcotest.check_raises "width 63" (Invalid_argument "Bitword: width 63 out of range [1, 62]")
    (fun () -> ignore (B.mask 63))

let test_truncate () =
  check_int "in range" 5 (B.truncate ~width:4 5);
  check_int "wraps" 1 (B.truncate ~width:4 17);
  check_int "negative is two's complement" 15 (B.truncate ~width:4 (-1));
  check_int "zero" 0 (B.truncate ~width:8 256)

let test_domain_size () =
  check_int "2^1" 2 (B.domain_size 1);
  check_int "2^10" 1024 (B.domain_size 10)

let test_add_wraps () =
  check_int "no wrap" 7 (B.add ~width:4 3 4);
  check_int "wrap" 1 (B.add ~width:4 15 2);
  check_int "negative operand" 14 (B.add ~width:4 0 (-2));
  check_int "full cycle" 5 (B.add ~width:8 5 256)

let test_bits () =
  check_bool "bit 0 of 5" true (B.test_bit 5 0);
  check_bool "bit 1 of 5" false (B.test_bit 5 1);
  check_bool "bit 2 of 5" true (B.test_bit 5 2);
  check_int "set" 7 (B.set_bit 5 1);
  check_int "set idempotent" 5 (B.set_bit 5 0);
  check_int "clear" 4 (B.clear_bit 5 0);
  check_int "clear idempotent" 5 (B.clear_bit 5 1)

let test_popcount () =
  check_int "0" 0 (B.popcount 0);
  check_int "5" 2 (B.popcount 5);
  check_int "255" 8 (B.popcount 255)

let test_lowest_set_bit () =
  Alcotest.(check (option int)) "0" None (B.lowest_set_bit 0);
  Alcotest.(check (option int)) "8" (Some 3) (B.lowest_set_bit 8);
  Alcotest.(check (option int)) "6" (Some 1) (B.lowest_set_bit 6)

let test_bits_list () =
  Alcotest.(check (list int)) "13" [ 0; 2; 3 ] (B.bits 13);
  Alcotest.(check (list int)) "0" [] (B.bits 0)

let test_bits_needed () =
  check_int "0" 0 (B.bits_needed 0);
  check_int "1" 1 (B.bits_needed 1);
  check_int "2" 1 (B.bits_needed 2);
  check_int "3" 2 (B.bits_needed 3);
  check_int "256" 8 (B.bits_needed 256);
  check_int "257" 9 (B.bits_needed 257)

let test_pp () =
  Alcotest.(check string) "5 at width 4" "0101" (Format.asprintf "%a" (B.pp ~width:4) 5)

(* Edge widths: the narrowest word the model admits and the widest one
   an OCaml int can host (62 bits; 63 is out of range). *)
let test_width_one () =
  check_int "domain is {0,1}" 2 (B.domain_size 1);
  check_int "1+1 wraps to 0" 0 (B.add ~width:1 1 1);
  check_int "truncate odd" 1 (B.truncate ~width:1 17);
  check_int "truncate even" 0 (B.truncate ~width:1 16);
  check_int "-1 is 1" 1 (B.truncate ~width:1 (-1));
  (* fetch-and-add through the op algebra at w=1: a mod-2 counter. *)
  let module Op = Rme_memory.Op in
  check_int "faa 1 from 1 wraps" 0 (Op.next_value ~width:1 (Op.Faa 1) 1);
  check_int "faa 3 from 0 wraps" 1 (Op.next_value ~width:1 (Op.Faa 3) 0);
  check_int "faa -1 from 0 wraps" 1 (Op.next_value ~width:1 (Op.Faa (-1)) 0)

let test_width_max () =
  check_int "mask 62 is max_int" max_int (B.mask 62);
  check_int "max_int + 1 wraps to 0" 0 (B.add ~width:62 max_int 1);
  check_int "max_int + 2 wraps to 1" 1 (B.add ~width:62 max_int 2);
  check_int "truncate is identity below 2^62" 123456789 (B.truncate ~width:62 123456789);
  let module Op = Rme_memory.Op in
  check_int "faa wraps at the word boundary" 0
    (Op.next_value ~width:62 (Op.Faa 1) max_int);
  Alcotest.check_raises "width 63 faa rejected"
    (Invalid_argument "Bitword: width 63 out of range [1, 62]") (fun () ->
      ignore (Op.next_value ~width:63 (Op.Faa 1) 0))

let prop_truncate_idempotent =
  QCheck.Test.make ~name:"truncate is idempotent"
    QCheck.(pair (int_range 1 62) (int_bound max_int))
    (fun (w, v) -> B.truncate ~width:w (B.truncate ~width:w v) = B.truncate ~width:w v)

let prop_add_assoc =
  QCheck.Test.make ~name:"wrapping add is associative"
    QCheck.(quad (int_range 1 30) small_nat small_nat small_nat)
    (fun (w, a, b, c) ->
      B.add ~width:w (B.add ~width:w a b) c = B.add ~width:w a (B.add ~width:w b c))

let prop_set_then_test =
  QCheck.Test.make ~name:"set_bit makes test_bit true"
    QCheck.(pair (int_bound 1000000) (int_range 0 40))
    (fun (v, i) -> B.test_bit (B.set_bit v i) i)

let prop_popcount_set =
  QCheck.Test.make ~name:"popcount after setting a clear bit grows by 1"
    QCheck.(pair (int_bound 1000000) (int_range 0 40))
    (fun (v, i) ->
      QCheck.assume (not (B.test_bit v i));
      B.popcount (B.set_bit v i) = B.popcount v + 1)

let suite =
  ( "bitword",
    [
      Alcotest.test_case "mask" `Quick test_mask;
      Alcotest.test_case "mask rejects bad widths" `Quick test_mask_invalid;
      Alcotest.test_case "truncate" `Quick test_truncate;
      Alcotest.test_case "domain_size" `Quick test_domain_size;
      Alcotest.test_case "add wraps modulo 2^w" `Quick test_add_wraps;
      Alcotest.test_case "bit test/set/clear" `Quick test_bits;
      Alcotest.test_case "popcount" `Quick test_popcount;
      Alcotest.test_case "lowest_set_bit" `Quick test_lowest_set_bit;
      Alcotest.test_case "bits list" `Quick test_bits_list;
      Alcotest.test_case "bits_needed" `Quick test_bits_needed;
      Alcotest.test_case "binary printing" `Quick test_pp;
      Alcotest.test_case "width 1 edge cases" `Quick test_width_one;
      Alcotest.test_case "width 62 edge cases (63 rejected)" `Quick test_width_max;
      Qc.to_alcotest prop_truncate_idempotent;
      Qc.to_alcotest prop_add_assoc;
      Qc.to_alcotest prop_set_then_test;
      Qc.to_alcotest prop_popcount_set;
    ] )
