(* Aggregated test runner. Suites live one per module; each exposes
   [suite : string * unit Alcotest.test_case list]. *)

let () =
  Alcotest.run "rme"
    [
      Test_bitword.suite;
      Test_util.suite;
      Test_memory.suite;
      Test_prog.suite;
      Test_harness.suite;
      Test_checker.suite;
      Test_locks.suite;
      Test_locks_crash.suite;
      Test_system_crash.suite;
      Test_km.suite;
      Test_partite.suite;
      Test_lemmas.suite;
      Test_hiding.suite;
      Test_machine.suite;
      Test_adversary.suite;
      Test_schedule.suite;
      Test_experiments.suite;
      Test_parallel.suite;
      Test_store.suite;
      Test_cli.suite;
    ]
