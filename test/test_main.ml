(* Aggregated test runner. Suites live one per module; each exposes
   [suite : string * unit Alcotest.test_case list]. *)

let () =
  (* The dist tests re-execute this binary as a worker subprocess: the
     sentinel diverts it into the protocol serve loop (possibly with a
     fault mode) instead of running the suites. *)
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "__rme_worker__" then begin
    Test_dist.worker_main ();
    exit 0
  end;
  (* The resilience tests re-execute this binary as a store-backed
     sweep child they then crash, signal and resume. *)
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "__rme_sweep__" then
    Test_resilience.sweep_main ();
  Alcotest.run "rme"
    [
      Test_bitword.suite;
      Test_util.suite;
      Test_bitset.suite;
      Test_json.suite;
      Test_memory.suite;
      Test_cache_diff.suite;
      Test_snapshot.suite;
      Test_prog.suite;
      Test_harness.suite;
      Test_checker.suite;
      Test_locks.suite;
      Test_locks_crash.suite;
      Test_system_crash.suite;
      Test_km.suite;
      Test_partite.suite;
      Test_lemmas.suite;
      Test_hiding.suite;
      Test_machine.suite;
      Test_adversary.suite;
      Test_schedule.suite;
      Test_experiments.suite;
      Test_parallel.suite;
      Test_store.suite;
      Test_resilience.suite;
      Test_dist.suite;
      Test_cli.suite;
    ]
