(* Differential test: the flat generation/epoch cache (lib/memory/cache.ml)
   against the pre-optimisation Hashtbl reference (cache_reference.ml).

   Both implementations replay the same random sequence of accesses,
   crashes, clears and deep copies; after every step the RMR verdict
   must agree, and the per-process valid sets must be extensionally
   equal. Locations are drawn beyond one page (256) so the paged
   representation's boundary and lazy-materialisation paths are hit. *)

module Cache = Rme_memory.Cache
module Reference = Cache_reference
module Intset = Rme_util.Intset

type op =
  | Access of { pid : int; loc : int; is_read : bool }
  | Drop of int
  | Clear
  | Fork  (** continue the run on deep copies of both caches *)

type scenario = { n : int; ops : op list }

let pp_op = function
  | Access { pid; loc; is_read } ->
      Printf.sprintf "%s p%d R%d" (if is_read then "read" else "write") pid loc
  | Drop pid -> Printf.sprintf "crash p%d" pid
  | Clear -> "clear"
  | Fork -> "fork"

let print_scenario s =
  Printf.sprintf "n=%d; %s" s.n (String.concat "; " (List.map pp_op s.ops))

(* Locations cluster near 0 (realistic contention) but occasionally
   jump past the 256-entry page boundary, exercising page growth. *)
let gen_loc =
  QCheck.Gen.(
    frequency [ (6, int_bound 15); (3, int_bound 300); (1, int_bound 1500) ])

let gen_scenario =
  QCheck.Gen.(
    int_range 1 6 >>= fun n ->
    let gen_op =
      frequency
        [
          ( 12,
            map3
              (fun pid loc is_read -> Access { pid; loc; is_read })
              (int_bound (n - 1)) gen_loc bool );
          (2, map (fun pid -> Drop pid) (int_bound (n - 1)));
          (1, return Clear);
          (1, return Fork);
        ]
    in
    list_size (int_bound 250) gen_op >>= fun ops -> return { n; ops })

let arb_scenario = QCheck.make ~print:print_scenario gen_scenario

let check_agreement ~step flat reference =
  for pid = 0 to Cache.n flat - 1 do
    let fs = Cache.valid_set flat ~pid and rs = Reference.valid_set reference ~pid in
    if not (Intset.equal fs rs) then
      QCheck.Test.fail_reportf
        "step %d: valid_set p%d differs: flat=%s reference=%s" step pid
        (Format.asprintf "%a" Intset.pp fs)
        (Format.asprintf "%a" Intset.pp rs);
    (* has_copy must agree with membership in the valid set. *)
    Intset.iter
      (fun loc ->
        if not (Cache.has_copy flat ~pid ~loc) then
          QCheck.Test.fail_reportf "step %d: p%d R%d in valid_set but no copy"
            step pid loc)
      fs
  done

let run_scenario { n; ops } =
  let flat = ref (Cache.create ~n) and reference = ref (Reference.create ~n) in
  List.iteri
    (fun step op ->
      (match op with
      | Access { pid; loc; is_read } ->
          let fr = Cache.access !flat ~pid ~loc ~is_read
          and rr = Reference.access !reference ~pid ~loc ~is_read in
          if fr <> rr then
            QCheck.Test.fail_reportf
              "step %d (%s): RMR verdict differs: flat=%b reference=%b" step
              (pp_op op) fr rr
      | Drop pid ->
          Cache.drop_process !flat ~pid;
          Reference.drop_process !reference ~pid
      | Clear ->
          Cache.clear !flat;
          Reference.clear !reference
      | Fork ->
          flat := Cache.copy !flat;
          reference := Reference.copy !reference);
      check_agreement ~step !flat !reference)
    ops;
  true

let prop_differential =
  QCheck.Test.make ~count:400 ~name:"flat cache =~ Hashtbl reference"
    arb_scenario run_scenario

(* copy_into must behave exactly like copy: overwrite a dirty dst of the
   same n with src's state, then both continue in lock-step. *)
let prop_copy_into =
  QCheck.Test.make ~count:200 ~name:"Cache.copy_into reuses dst correctly"
    (QCheck.pair arb_scenario arb_scenario)
    (fun (a, b) ->
      QCheck.assume (a.n = b.n);
      let src = Cache.create ~n:a.n and dst = Cache.create ~n:a.n in
      let reference = Reference.create ~n:a.n in
      let apply c r op =
        match op with
        | Access { pid; loc; is_read } ->
            ignore (Cache.access c ~pid ~loc ~is_read);
            Option.iter (fun r -> ignore (Reference.access r ~pid ~loc ~is_read)) r
        | Drop pid ->
            Cache.drop_process c ~pid;
            Option.iter (fun r -> Reference.drop_process r ~pid) r
        | Clear ->
            Cache.clear c;
            Option.iter Reference.clear r
        | Fork -> ()
      in
      (* Dirty dst with an unrelated history, then overwrite it. *)
      List.iter (fun op -> apply dst None op) b.ops;
      List.iter (fun op -> apply src (Some reference) op) a.ops;
      Cache.copy_into ~src ~dst;
      for pid = 0 to a.n - 1 do
        if not (Cache.equal_for src dst ~pid) then
          QCheck.Test.fail_reportf "copy_into: p%d differs from src" pid;
        if
          not
            (Intset.equal (Cache.valid_set dst ~pid)
               (Reference.valid_set reference ~pid))
        then QCheck.Test.fail_reportf "copy_into: p%d differs from reference" pid
      done;
      (* The overwritten dst keeps tracking the reference afterwards. *)
      List.iter (fun op -> apply dst (Some reference) op) b.ops;
      for pid = 0 to a.n - 1 do
        if
          not
            (Intset.equal (Cache.valid_set dst ~pid)
               (Reference.valid_set reference ~pid))
        then
          QCheck.Test.fail_reportf "copy_into: p%d diverges after overwrite" pid
      done;
      true)

let suite =
  ( "cache-diff",
    [ Qc.to_alcotest prop_differential; Qc.to_alcotest prop_copy_into ] )
