(* Crash-recovery tests for the recoverable locks: probabilistic crash
   storms, and — the strong one — systematic exploration of every crash
   point: for small n, inject a crash at every global step index for
   every process and check mutual exclusion and progress each time. *)

module H = Rme_sim.Harness
module Lock_intf = Rme_sim.Lock_intf
module Rmr = Rme_memory.Rmr

let recoverable = Rme_locks.Registry.recoverable

let assert_ok name (r : H.result) =
  if not r.H.ok then
    Alcotest.failf "%s: ok=false (completed=%b, violations=%s)" name r.H.completed
      (String.concat "; " r.H.violations)

let base ?(n = 4) ?(w = 16) ?(sp = 2) model =
  { (H.default_config ~n ~width:w model) with superpassages = sp }

(* Probabilistic crash storms over both models and many seeds. *)
let test_crash_storm () =
  List.iter
    (fun (factory : Lock_intf.factory) ->
      List.iter
        (fun model ->
          List.iter
            (fun seed ->
              let c =
                {
                  (base ~n:6 ~sp:3 model) with
                  policy = H.Random_policy seed;
                  crashes = H.Crash_prob { prob = 0.03; seed = seed * 13 };
                  allow_cs_crash = true;
                  max_crashes_per_process = 4;
                }
              in
              let r = H.run c factory in
              assert_ok
                (Printf.sprintf "%s storm seed=%d %s" factory.Lock_intf.name seed
                   (Rmr.model_name model))
                r)
            [ 1; 2; 3; 4; 5 ])
        Rmr.all_models)
    recoverable

(* Systematic single-crash exploration: crash process p at its next step
   after global step s, for every (s, p) within the crash-free execution
   length. *)
let test_every_crash_point () =
  List.iter
    (fun (factory : Lock_intf.factory) ->
      List.iter
        (fun model ->
          let n = 3 in
          let crash_free = H.run (base ~n ~sp:1 model) factory in
          assert_ok "crash-free baseline" crash_free;
          let horizon = crash_free.H.steps in
          for s = 0 to horizon - 1 do
            for p = 0 to n - 1 do
              let c =
                {
                  (base ~n ~sp:1 model) with
                  crashes = H.Crash_script [ (s, p) ];
                  allow_cs_crash = true;
                }
              in
              let r = H.run c factory in
              assert_ok
                (Printf.sprintf "%s %s crash p%d@%d" factory.Lock_intf.name
                   (Rmr.model_name model) p s)
                r
            done
          done)
        Rmr.all_models)
    recoverable

(* Double crashes: same process twice, and two different processes. *)
let test_double_crash_points () =
  List.iter
    (fun (factory : Lock_intf.factory) ->
      let n = 3 in
      let model = Rmr.Cc in
      let crash_free = H.run (base ~n ~sp:1 model) factory in
      let horizon = min 40 crash_free.H.steps in
      let stride = max 1 (horizon / 8) in
      let points = List.init (horizon / stride) (fun i -> i * stride) in
      List.iter
        (fun s1 ->
          List.iter
            (fun s2 ->
              List.iter
                (fun (p1, p2) ->
                  let c =
                    {
                      (base ~n ~sp:1 model) with
                      crashes = H.Crash_script [ (s1, p1); (s2, p2) ];
                      allow_cs_crash = true;
                      max_crashes_per_process = 2;
                    }
                  in
                  let r = H.run c factory in
                  assert_ok
                    (Printf.sprintf "%s crashes p%d@%d p%d@%d"
                       factory.Lock_intf.name p1 s1 p2 s2)
                    r)
                [ (0, 0); (0, 1); (1, 2) ])
            points)
        points)
    recoverable

(* A crash inside the critical section must lead to CS re-entry: the
   process re-enters and the super-passage still completes exactly once
   per configured super-passage (cs_entries may exceed passages). *)
let test_cs_crash_reentry () =
  List.iter
    (fun (factory : Lock_intf.factory) ->
      (* Find the step at which p0 is in the CS by tracing a clean run. *)
      let c0 = { (base ~n:2 ~sp:1 Rmr.Cc) with record_trace = true } in
      let r0 = H.run c0 factory in
      assert_ok "clean" r0;
      let cs_step = ref None in
      (match r0.H.trace with
      | Some t ->
          let idx = ref 0 in
          Rme_sim.Trace.iter
            (fun e ->
              (match e with
              | Rme_sim.Trace.Step { pid = 0; section = Rme_sim.Trace.In_cs; _ } ->
                  if !cs_step = None then cs_step := Some !idx
              | _ -> ());
              incr idx)
            t
      | None -> Alcotest.fail "no trace");
      match !cs_step with
      | None -> Alcotest.fail "p0 never reached the CS"
      | Some s ->
          let c =
            {
              (base ~n:2 ~sp:1 Rmr.Cc) with
              crashes = H.Crash_script [ (s, 0) ];
              allow_cs_crash = true;
            }
          in
          let r = H.run c factory in
          assert_ok (factory.Lock_intf.name ^ " cs crash") r;
          Alcotest.(check int) "p0 crashed once" 1 r.H.procs.(0).H.crashes;
          Alcotest.(check bool) "p0 re-entered the CS" true
            (r.H.procs.(0).H.cs_entries >= 1))
    recoverable

(* Crash storms at small word sizes (where every lock has to spell
   process IDs across several words). *)
let test_crash_small_widths () =
  List.iter
    (fun (factory : Lock_intf.factory) ->
      let n = 5 in
      let w = factory.Lock_intf.min_width ~n in
      List.iter
        (fun seed ->
          let c =
            {
              (base ~n ~w ~sp:2 Rmr.Cc) with
              policy = H.Random_policy seed;
              crashes = H.Crash_prob { prob = 0.04; seed };
              allow_cs_crash = true;
              max_crashes_per_process = 3;
            }
          in
          let r = H.run c factory in
          assert_ok (Printf.sprintf "%s w=%d seed=%d" factory.Lock_intf.name w seed) r)
        [ 10; 20; 30 ])
    recoverable

(* Property: across random seeds, recoverable locks stay correct under
   aggressive crash regimes. *)
let prop_crash_robustness =
  QCheck.Test.make ~name:"recoverable locks survive random crash storms" ~count:60
    QCheck.(triple (int_range 2 8) (int_range 0 1000) (int_range 0 2))
    (fun (n, seed, which) ->
      let factory = List.nth recoverable which in
      let model = if seed mod 2 = 0 then Rmr.Cc else Rmr.Dsm in
      let c =
        {
          (base ~n ~sp:2 model) with
          policy = H.Random_policy seed;
          crashes = H.Crash_prob { prob = 0.05; seed = seed + 1 };
          allow_cs_crash = true;
          max_crashes_per_process = 3;
        }
      in
      (H.run c factory).H.ok)

let suite =
  ( "locks-crash",
    [
      Alcotest.test_case "crash storms" `Quick test_crash_storm;
      Alcotest.test_case "every single-crash point" `Slow test_every_crash_point;
      Alcotest.test_case "double-crash grid" `Slow test_double_crash_points;
      Alcotest.test_case "CS crash re-entry" `Quick test_cs_crash_reentry;
      Alcotest.test_case "crashes at minimal widths" `Quick test_crash_small_widths;
      Qc.to_alcotest prop_crash_robustness;
    ] )
