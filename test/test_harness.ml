(* Tests for the workload harness: scheduling, crash injection, passage
   accounting, and — crucially — that the mutual-exclusion checker
   actually catches broken locks. *)

module H = Rme_sim.Harness
module Lock_intf = Rme_sim.Lock_intf
module Prog = Rme_sim.Prog
module Rmr = Rme_memory.Rmr
module Memory = Rme_memory.Memory

(* A "lock" that excludes nobody: everyone walks straight into the CS. *)
let broken_lock =
  {
    Lock_intf.name = "broken";
    recoverable = true;
    min_width = (fun ~n:_ -> 1);
    make =
      (fun memory ~n:_ ->
        let scratch = Memory.alloc memory ~name:"broken.scratch" ~init:0 in
        {
          Lock_intf.entry = (fun ~pid -> Prog.write scratch (pid land 1));
          exit = (fun ~pid -> Prog.write scratch (pid land 1));
          recover = (fun ~pid:_ -> Prog.return Lock_intf.Resume_entry);
          system_epoch = None;
        });
  }

(* A lock whose entry spins forever: deadlock-freedom must fail. *)
let stuck_lock =
  {
    Lock_intf.name = "stuck";
    recoverable = false;
    min_width = (fun ~n:_ -> 1);
    make =
      (fun memory ~n:_ ->
        let never = Memory.alloc memory ~name:"stuck.never" ~init:0 in
        {
          Lock_intf.entry =
            (fun ~pid:_ -> Prog.map ignore (Prog.await never (fun v -> v = 1)));
          exit = (fun ~pid:_ -> Prog.return ());
          recover = (fun ~pid:_ -> Prog.return Lock_intf.Resume_entry);
          system_epoch = None;
        });
  }

let cfg ?(n = 4) ?(w = 16) ?(sp = 2) model =
  { (H.default_config ~n ~width:w model) with superpassages = sp }

let test_broken_lock_flagged () =
  let r = H.run { (cfg Rmr.Cc) with policy = H.Random_policy 5 } broken_lock in
  Alcotest.(check bool) "violations reported" true (r.H.violations <> []);
  Alcotest.(check bool) "not ok" false r.H.ok

let test_stuck_lock_flagged () =
  let r = H.run { (cfg ~sp:1 Rmr.Cc) with step_budget = 2_000 } stuck_lock in
  Alcotest.(check bool) "incomplete" false r.H.completed;
  Alcotest.(check bool) "not ok" false r.H.ok

let test_single_process () =
  let r = H.run (cfg ~n:1 Rmr.Cc) Rme_locks.Tas.factory in
  Alcotest.(check bool) "ok" true r.H.ok;
  Alcotest.(check int) "2 cs entries" 2 r.H.procs.(0).H.cs_entries

let test_superpassage_counts () =
  let r = H.run (cfg ~n:5 ~sp:3 Rmr.Cc) Rme_locks.Mcs.factory in
  Alcotest.(check bool) "ok" true r.H.ok;
  Array.iter
    (fun (p : H.proc_stats) ->
      Alcotest.(check int) "3 passages each" 3 p.H.passages;
      Alcotest.(check int) "3 cs entries each" 3 p.H.cs_entries)
    r.H.procs

let test_cs_rmr_excluded () =
  (* A single uncontended process through rcas: entry = status write +
     read + CAS, exit = status write + read + lock write + status write.
     The CS step must not be in the passage count. *)
  let r = H.run (cfg ~n:1 ~sp:1 Rmr.Dsm) Rme_locks.Rcas.factory in
  Alcotest.(check bool) "ok" true r.H.ok;
  (* In DSM with n=1: status words are own-segment (local), lock word is
     unowned (remote): read + CAS + read + write = 4 RMRs. *)
  Alcotest.(check int) "passage RMRs exclude the CS step" 4
    r.H.procs.(0).H.max_passage_rmr

let test_crash_injection_counts () =
  let c =
    {
      (cfg ~n:4 ~sp:3 Rmr.Cc) with
      crashes = H.Crash_prob { prob = 0.05; seed = 3 };
      max_crashes_per_process = 2;
      policy = H.Random_policy 1;
    }
  in
  let r = H.run c Rme_locks.Rcas.factory in
  Alcotest.(check bool) "ok" true r.H.ok;
  Alcotest.(check bool) "some crashes happened" true (r.H.total_crashes > 0);
  Array.iter
    (fun (p : H.proc_stats) ->
      Alcotest.(check bool) "cap respected" true (p.H.crashes <= 2))
    r.H.procs

let test_crash_script () =
  let c =
    {
      (cfg ~n:2 ~sp:1 Rmr.Cc) with
      crashes = H.Crash_script [ (0, 0) ];
      record_trace = true;
    }
  in
  let r = H.run c Rme_locks.Rcas.factory in
  Alcotest.(check bool) "ok" true r.H.ok;
  Alcotest.(check int) "p0 crashed once" 1 r.H.procs.(0).H.crashes;
  Alcotest.(check int) "p1 did not crash" 0 r.H.procs.(1).H.crashes;
  (* A crash splits the super-passage into two passages. *)
  Alcotest.(check int) "p0 has 2 passages" 2 r.H.procs.(0).H.passages

let test_crash_on_first_recovery_step () =
  (* Two back-to-back scripted crashes: the first aborts p0's entry, the
     second fires on the very first step of the recovery passage that
     follows. Super-passage bookkeeping must not double-count: every
     super-passage still enters the CS exactly once, and each crash adds
     exactly one passage. *)
  let sp = 2 in
  let c =
    {
      (cfg ~n:2 ~sp Rmr.Cc) with
      crashes = H.Crash_script [ (0, 0); (1, 0) ];
      max_crashes_per_process = 2;
      record_trace = true;
    }
  in
  let r = H.run c Rme_locks.Rcas.factory in
  Alcotest.(check bool) "ok" true r.H.ok;
  Alcotest.(check int) "p0 crashed twice" 2 r.H.procs.(0).H.crashes;
  (let sections =
     match r.H.trace with
     | None -> []
     | Some t ->
         let acc = ref [] in
         Rme_sim.Trace.iter
           (function
             | Rme_sim.Trace.Crash { pid = 0; section } -> acc := section :: !acc
             | _ -> ())
           t;
         List.rev !acc
   in
   match sections with
   | [ first; second ] ->
       Alcotest.(check string) "first crash in entry" "entry"
         (Rme_sim.Trace.section_name first);
       Alcotest.(check string) "second crash on first recovery step" "recovery"
         (Rme_sim.Trace.section_name second)
   | l -> Alcotest.failf "expected 2 crash events, got %d" (List.length l));
  Alcotest.(check int) "p1 did not crash" 0 r.H.procs.(1).H.crashes;
  Alcotest.(check int) "each crash adds exactly one passage" (sp + 2)
    r.H.procs.(0).H.passages;
  Alcotest.(check int) "one CS entry per super-passage, no double-count" sp
    r.H.procs.(0).H.cs_entries;
  (* The offline checker agrees the trace is legal. *)
  match Rme_sim.Checker.check_result r with
  | None -> Alcotest.fail "no trace"
  | Some rep ->
      Alcotest.(check bool) "checker clean" true (Rme_sim.Checker.ok rep)

let test_crash_rejected_for_nonrecoverable () =
  let c = { (cfg Rmr.Cc) with crashes = H.Crash_prob { prob = 0.1; seed = 1 } } in
  Alcotest.check_raises "refuses"
    (Invalid_argument "Harness.run: lock mcs is not recoverable; cannot inject crashes")
    (fun () -> ignore (H.run c Rme_locks.Mcs.factory))

let test_width_rejected () =
  let c = cfg ~n:300 ~w:4 Rmr.Cc in
  Alcotest.check_raises "refuses"
    (Invalid_argument "Harness.run: lock mcs needs width >= 9 for n = 300 (got 4)")
    (fun () -> ignore (H.run c Rme_locks.Mcs.factory))

let test_trace_recorded () =
  let c = { (cfg ~n:2 ~sp:1 Rmr.Cc) with record_trace = true } in
  let r = H.run c Rme_locks.Tas.factory in
  match r.H.trace with
  | None -> Alcotest.fail "trace missing"
  | Some t ->
      Alcotest.(check bool) "has events" true (Rme_sim.Trace.length t > 0);
      (* every event belongs to a real process *)
      Rme_sim.Trace.iter
        (fun e ->
          let pid = Rme_sim.Trace.pid_of_event e in
          Alcotest.(check bool) "pid in range" true (pid >= 0 && pid < 2))
        t

let test_trace_filter () =
  let t = Rme_sim.Trace.create () in
  Rme_sim.Trace.record t (Rme_sim.Trace.Crash { pid = 0; section = Rme_sim.Trace.In_entry });
  Rme_sim.Trace.record t (Rme_sim.Trace.Crash { pid = 1; section = Rme_sim.Trace.In_exit });
  let t' = Rme_sim.Trace.filter_pids t ~keep:(fun p -> p = 1) in
  Alcotest.(check int) "filtered" 1 (Rme_sim.Trace.length t')

let test_deterministic_runs () =
  let run () =
    let c = { (cfg ~n:6 ~sp:2 Rmr.Cc) with policy = H.Random_policy 77 } in
    let r = H.run c Rme_locks.Katzan_morrison.factory in
    (r.H.steps, r.H.max_passage_rmr, r.H.mean_passage_rmr)
  in
  Alcotest.(check bool) "identical reruns" true (run () = run ())

let test_round_robin_vs_random_both_ok () =
  List.iter
    (fun policy ->
      let c = { (cfg ~n:6 ~sp:2 Rmr.Dsm) with policy } in
      let r = H.run c Rme_locks.Rtournament.factory in
      Alcotest.(check bool) "ok" true r.H.ok)
    [ H.Round_robin; H.Random_policy 9; H.Random_policy 1234 ]

let suite =
  ( "harness",
    [
      Alcotest.test_case "broken lock is flagged" `Quick test_broken_lock_flagged;
      Alcotest.test_case "stuck lock fails progress" `Quick test_stuck_lock_flagged;
      Alcotest.test_case "single process completes" `Quick test_single_process;
      Alcotest.test_case "super-passage accounting" `Quick test_superpassage_counts;
      Alcotest.test_case "CS step excluded from passage RMRs" `Quick test_cs_rmr_excluded;
      Alcotest.test_case "probabilistic crash injection" `Quick test_crash_injection_counts;
      Alcotest.test_case "scripted crash splits passages" `Quick test_crash_script;
      Alcotest.test_case "crash on first recovery step" `Quick
        test_crash_on_first_recovery_step;
      Alcotest.test_case "crashes rejected for non-recoverable" `Quick
        test_crash_rejected_for_nonrecoverable;
      Alcotest.test_case "insufficient width rejected" `Quick test_width_rejected;
      Alcotest.test_case "trace recording" `Quick test_trace_recorded;
      Alcotest.test_case "trace filtering" `Quick test_trace_filter;
      Alcotest.test_case "determinism" `Quick test_deterministic_runs;
      Alcotest.test_case "policies all correct" `Quick test_round_robin_vs_random_both_ok;
    ] )
