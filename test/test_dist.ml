(* Fault-injection tests for the multi-process worker sharding layer
   (lib/dist). Three levels:

   - frame/protocol codecs: qcheck round-trips (including Codec-escaped
     key material) and totality — arbitrary garbage decodes to
     None/`Corrupt`, never an exception;
   - the worker serve loop, driven in-process over real pipes;
   - the coordinator, hammered with every failure mode the design
     names: a worker SIGKILLed mid-batch, garbage frames, truncated
     frames, a wrong-fingerprint handshake, a hung worker, a binary
     that cannot spawn, a worker that cannot serve any entry. Every
     failure must requeue (no lost cells), commit each result at most
     once (no duplicated cells), and leave final values identical to
     computing without workers.

   Worker subprocesses are this test binary re-executed with the
   [__rme_worker__] sentinel (see [worker_main] and test_main.ml); a
   fault mode in argv selects how the worker misbehaves. One-shot
   faults coordinate through an O_EXCL marker file so exactly one
   worker misbehaves and its respawn is honest. *)

module Frame = Rme_dist.Frame
module Protocol = Rme_dist.Protocol
module Worker = Rme_dist.Worker
module D = Rme_dist.Coordinator
module Engine = Rme_experiments.Engine
module Codec = Rme_store.Codec
module E = Rme_experiments.Experiments
module Table = Rme_util.Table
module H = Rme_sim.Harness
module Rmr = Rme_memory.Rmr

let fp () = Engine.code_fingerprint ()

(* ---------------- scratch directories ---------------- *)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let dir_counter = ref 0

let with_dir f =
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "rme_dist_test_%d_%d" (Unix.getpid ()) !dir_counter)
  in
  rm_rf d;
  Sys.mkdir d 0o755;
  Fun.protect ~finally:(fun () -> rm_rf d) (fun () -> f d)

(* ---------------- the worker side of the fault modes ---------------- *)

let echo_compute ~section ~key = if section = "t" then Some ("v:" ^ key) else None

(* First caller wins: O_EXCL creation is atomic across the worker
   processes sharing [dir], so exactly one claims the fault. *)
let claim_marker dir =
  match
    Unix.openfile
      (Filename.concat dir "rme-fault-marker")
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL ]
      0o644
  with
  | fd ->
      Unix.close fd;
      true
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> false

(* A worker that handshakes honestly, then [misbehave]s on the first
   batch it can claim — and serves echo-style otherwise. *)
let faulty_loop ~misbehave dir =
  let rec loop () =
    match Frame.read stdin with
    | None -> ()
    | Some payload -> (
        match Protocol.decode payload with
        | Some (Protocol.Hello _) ->
            Frame.write stdout (Protocol.encode (Protocol.Ready (fp ())));
            loop ()
        | Some (Protocol.Batch (id, tasks)) ->
            if claim_marker dir then misbehave ()
            else begin
              let entries =
                List.map (fun (s, k) -> (s, k, echo_compute ~section:s ~key:k)) tasks
              in
              Frame.write stdout (Protocol.encode (Protocol.Result (id, entries)));
              loop ()
            end
        | _ -> ())
  in
  loop ()

let hang_loop () =
  let rec loop () =
    match Frame.read stdin with
    | None -> ()
    | Some payload -> (
        match Protocol.decode payload with
        | Some (Protocol.Hello _) ->
            Frame.write stdout (Protocol.encode (Protocol.Ready (fp ())));
            loop ()
        | Some (Protocol.Batch _) ->
            (* Hold the batch forever; the coordinator's deadline must
               kill us and requeue it. *)
            Unix.sleep 3600
        | _ -> ())
  in
  loop ()

(* The [__rme_worker__] entry point: test_main.ml calls this (then
   exits) when the binary is re-executed as a worker subprocess. *)
let worker_main () =
  let mode = if Array.length Sys.argv > 2 then Sys.argv.(2) else "" in
  let arg i = if Array.length Sys.argv > i then Some Sys.argv.(i) else None in
  match mode with
  | "engine" -> (
      match (arg 3, arg 4) with
      | Some "--cache-dir", Some d -> Engine.serve_worker ~cache_dir:d stdin stdout
      | _ -> Engine.serve_worker stdin stdout)
  | "echo" -> Worker.serve ~fingerprint:(fp ()) ~compute:echo_compute stdin stdout
  | "bad-fp" ->
      Worker.serve ~fingerprint:"not-the-coordinators-code" ~compute:echo_compute
        stdin stdout
  | "fail-compute" ->
      Worker.serve ~fingerprint:(fp ())
        ~compute:(fun ~section:_ ~key:_ -> None)
        stdin stdout
  | "kill-once" ->
      (* SIGKILL mid-batch: die on the first computed entry, before any
         part of the reply is written. *)
      let dir = Option.get (arg 3) in
      Worker.serve ~fingerprint:(fp ())
        ~compute:(fun ~section ~key ->
          if claim_marker dir then Unix.kill (Unix.getpid ()) Sys.sigkill;
          echo_compute ~section ~key)
        stdin stdout
  | "garbage-once" ->
      (* A reply that is not a frame: 0xff leading bytes parse as an
         over-limit length — unrecoverable stream corruption. *)
      faulty_loop
        (Option.get (arg 3))
        ~misbehave:(fun () ->
          output_string stdout "\xff\xff\xff\xffgarbage, not a frame";
          flush stdout;
          exit 0)
  | "trunc-once" ->
      (* A torn frame: a header declaring 999,999 payload bytes, three
         bytes of payload, then EOF. *)
      faulty_loop
        (Option.get (arg 3))
        ~misbehave:(fun () ->
          output_string stdout "\x00\x0f\x42\x3fabc";
          flush stdout;
          exit 0)
  | "hang" -> hang_loop ()
  | _ ->
      prerr_endline ("unknown worker fault mode " ^ mode);
      exit 2

let self_argv mode args =
  Array.of_list ((Sys.executable_name :: "__rme_worker__" :: [ mode ]) @ args)

(* ---------------- qcheck: frames ---------------- *)

let feed_str d s = Frame.feed d (Bytes.of_string s) (String.length s)

let drain_frames d =
  let rec go acc =
    match Frame.next d with
    | `Frame f -> go (f :: acc)
    | `Await -> `Ok (List.rev acc)
    | `Corrupt -> `Corrupt
  in
  go []

let prop_frame_round_trip =
  QCheck.Test.make ~name:"frame: round-trips under arbitrary chunking" ~count:300
    QCheck.(pair (small_list string) (int_range 1 7))
    (fun (payloads, chunk) ->
      let wire = String.concat "" (List.map Frame.to_string payloads) in
      let d = Frame.decoder () in
      let got = ref [] in
      let n = String.length wire in
      let i = ref 0 in
      let ok = ref true in
      while !i < n do
        let c = min chunk (n - !i) in
        feed_str d (String.sub wire !i c);
        (match drain_frames d with
        | `Ok fs -> got := !got @ fs
        | `Corrupt -> ok := false);
        i := !i + c
      done;
      !ok && !got = payloads)

let prop_frame_garbage_total =
  QCheck.Test.make ~name:"frame: incremental decode of garbage is total" ~count:300
    QCheck.string (fun junk ->
      let d = Frame.decoder () in
      feed_str d junk;
      (* Bounded drain: every step must return, never raise; embedded
         valid frames are fine, corruption must stick. *)
      let rec go n =
        n = 0
        ||
        match Frame.next d with
        | `Frame _ -> go (n - 1)
        | `Await -> true
        | `Corrupt -> ( match Frame.next d with `Corrupt -> true | _ -> false)
      in
      go 64)

let prop_frame_read_total =
  QCheck.Test.make ~name:"frame: blocking read of garbage is total" ~count:100
    QCheck.string (fun junk ->
      let f = Filename.temp_file "rme_frame" ".bin" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove f with Sys_error _ -> ())
        (fun () ->
          let oc = open_out_bin f in
          output_string oc junk;
          close_out oc;
          let ic = open_in_bin f in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () ->
              let rec go n =
                n = 0 || match Frame.read ic with Some _ -> go (n - 1) | None -> true
              in
              go 64)))

(* ---------------- qcheck: protocol ---------------- *)

(* Key material in the shape the engine really sends: space-separated
   [field=value] pairs with Codec-escaped payloads (never a newline,
   never the [" := "] separator). *)
let key_gen =
  QCheck.Gen.(
    map
      (fun parts ->
        String.concat " "
          (List.mapi (fun i s -> Printf.sprintf "f%d=%s" i (Codec.escape s)) parts))
      (list_size (int_range 1 4) (string_size (int_range 0 12))))

let value_gen = QCheck.Gen.map Codec.escape QCheck.Gen.(string_size (int_range 0 16))
let section_gen = QCheck.Gen.oneofl [ "cell"; "adv"; "t" ]
let fp_gen = QCheck.Gen.(map (fun s -> "f" ^ Codec.escape s) (string_size (int_range 0 8)))

let msg_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun f -> Protocol.Hello f) fp_gen;
        map (fun f -> Protocol.Ready f) fp_gen;
        map2
          (fun id tasks -> Protocol.Batch (id, tasks))
          small_nat
          (list_size (int_range 0 6) (pair section_gen key_gen));
        map2
          (fun id entries -> Protocol.Result (id, entries))
          small_nat
          (list_size (int_range 0 6)
             (map3
                (fun s k v -> (s, k, v))
                section_gen key_gen (option value_gen)));
      ])

let msg_print m =
  match Protocol.encode m with s -> String.concat "\\n" (String.split_on_char '\n' s)

let prop_protocol_round_trip =
  QCheck.Test.make ~name:"protocol: messages round-trip through encode/decode"
    ~count:500
    (QCheck.make ~print:msg_print msg_gen)
    (fun m -> Protocol.decode (Protocol.encode m) = Some m)

let prop_protocol_garbage_total =
  QCheck.Test.make ~name:"protocol: decoding arbitrary garbage is total" ~count:500
    QCheck.string (fun s ->
      match Protocol.decode s with Some _ | None -> true)

(* ---------------- engine key decoding ---------------- *)

let crash_policies : H.crash_policy list =
  [
    H.No_crashes;
    H.Crash_prob { prob = 0.05; seed = 1302 };
    H.Crash_script [ (3, 1); (700, 2) ];
    H.System_crash_script [ 10; 20; 30 ];
    H.System_crash_prob { prob = 0.125; seed = 9; max = 4 };
  ]

let mk_cell ?crashes ?(seed = 42) ?(n = 2) ?(lock = Rme_locks.Tas.factory) () =
  Engine.cell ?crashes ~seed ~n ~width:16 ~model:Rmr.Cc lock

let test_cell_key_round_trip () =
  let variants =
    mk_cell ()
    :: mk_cell ~lock:Rme_locks.Mcs.factory ()
    :: mk_cell ~n:8 ~seed:7 ()
    :: List.map (fun cp -> mk_cell ~crashes:cp ()) crash_policies
  in
  List.iter
    (fun c ->
      let key = Engine.cell_key_string c in
      match Engine.cell_of_key_string key with
      | None -> Alcotest.fail ("key undecodable: " ^ key)
      | Some c' ->
          Alcotest.(check string) ("key identity: " ^ key) key
            (Engine.cell_key_string c'))
    variants;
  let adv = Engine.adv_cell ~k:5 ~n:32 ~width:8 ~model:Rmr.Cc Rme_locks.Rcas.factory in
  let akey = Engine.adv_key_string adv in
  (match Engine.adv_cell_of_key_string akey with
  | None -> Alcotest.fail ("adv key undecodable: " ^ akey)
  | Some a' -> Alcotest.(check string) "adv key identity" akey (Engine.adv_key_string a'));
  (* Totality on junk. *)
  List.iter
    (fun bad ->
      Alcotest.(check bool) ("reject " ^ bad) true
        (Engine.cell_of_key_string bad = None && Engine.adv_cell_of_key_string bad = None))
    [ ""; "nonsense"; "lock=no-such-lock n=2 w=16 model=cc seed=1"; "n=2" ]

let test_compute_encoded () =
  let c = mk_cell ~seed:5 () in
  (match Engine.compute_encoded ~section:"cell" ~key:(Engine.cell_key_string c) () with
  | None -> Alcotest.fail "cell key should be servable"
  | Some enc ->
      let e = Engine.create ~jobs:1 () in
      let direct = Engine.get e c in
      Engine.shutdown e;
      Alcotest.(check bool) "worker compute = direct compute" true
        (Engine.cell_result_decode enc = Some direct));
  Alcotest.(check bool) "unknown section unservable" true
    (Engine.compute_encoded ~section:"bogus" ~key:(Engine.cell_key_string c) () = None);
  Alcotest.(check bool) "garbage key unservable" true
    (Engine.compute_encoded ~section:"cell" ~key:"garbage" () = None)

(* ---------------- the worker serve loop, in-process ---------------- *)

let test_worker_serve_loop () =
  (* Script the coordinator side of a session up-front into the pipe
     (the frames are far below the pipe buffer), run the loop to
     completion, then decode the replies. *)
  let in_r, in_w = Unix.pipe () in
  let out_r, out_w = Unix.pipe () in
  let ic = Unix.in_channel_of_descr in_r in
  let script = Unix.out_channel_of_descr in_w in
  let reply_w = Unix.out_channel_of_descr out_w in
  let reply_r = Unix.in_channel_of_descr out_r in
  Frame.write script (Protocol.encode (Protocol.Hello "any-fp"));
  Frame.write script
    (Protocol.encode (Protocol.Batch (7, [ ("t", "k1"); ("t", "k2"); ("u", "k3") ])));
  close_out script;
  let batches = ref 0 in
  Worker.serve ~fingerprint:"my-fp"
    ~compute:(fun ~section ~key ->
      if section <> "t" then None
      else if key = "k2" then failwith "boom" (* contained to its entry *)
      else Some ("v:" ^ key))
    ~on_batch:(fun () -> incr batches)
    ic reply_w;
  close_out reply_w;
  let next () = Option.bind (Frame.read reply_r) Protocol.decode in
  Alcotest.(check bool) "ready with own fingerprint" true
    (next () = Some (Protocol.Ready "my-fp"));
  Alcotest.(check bool) "result: computed, failed and foreign entries" true
    (next ()
    = Some
        (Protocol.Result
           (7, [ ("t", "k1", Some "v:k1"); ("t", "k2", None); ("u", "k3", None) ])));
  Alcotest.(check int) "on_batch fired once" 1 !batches;
  Alcotest.(check bool) "clean EOF" true (Frame.read reply_r = None);
  close_in_noerr ic;
  close_in_noerr reply_r

(* ---------------- coordinator fault injection ---------------- *)

let with_dist cfg f =
  let d = D.create cfg in
  Fun.protect ~finally:(fun () -> D.shutdown d) (fun () -> f d)

let mk_tasks n = Array.init n (fun i -> ("t", Printf.sprintf "key of %d" i))

let check_all_served tasks out =
  Array.iteri
    (fun i r ->
      Alcotest.(check (option string))
        (Printf.sprintf "task %d served exactly its value" i)
        (Some ("v:" ^ snd tasks.(i)))
        r)
    out

let test_dist_echo_basic () =
  with_dist
    (D.default_config ~workers:2 ~argv:(self_argv "echo" []) ~fingerprint:(fp ()) ())
    (fun d ->
      let tasks = mk_tasks 40 in
      let done_count = ref 0 in
      let out = D.run d ~tasks ~on_done:(fun _ -> incr done_count) () in
      check_all_served tasks out;
      Alcotest.(check int) "on_done fired once per task" 40 !done_count;
      let st = D.stats d in
      Alcotest.(check int) "all remote" 40 st.D.remote;
      Alcotest.(check int) "nothing requeued" 0 st.D.requeued;
      Alcotest.(check int) "nothing unserved" 0 st.D.unserved;
      (* A coordinator is reusable; workers stay warm between runs. *)
      let tasks2 = mk_tasks 10 in
      check_all_served tasks2 (D.run d ~tasks:tasks2 ());
      Alcotest.(check int) "no extra spawns across runs" 2 (D.stats d).D.spawned)

let test_dist_sigkill_requeues () =
  with_dir (fun dir ->
      with_dist
        (D.default_config ~chunk:4 ~workers:2
           ~argv:(self_argv "kill-once" [ dir ])
           ~fingerprint:(fp ()) ())
        (fun d ->
          let tasks = mk_tasks 30 in
          let out = D.run d ~tasks () in
          (* No lost cells (everything served, correctly) and no
             duplicated cells (remote = n exactly: each result committed
             once). *)
          check_all_served tasks out;
          let st = D.stats d in
          Alcotest.(check int) "remote = n exactly" 30 st.D.remote;
          Alcotest.(check bool) "the SIGKILLed worker was detected" true (st.D.lost >= 1);
          Alcotest.(check bool) "its in-flight batch was requeued" true
            (st.D.requeued >= 1);
          (* The survivor (or a respawn — the backoff may outlive the
             queue) picks the batch up; nothing is handed back. *)
          Alcotest.(check int) "nothing unserved" 0 st.D.unserved))

let test_dist_garbage_frame_requeues () =
  with_dir (fun dir ->
      with_dist
        (D.default_config ~workers:2
           ~argv:(self_argv "garbage-once" [ dir ])
           ~fingerprint:(fp ()) ())
        (fun d ->
          let tasks = mk_tasks 24 in
          let out = D.run d ~tasks () in
          check_all_served tasks out;
          let st = D.stats d in
          Alcotest.(check int) "garbage never accepted as results" 24 st.D.remote;
          Alcotest.(check bool) "corrupt stream dropped the worker" true
            (st.D.lost >= 1);
          Alcotest.(check bool) "its batch was requeued" true (st.D.requeued >= 1)))

let test_dist_truncated_frame_requeues () =
  with_dir (fun dir ->
      with_dist
        (D.default_config ~workers:2
           ~argv:(self_argv "trunc-once" [ dir ])
           ~fingerprint:(fp ()) ())
        (fun d ->
          let tasks = mk_tasks 24 in
          let out = D.run d ~tasks () in
          check_all_served tasks out;
          let st = D.stats d in
          Alcotest.(check int) "torn frame never accepted" 24 st.D.remote;
          Alcotest.(check bool) "torn stream dropped the worker" true (st.D.lost >= 1);
          Alcotest.(check bool) "its batch was requeued" true (st.D.requeued >= 1)))

let test_dist_bad_fingerprint_rejected () =
  with_dist
    (D.default_config ~workers:2 ~argv:(self_argv "bad-fp" []) ~fingerprint:(fp ()) ())
    (fun d ->
      let tasks = mk_tasks 8 in
      let out = D.run d ~tasks () in
      Alcotest.(check bool) "nothing served by foreign code" true
        (Array.for_all Option.is_none out);
      let st = D.stats d in
      Alcotest.(check int) "no remote results accepted" 0 st.D.remote;
      Alcotest.(check int) "every task handed back" 8 st.D.unserved;
      Alcotest.(check int) "both workers disqualified" 2 st.D.lost;
      (* Permanent disqualification: respawning the same binary cannot
         change its fingerprint, so no respawns are burned. *)
      Alcotest.(check int) "no respawn attempted" 2 st.D.spawned)

let test_dist_hung_worker_deadline () =
  with_dist
    (D.default_config ~batch_deadline:0.3 ~max_respawns:1 ~workers:1
       ~argv:(self_argv "hang" []) ~fingerprint:(fp ()) ())
    (fun d ->
      let t0 = Unix.gettimeofday () in
      let out = D.run d ~tasks:(mk_tasks 6) () in
      let dt = Unix.gettimeofday () -. t0 in
      Alcotest.(check bool) "run returned promptly, not hung" true (dt < 30.0);
      Alcotest.(check bool) "nothing served" true (Array.for_all Option.is_none out);
      let st = D.stats d in
      Alcotest.(check int) "no remote results" 0 st.D.remote;
      Alcotest.(check bool) "hung worker killed at the deadline" true (st.D.lost >= 1);
      Alcotest.(check bool) "its batch was requeued first" true (st.D.requeued >= 1))

(* ---------------- the engine over a failing worker tier ---------------- *)

let with_engine ?cache_dir ?workers ?worker_argv ?worker_deadline ~jobs f =
  let e = Engine.create ~jobs ?cache_dir ?workers ?worker_argv ?worker_deadline () in
  Fun.protect ~finally:(fun () -> Engine.shutdown e) (fun () -> f e)

let render_all tables = String.concat "\n" (List.map Table.render tables)

let render_suite engine =
  render_all
    (E.e1_lock_landscape ~engine ~ns:[ 2; 4 ] ()
    @ E.e3_adversary_bound ~engine ~ns:[ 16 ] ~ws:[ 4 ] ())

let test_engine_workers_identical () =
  let base = with_engine ~jobs:1 render_suite in
  with_engine ~jobs:2 ~workers:2 ~worker_argv:(self_argv "engine" []) (fun e ->
      let out = render_suite e in
      Alcotest.(check string) "--workers 2 tables byte-identical" base out;
      let c = Engine.counters e in
      Alcotest.(check bool) "workers actually computed cells" true (c.Engine.remote > 0);
      Alcotest.(check bool) "remote is a subset of computed" true
        (c.Engine.remote <= c.Engine.computed);
      match Engine.dist_stats e with
      | None -> Alcotest.fail "coordinator attached but no stats"
      | Some st ->
          Alcotest.(check int) "telemetry agrees with counters" c.Engine.remote
            st.D.remote)

let test_engine_unspawnable_falls_back () =
  (* A worker binary that cannot run: every spawn dies instantly. The
     engine must compute everything in-process — same tables, remote
     telemetry zero. *)
  let base = with_engine ~jobs:1 render_suite in
  with_engine ~jobs:1 ~workers:2
    ~worker_argv:[| "/nonexistent/rme-worker-binary" |]
    (fun e ->
      let out = render_suite e in
      Alcotest.(check string) "all workers lost: tables still identical" base out;
      let c = Engine.counters e in
      Alcotest.(check int) "nothing remote" 0 c.Engine.remote;
      Alcotest.(check bool) "everything computed in-process" true (c.Engine.computed > 0))

let test_engine_unservable_falls_back () =
  (* Workers that answer every entry as unservable: protocol-healthy,
     compute-useless. The engine computes in-process. *)
  let base = with_engine ~jobs:1 render_suite in
  with_engine ~jobs:1 ~workers:2 ~worker_argv:(self_argv "fail-compute" []) (fun e ->
      let out = render_suite e in
      Alcotest.(check string) "unservable entries: tables still identical" base out;
      let c = Engine.counters e in
      Alcotest.(check int) "nothing remote" 0 c.Engine.remote;
      match Engine.dist_stats e with
      | None -> Alcotest.fail "coordinator attached but no stats"
      | Some st -> Alcotest.(check bool) "entries handed back" true (st.D.unserved > 0))

let test_engine_sigkill_identical () =
  (* The acceptance shape: a worker SIGKILLed mid-batch, the batch
     recomputed, the tables byte-identical to --workers 0. *)
  let base = with_engine ~jobs:1 render_suite in
  with_dir (fun dir ->
      with_engine ~jobs:1 ~workers:2 ~worker_argv:(self_argv "kill-once" [ dir ])
        (fun e ->
          Alcotest.(check int) "engine reports its worker count" 2 (Engine.workers e);
          let out = render_suite e in
          Alcotest.(check string) "SIGKILL mid-batch: tables byte-identical" base out;
          match Engine.dist_stats e with
          | None -> Alcotest.fail "coordinator attached but no stats"
          | Some st ->
              Alcotest.(check bool) "worker loss detected" true (st.D.lost >= 1)))

let test_resolve_workers () =
  Unix.putenv "RME_WORKERS" "3";
  Alcotest.(check int) "env respected" 3 (Engine.resolve_workers ());
  Alcotest.(check int) "flag wins" 1 (Engine.resolve_workers ~cli:1 ());
  Alcotest.(check int) "negative clamps to 0" 0 (Engine.resolve_workers ~cli:(-2) ());
  Unix.putenv "RME_WORKERS" "junk";
  Alcotest.(check int) "unparsable env is off" 0 (Engine.resolve_workers ());
  Unix.putenv "RME_WORKERS" "";
  Alcotest.(check int) "empty env is off" 0 (Engine.resolve_workers ())

let suite =
  ( "dist",
    [
      Qc.to_alcotest prop_frame_round_trip;
      Qc.to_alcotest prop_frame_garbage_total;
      Qc.to_alcotest prop_frame_read_total;
      Qc.to_alcotest prop_protocol_round_trip;
      Qc.to_alcotest prop_protocol_garbage_total;
      Alcotest.test_case "engine: cell keys decode back (worker dispatch)" `Quick
        test_cell_key_round_trip;
      Alcotest.test_case "engine: compute_encoded = direct compute" `Quick
        test_compute_encoded;
      Alcotest.test_case "worker: serve loop over pipes" `Quick test_worker_serve_loop;
      Alcotest.test_case "coordinator: echo workers serve everything" `Quick
        test_dist_echo_basic;
      Alcotest.test_case "coordinator: SIGKILL mid-batch requeues, no dup/loss" `Quick
        test_dist_sigkill_requeues;
      Alcotest.test_case "coordinator: garbage frame drops worker, requeues" `Quick
        test_dist_garbage_frame_requeues;
      Alcotest.test_case "coordinator: truncated frame drops worker, requeues" `Quick
        test_dist_truncated_frame_requeues;
      Alcotest.test_case "coordinator: wrong fingerprint disqualifies" `Quick
        test_dist_bad_fingerprint_rejected;
      Alcotest.test_case "coordinator: hung worker hits the deadline" `Quick
        test_dist_hung_worker_deadline;
      Alcotest.test_case "engine: --workers 2 tables byte-identical" `Quick
        test_engine_workers_identical;
      Alcotest.test_case "engine: unspawnable workers fall back in-process" `Quick
        test_engine_unspawnable_falls_back;
      Alcotest.test_case "engine: unservable entries fall back in-process" `Quick
        test_engine_unservable_falls_back;
      Alcotest.test_case "engine: SIGKILLed worker batch recomputed identically" `Quick
        test_engine_sigkill_identical;
      Alcotest.test_case "engine: worker count resolution order" `Quick
        test_resolve_workers;
    ] )
