(* Deterministic qcheck→alcotest bridge.

   Passing [rand] explicitly keeps [QCheck_alcotest]'s lazily
   self-initialised seed from firing — that path prints
   "qcheck random seed: ..." to stdout at suite-construction time,
   and this test binary doubles as a dist worker subprocess whose
   stdout must carry protocol frames only (see test_dist.ml). A fixed
   default seed also makes CI property failures reproducible;
   [QCHECK_SEED] still overrides it. *)

let seed () =
  match Option.bind (Sys.getenv_opt "QCHECK_SEED") int_of_string_opt with
  | Some s -> s
  | None -> 1302

let to_alcotest t =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| seed () |]) t
