(* Tests for the minimal JSON reader/writer behind the bench
   perf-regression harness (BENCH_<n>.json files). *)

module Json = Rme_util.Json

let roundtrip v =
  match Json.of_string (Json.to_string v) with
  | Ok v' -> v'
  | Error e -> Alcotest.failf "reparse failed: %s" e

let test_literals () =
  List.iter
    (fun v -> Alcotest.(check bool) "literal roundtrips" true (roundtrip v = v))
    [ Json.Null; Json.Bool true; Json.Bool false; Json.Str ""; Json.List [] ]

let test_nested_roundtrip () =
  let v =
    Json.Obj
      [
        ("schema", Json.num_int 1);
        ( "probes",
          Json.Obj
            [
              ("harness: km n=8 CC", Json.Obj [ ("ns_per_run", Json.Num 42318.7) ]);
              ("empty", Json.Obj []);
            ] );
        ("list", Json.List [ Json.num_int (-3); Json.Null; Json.Str "x\"y\\z" ]);
      ]
  in
  Alcotest.(check bool) "nested roundtrip" true (roundtrip v = v)

let test_float_fidelity () =
  (* Floats must survive print-then-parse bit-exactly: the compare
     subcommand recomputes ratios from re-read files. *)
  List.iter
    (fun f ->
      match roundtrip (Json.Num f) with
      | Json.Num f' ->
          Alcotest.(check bool)
            (Printf.sprintf "float %h survives" f)
            true
            (Int64.bits_of_float f = Int64.bits_of_float f')
      | _ -> Alcotest.fail "not a number")
    [ 0.1; 1.0 /. 3.0; 6.02e23; -0.0; 5.0; 42318.661532156956 ]

let test_integer_floats_printed_plain () =
  let s = Json.to_string (Json.num_int 1234) in
  Alcotest.(check bool) "no exponent/fraction" true
    (String.trim s = "1234")

let test_string_escapes () =
  let s = "tab\t nl\n quote\" back\\ ctrl\x01 high\xc3\xa9" in
  match roundtrip (Json.Str s) with
  | Json.Str s' -> Alcotest.(check string) "escapes roundtrip" s s'
  | _ -> Alcotest.fail "not a string"

let test_unicode_escape_parses () =
  match Json.of_string "\"a\\u00e9b\\u0041\"" with
  | Ok (Json.Str s) -> Alcotest.(check string) "utf-8 decoded" "a\xc3\xa9bA" s
  | Ok _ -> Alcotest.fail "not a string"
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_rejects_garbage () =
  List.iter
    (fun input ->
      match Json.of_string input with
      | Ok _ -> Alcotest.failf "accepted %S" input
      | Error e ->
          Alcotest.(check bool)
            (Printf.sprintf "%S error mentions offset" input)
            true
            (String.length e > 0))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "\"unterminated"; "1 2"; "{'a':1}" ]

let test_accessors () =
  let v = Json.Obj [ ("a", Json.Num 1.5); ("b", Json.Str "x") ] in
  Alcotest.(check (option (float 0.0))) "member/to_float" (Some 1.5)
    (Option.bind (Json.member "a" v) Json.to_float);
  Alcotest.(check (option string)) "member/to_str" (Some "x")
    (Option.bind (Json.member "b" v) Json.to_str);
  Alcotest.(check bool) "missing member" true (Json.member "c" v = None);
  Alcotest.(check int) "obj_bindings" 2 (List.length (Json.obj_bindings v));
  Alcotest.(check int) "obj_bindings non-obj" 0
    (List.length (Json.obj_bindings Json.Null))

(* Generator for arbitrary JSON trees of bounded depth. *)
let gen_json =
  QCheck.Gen.(
    sized_size (int_bound 4) @@ fix (fun self n ->
        let leaf =
          oneof
            [
              return Json.Null;
              map (fun b -> Json.Bool b) bool;
              (* of_string only produces finite numbers; stay in range. *)
              map (fun f -> Json.Num f) (float_bound_inclusive 1e9);
              map (fun i -> Json.num_int i) (int_range (-1000) 1000);
              map (fun s -> Json.Str s) (string_size (int_bound 12));
            ]
        in
        if n = 0 then leaf
        else
          frequency
            [
              (2, leaf);
              (1, map (fun l -> Json.List l) (list_size (int_bound 4) (self (n / 2))));
              ( 1,
                map
                  (fun l -> Json.Obj l)
                  (list_size (int_bound 4)
                     (pair (string_size (int_bound 8)) (self (n / 2)))) );
            ]))

let prop_roundtrip =
  QCheck.Test.make ~count:300 ~name:"json print/parse roundtrip"
    (QCheck.make gen_json)
    (fun v -> roundtrip v = v)

let suite =
  ( "json",
    [
      Alcotest.test_case "literals" `Quick test_literals;
      Alcotest.test_case "nested roundtrip" `Quick test_nested_roundtrip;
      Alcotest.test_case "float fidelity" `Quick test_float_fidelity;
      Alcotest.test_case "integer floats plain" `Quick
        test_integer_floats_printed_plain;
      Alcotest.test_case "string escapes" `Quick test_string_escapes;
      Alcotest.test_case "unicode escapes" `Quick test_unicode_escape_parses;
      Alcotest.test_case "malformed inputs rejected" `Quick test_rejects_garbage;
      Alcotest.test_case "accessors" `Quick test_accessors;
      Qc.to_alcotest prop_roundtrip;
    ] )
