(* The pre-optimisation CC cache: a Hashtbl-of-Hashtbls transcription
   of the paper's definition, kept as the reference implementation for
   the differential test in test_cache_diff.ml. Deliberately naive —
   every operation allocates and drop_process walks the whole cache —
   so that its verdicts are easy to audit against the CC rule by eye.

   Do not use outside tests; the production implementation is
   lib/memory/cache.ml (flat generation/epoch stamping). *)

module Intset = Rme_util.Intset

type t = {
  n : int;
  by_pid : (int, unit) Hashtbl.t array; (* pid -> set of cached locs *)
  by_loc : (int, Intset.t) Hashtbl.t; (* loc -> pids holding copies *)
}

let create ~n =
  {
    n;
    by_pid = Array.init n (fun _ -> Hashtbl.create 16);
    by_loc = Hashtbl.create 64;
  }

let n t = t.n

let has_copy t ~pid ~loc = Hashtbl.mem t.by_pid.(pid) loc

let holders t loc =
  Option.value ~default:Intset.empty (Hashtbl.find_opt t.by_loc loc)

let install t ~pid ~loc =
  if not (has_copy t ~pid ~loc) then begin
    Hashtbl.replace t.by_pid.(pid) loc ();
    Hashtbl.replace t.by_loc loc (Intset.add pid (holders t loc))
  end

let invalidate_loc t ~loc =
  Intset.iter (fun pid -> Hashtbl.remove t.by_pid.(pid) loc) (holders t loc);
  Hashtbl.remove t.by_loc loc

let access t ~pid ~loc ~is_read =
  if is_read then begin
    let rmr = not (has_copy t ~pid ~loc) in
    install t ~pid ~loc;
    rmr
  end
  else begin
    invalidate_loc t ~loc;
    true
  end

let drop_process t ~pid =
  Hashtbl.iter
    (fun loc () ->
      let remaining = Intset.remove pid (holders t loc) in
      if Intset.is_empty remaining then Hashtbl.remove t.by_loc loc
      else Hashtbl.replace t.by_loc loc remaining)
    t.by_pid.(pid);
  Hashtbl.reset t.by_pid.(pid)

let valid_set t ~pid =
  Hashtbl.fold (fun loc () acc -> Intset.add loc acc) t.by_pid.(pid) Intset.empty

let clear t =
  Array.iter Hashtbl.reset t.by_pid;
  Hashtbl.reset t.by_loc

let copy t =
  let fresh = create ~n:t.n in
  Array.iteri
    (fun pid locs -> Hashtbl.iter (fun loc () -> install fresh ~pid ~loc) locs)
    t.by_pid;
  fresh
