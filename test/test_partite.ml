(* Tests for hypergraph representation and the Definition 3 operators. *)

module P = Rme_core.Partite
module Intset = Rme_util.Intset

let parts2 = [| [| 1; 2 |]; [| 10; 20 |] |]

let test_complete () =
  let h = P.complete ~parts:parts2 in
  Alcotest.(check int) "4 edges" 4 (P.num_edges h);
  Alcotest.(check int) "2 parts" 2 (P.num_parts h);
  Alcotest.(check bool) "contains (1,10)" true
    (List.exists (fun e -> e = [| 1; 10 |]) h.P.edges)

let test_complete_three_parts () =
  let h = P.complete ~parts:[| [| 1 |]; [| 2; 3 |]; [| 4; 5; 6 |] |] in
  Alcotest.(check int) "6 edges" 6 (P.num_edges h)

let test_create_validates () =
  Alcotest.(check bool) "valid accepted" true
    (P.create ~parts:parts2 ~edges:[ [| 1; 10 |] ] |> fun h -> P.num_edges h = 1);
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "Partite: edge arity differs from the number of parts")
    (fun () -> ignore (P.create ~parts:parts2 ~edges:[ [| 1 |] ]));
  Alcotest.check_raises "foreign vertex"
    (Invalid_argument "Partite: vertex 99 is not in part 1") (fun () ->
      ignore (P.create ~parts:parts2 ~edges:[ [| 1; 99 |] ]))

let test_sigma_pi () =
  let h = P.complete ~parts:parts2 in
  let s = P.sigma_z ~part:0 ~z:1 h.P.edges in
  Alcotest.(check int) "sigma keeps whole edges" 2 (List.length s);
  Alcotest.(check bool) "all contain z" true (List.for_all (fun e -> e.(0) = 1) s);
  let p = P.pi_z ~part:0 ~z:1 h.P.edges in
  Alcotest.(check int) "pi strips z" 2 (List.length p);
  Alcotest.(check bool) "pi arity" true (List.for_all (fun e -> Array.length e = 1) p)

let test_pi_dedups () =
  (* Two identical edges would project to the same tail. *)
  let edges = [ [| 1; 10 |]; [| 1; 10 |] ] in
  let p = P.pi_z ~part:0 ~z:1 edges in
  Alcotest.(check int) "set semantics" 1 (List.length p)

let test_pi_middle_part () =
  let h = P.complete ~parts:[| [| 1; 2 |]; [| 3; 4 |]; [| 5 |] |] in
  let p = P.pi_z ~part:1 ~z:3 h.P.edges in
  Alcotest.(check int) "2 tails" 2 (List.length p);
  Alcotest.(check bool) "tail skips middle" true
    (List.for_all (fun e -> Array.length e = 2 && e.(1) = 5) p)

let test_vertices_of_edges () =
  let u = P.vertices_of_edges [ [| 1; 10 |]; [| 2; 10 |] ] in
  Alcotest.(check bool) "union" true (Intset.equal u (Intset.of_list [ 1; 2; 10 ]))

let test_tail_key () =
  Alcotest.(check (array int)) "drop first" [| 2; 3 |] (P.tail_key ~part:0 [| 1; 2; 3 |]);
  Alcotest.(check (array int)) "drop middle" [| 1; 3 |] (P.tail_key ~part:1 [| 1; 2; 3 |])

let test_group_by_value () =
  let h = P.complete ~parts:parts2 in
  let tbl = P.group_by_value h.P.edges ~f:(fun e -> e.(1)) in
  Alcotest.(check int) "two classes" 2 (Hashtbl.length tbl);
  Alcotest.(check int) "class size" 2 (List.length (Hashtbl.find tbl 10))

let test_filter_by_value () =
  let h = P.complete ~parts:parts2 in
  let f e = e.(0) + e.(1) in
  Alcotest.(check int) "filter" 1 (List.length (P.filter_by_value h ~f ~value:11))

let prop_complete_count =
  QCheck.Test.make ~name:"complete hypergraph has product-many edges"
    QCheck.(pair (int_range 1 4) (int_range 1 4))
    (fun (a, b) ->
      let parts = [| Array.init a (fun i -> i); Array.init b (fun i -> 100 + i) |] in
      P.num_edges (P.complete ~parts) = a * b)

let suite =
  ( "partite",
    [
      Alcotest.test_case "complete 2-partite" `Quick test_complete;
      Alcotest.test_case "complete 3-partite" `Quick test_complete_three_parts;
      Alcotest.test_case "create validates" `Quick test_create_validates;
      Alcotest.test_case "sigma and pi" `Quick test_sigma_pi;
      Alcotest.test_case "pi is a set" `Quick test_pi_dedups;
      Alcotest.test_case "pi on middle part" `Quick test_pi_middle_part;
      Alcotest.test_case "vertex union" `Quick test_vertices_of_edges;
      Alcotest.test_case "tail keys" `Quick test_tail_key;
      Alcotest.test_case "group by value" `Quick test_group_by_value;
      Alcotest.test_case "filter by value" `Quick test_filter_by_value;
      Qc.to_alcotest prop_complete_count;
    ] )
