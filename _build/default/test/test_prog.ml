(* Tests for the free-monad process programs. *)

module Prog = Rme_sim.Prog
module Memory = Rme_memory.Memory
module Op = Rme_memory.Op
open Prog.Infix

(* Run a program to completion against a memory, as process [pid]. *)
let rec interp m ~pid = function
  | Prog.Return x -> x
  | Prog.Step (loc, op, k) -> interp m ~pid (k (Memory.apply m ~pid loc op))

let test_return () =
  let m = Memory.create ~width:8 in
  Alcotest.(check int) "return" 42 (interp m ~pid:0 (Prog.return 42))

let test_read_write () =
  let m = Memory.create ~width:8 in
  let l = Memory.alloc m ~init:7 in
  let p =
    let* v = Prog.read l in
    let* () = Prog.write l (v + 1) in
    Prog.read l
  in
  Alcotest.(check int) "sequencing" 8 (interp m ~pid:0 p)

let test_cas_result () =
  let m = Memory.create ~width:8 in
  let l = Memory.alloc m ~init:5 in
  Alcotest.(check bool) "cas success" true
    (interp m ~pid:0 (Prog.cas l ~expected:5 ~desired:9));
  Alcotest.(check bool) "cas failure" false
    (interp m ~pid:0 (Prog.cas l ~expected:5 ~desired:9));
  Alcotest.(check int) "value" 9 (Memory.value m l)

let test_fas_faa () =
  let m = Memory.create ~width:8 in
  let l = Memory.alloc m ~init:5 in
  Alcotest.(check int) "fas returns old" 5 (interp m ~pid:0 (Prog.fas l 1));
  Alcotest.(check int) "faa returns old" 1 (interp m ~pid:0 (Prog.faa l 10));
  Alcotest.(check int) "fai returns old" 11 (interp m ~pid:0 (Prog.fai l));
  Alcotest.(check int) "value" 12 (Memory.value m l)

let test_peek () =
  let l = 3 in
  let p = Prog.write l 5 in
  (match Prog.peek p with
  | Some (loc, Op.Write 5) -> Alcotest.(check int) "loc" l loc
  | Some _ | None -> Alcotest.fail "expected poised write");
  Alcotest.(check bool) "returned program peeks None" true
    (Prog.peek (Prog.return ()) = None)

let test_peek_does_not_execute () =
  let m = Memory.create ~width:8 in
  let l = Memory.alloc m ~init:0 in
  let p = Prog.write l 9 in
  ignore (Prog.peek p);
  Alcotest.(check int) "unchanged" 0 (Memory.value m l)

let test_await_spins () =
  (* [await] re-reads one location per scheduler step. *)
  let m = Memory.create ~width:8 in
  let l = Memory.alloc m ~init:0 in
  let p = ref (Prog.map ignore (Prog.await l (fun v -> v = 3))) in
  let step () =
    match !p with
    | Prog.Step (loc, op, k) -> p := k (Memory.apply m ~pid:0 loc op)
    | Prog.Return () -> Alcotest.fail "returned early"
  in
  step ();
  step ();
  Alcotest.(check bool) "still spinning" true (Prog.peek !p <> None);
  ignore (Memory.apply m ~pid:1 l (Op.Write 3));
  step ();
  Alcotest.(check bool) "done after condition" true (Prog.peek !p = None)

let test_repeat_until () =
  let m = Memory.create ~width:8 in
  let l = Memory.alloc m ~init:0 in
  let body () =
    let* v = Prog.fai l in
    Prog.return (if v >= 4 then Some v else None)
  in
  Alcotest.(check int) "loops until Some" 4 (interp m ~pid:0 (Prog.repeat_until body))

let test_bind_associativity () =
  (* (m >>= f) >>= g behaves as m >>= (fun x -> f x >>= g). *)
  let mem () =
    let m = Memory.create ~width:8 in
    (m, Memory.alloc m ~init:1)
  in
  let f v = Prog.faa 0 v in
  let g v = Prog.faa 0 (v * 2) in
  let m1, _ = mem () and m2, _ = mem () in
  let left = Prog.bind (Prog.bind (Prog.read 0) f) g in
  let right = Prog.bind (Prog.read 0) (fun x -> Prog.bind (f x) g) in
  Alcotest.(check int) "same result" (interp m1 ~pid:0 left) (interp m2 ~pid:0 right);
  Alcotest.(check int) "same memory" (Memory.value m1 0) (Memory.value m2 0)

let test_map () =
  let m = Memory.create ~width:8 in
  let l = Memory.alloc m ~init:20 in
  let p = Prog.map (fun v -> v + 1) (Prog.read l) in
  Alcotest.(check int) "map applies" 21 (interp m ~pid:0 p)

let suite =
  ( "prog",
    [
      Alcotest.test_case "return" `Quick test_return;
      Alcotest.test_case "read/write sequencing" `Quick test_read_write;
      Alcotest.test_case "cas returns success" `Quick test_cas_result;
      Alcotest.test_case "fas/faa/fai return old values" `Quick test_fas_faa;
      Alcotest.test_case "peek reveals poised op" `Quick test_peek;
      Alcotest.test_case "peek has no effect" `Quick test_peek_does_not_execute;
      Alcotest.test_case "await spins one read per step" `Quick test_await_spins;
      Alcotest.test_case "repeat_until" `Quick test_repeat_until;
      Alcotest.test_case "bind associativity" `Quick test_bind_associativity;
      Alcotest.test_case "map" `Quick test_map;
    ] )
