(* Tests for the system-wide crash model: the harness's simultaneous
   crash policies and the epoch-MCS lock, which achieves constant RMRs
   per passage in this model — the separation from Theorem 1 the paper's
   conclusion discusses. *)

module H = Rme_sim.Harness
module Rmr = Rme_memory.Rmr
module EM = Rme_locks.Epoch_mcs

let assert_ok name (r : H.result) =
  if not r.H.ok then
    Alcotest.failf "%s: ok=false (completed=%b, violations=%s)" name r.H.completed
      (String.concat "; " r.H.violations)

let base ?(n = 6) ?(w = 16) ?(sp = 3) model =
  { (H.default_config ~n ~width:w model) with superpassages = sp }

let test_crash_free () =
  List.iter
    (fun model ->
      let r = H.run (base model) EM.factory in
      assert_ok "epoch-mcs crash-free" r)
    Rmr.all_models

let test_single_system_crash () =
  List.iter
    (fun s ->
      let c =
        { (base Rmr.Cc) with crashes = H.System_crash_script [ s ] }
      in
      let r = H.run c EM.factory in
      assert_ok (Printf.sprintf "system crash @%d" s) r;
      Alcotest.(check bool) "everyone active crashed" true (r.H.total_crashes >= 1))
    [ 0; 3; 7; 15; 40; 80 ]

let test_every_system_crash_point () =
  (* One system crash at every step of a short run, both models. *)
  List.iter
    (fun model ->
      let crash_free = H.run (base ~n:3 ~sp:1 model) EM.factory in
      assert_ok "baseline" crash_free;
      for s = 0 to crash_free.H.steps - 1 do
        let c =
          {
            (base ~n:3 ~sp:1 model) with
            crashes = H.System_crash_script [ s ];
            allow_cs_crash = true;
          }
        in
        let r = H.run c EM.factory in
        assert_ok
          (Printf.sprintf "epoch-mcs %s system crash @%d" (Rmr.model_name model) s)
          r
      done)
    Rmr.all_models

let test_double_system_crashes () =
  let crash_free = H.run (base ~n:3 ~sp:2 Rmr.Cc) EM.factory in
  let horizon = min 80 crash_free.H.steps in
  let stride = max 1 (horizon / 10) in
  for i = 0 to (horizon / stride) - 1 do
    for j = i to (horizon / stride) - 1 do
      let c =
        {
          (base ~n:3 ~sp:2 Rmr.Cc) with
          crashes = H.System_crash_script [ i * stride; j * stride ];
          allow_cs_crash = true;
        }
      in
      let r = H.run c EM.factory in
      assert_ok (Printf.sprintf "system crashes @%d @%d" (i * stride) (j * stride)) r
    done
  done

let test_crash_storms () =
  List.iter
    (fun seed ->
      let c =
        {
          (base ~n:8 ~sp:3 Rmr.Cc) with
          policy = H.Random_policy seed;
          crashes = H.System_crash_prob { prob = 0.01; seed; max = 6 };
          allow_cs_crash = true;
        }
      in
      let r = H.run c EM.factory in
      assert_ok (Printf.sprintf "system storm %d" seed) r)
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

(* The headline separation: O(1) RMRs per passage *despite* crashes —
   the per-passage maximum does not grow with n (contrast Theorem 1,
   which forces growth in the individual-crash model). *)
let test_constant_rmr_in_n () =
  let max_rmr n =
    let c =
      {
        (base ~n ~sp:2 Rmr.Cc) with
        crashes = H.System_crash_script [ 5; 60 ];
        allow_cs_crash = true;
      }
    in
    let r = H.run c EM.factory in
    assert_ok (Printf.sprintf "n=%d" n) r;
    r.H.max_passage_rmr
  in
  let r8 = max_rmr 8 and r32 = max_rmr 32 and r64 = max_rmr 64 in
  Alcotest.(check bool)
    (Printf.sprintf "constant-ish in n: %d %d %d" r8 r32 r64)
    true
    (r64 <= r8 + 4 && r32 <= r8 + 4)

let test_individual_crash_semantics_guard () =
  (* The harness accepts individual crashes for epoch-mcs (it is marked
     recoverable), but the lock's model assumption is system-wide; this
     test documents that the *system* policies are the supported ones by
     exercising both system policies and checking the epoch counter. *)
  let c =
    { (base ~n:4 ~sp:2 Rmr.Cc) with crashes = H.System_crash_script [ 4; 9 ] }
  in
  let r = H.run c EM.factory in
  assert_ok "scripted" r;
  (* Two system crashes happened: 4 processes, at most 2 crashes each. *)
  Array.iter
    (fun (p : H.proc_stats) ->
      Alcotest.(check bool) "per-process crash count bounded" true (p.H.crashes <= 2))
    r.H.procs

let suite =
  ( "system-crash",
    [
      Alcotest.test_case "crash-free" `Quick test_crash_free;
      Alcotest.test_case "single system crash" `Quick test_single_system_crash;
      Alcotest.test_case "every system-crash point" `Slow test_every_system_crash_point;
      Alcotest.test_case "double system crashes" `Slow test_double_system_crashes;
      Alcotest.test_case "probabilistic storms" `Quick test_crash_storms;
      Alcotest.test_case "O(1) RMRs in n despite crashes" `Quick test_constant_rmr_in_n;
      Alcotest.test_case "crash accounting" `Quick test_individual_crash_semantics_guard;
    ] )
