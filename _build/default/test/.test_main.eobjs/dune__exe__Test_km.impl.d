test/test_km.ml: Alcotest List Printf Rme_locks Rme_memory Rme_sim String
