test/test_util.ml: Alcotest Array Gen QCheck QCheck_alcotest Rme_util String
