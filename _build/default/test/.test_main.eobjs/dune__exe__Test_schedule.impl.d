test/test_schedule.ml: Alcotest Array List Rme_core Rme_locks Rme_memory Rme_util
