test/test_system_crash.ml: Alcotest Array List Printf Rme_locks Rme_memory Rme_sim String
