test/test_harness.ml: Alcotest Array List Rme_locks Rme_memory Rme_sim
