test/test_machine.ml: Alcotest List Printf Rme_core Rme_locks Rme_memory Rme_sim
