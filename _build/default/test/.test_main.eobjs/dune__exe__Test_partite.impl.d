test/test_partite.ml: Alcotest Array Hashtbl List QCheck QCheck_alcotest Rme_core Rme_util
