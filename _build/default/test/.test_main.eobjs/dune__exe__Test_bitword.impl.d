test/test_bitword.ml: Alcotest Format QCheck QCheck_alcotest Rme_util
