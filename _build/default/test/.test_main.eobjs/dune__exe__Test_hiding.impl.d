test/test_hiding.ml: Alcotest Array Lazy List Printf QCheck QCheck_alcotest Rme_core Rme_util
