test/test_prog.ml: Alcotest Rme_memory Rme_sim
