test/test_memory.ml: Alcotest Array List QCheck QCheck_alcotest Rme_memory Rme_util
