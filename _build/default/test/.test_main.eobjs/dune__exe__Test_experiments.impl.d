test/test_experiments.ml: Alcotest List Rme_experiments Rme_util String
