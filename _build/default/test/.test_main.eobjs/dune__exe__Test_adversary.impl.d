test/test_adversary.ml: Alcotest Array Float Format List Printf QCheck QCheck_alcotest Rme_core Rme_locks Rme_memory Rme_sim Rme_util
