test/test_lemmas.ml: Alcotest Array Float List QCheck QCheck_alcotest Result Rme_core Rme_util
