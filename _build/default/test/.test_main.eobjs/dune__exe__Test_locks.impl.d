test/test_locks.ml: Alcotest Array List Printf QCheck QCheck_alcotest Rme_locks Rme_memory Rme_sim String
