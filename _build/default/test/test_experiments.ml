(* End-to-end tests of the experiment harness: each experiment runs with
   reduced parameters, produces non-empty tables, and contains no FAIL
   cells. *)

module E = Rme_experiments.Experiments
module Table = Rme_util.Table

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec loop i = i + nl <= hl && (String.sub haystack i nl = needle || loop (i + 1)) in
  loop 0

let check_tables name tables =
  Alcotest.(check bool) (name ^ ": produced tables") true (tables <> []);
  List.iter
    (fun t ->
      let rendered = Table.render t in
      Alcotest.(check bool) (name ^ ": non-trivial") true (String.length rendered > 40);
      Alcotest.(check bool)
        (name ^ ": no FAIL cells in " ^ rendered)
        false
        (contains ~needle:"FAIL" rendered))
    tables

let test_e1 () =
  check_tables "e1" (E.e1_lock_landscape ~ns:[ 2; 4; 8 ] ())

let test_e2 () =
  check_tables "e2" (E.e2_word_size_tradeoff ~ns:[ 8; 16 ] ~ws:[ 2; 8; 32 ] ())

let test_e3 () =
  check_tables "e3" (E.e3_adversary_bound ~ns:[ 32; 64 ] ~ws:[ 8; 16 ] ())

let test_e5 () = check_tables "e5" (E.e5_crash_cost ~n:4 ~probs:[ 0.0; 0.05 ] ())

let test_e6 () = check_tables "e6" (E.e6_model_comparison ~n:8 ())

let test_e7 () = check_tables "e7" (E.e7_crossover ~n:1024 ~ws:[ 2; 8; 32 ] ())

let test_e8 () = check_tables "e8" (E.e8_system_wide ~ns:[ 4; 8 ] ())

let test_a1 () = check_tables "a1" (E.a1_arity_ablation ~n:32 ~arities:[ 2; 8 ] ())

let test_a2 () = check_tables "a2" (E.a2_k_ablation ~n:64 ~ks:[ 17; 32 ] ())

let test_run_one () =
  Alcotest.(check bool) "unknown id" true (E.run_one "zzz" = None);
  Alcotest.(check int) "catalogue size" 12 (List.length E.all);
  Alcotest.(check bool) "ids unique" true
    (let ids = List.map (fun (i, _, _) -> i) E.all in
     List.length ids = List.length (List.sort_uniq compare ids))

let suite =
  ( "experiments",
    [
      Alcotest.test_case "e1 landscape" `Quick test_e1;
      Alcotest.test_case "e2 word-size" `Quick test_e2;
      Alcotest.test_case "e3 adversary" `Quick test_e3;
      Alcotest.test_case "e5 crashes" `Quick test_e5;
      Alcotest.test_case "e6 models" `Quick test_e6;
      Alcotest.test_case "e7 crossover" `Quick test_e7;
      Alcotest.test_case "e8 system-wide" `Quick test_e8;
      Alcotest.test_case "a1 arity ablation" `Quick test_a1;
      Alcotest.test_case "a2 k ablation" `Quick test_a2;
      Alcotest.test_case "catalogue" `Quick test_run_one;
    ] )
