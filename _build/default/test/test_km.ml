(* Katzan–Morrison-specific tests: arity selection, level structure,
   forced-arity variants, recovery classification, and the word-size
   sweep at scale. *)

module H = Rme_sim.Harness
module KM = Rme_locks.Katzan_morrison
module Rmr = Rme_memory.Rmr
module Lock_intf = Rme_sim.Lock_intf

let assert_ok name (r : H.result) =
  if not r.H.ok then
    Alcotest.failf "%s: ok=false (completed=%b, violations=%s)" name r.H.completed
      (String.concat "; " r.H.violations)

let run ?(n = 8) ?(w = 16) ?(sp = 2) ?(policy = H.Round_robin) ?crashes
    ?(allow_cs_crash = false) ?(max_crashes = 1) model factory =
  let cfg =
    {
      (H.default_config ~n ~width:w model) with
      superpassages = sp;
      policy;
      allow_cs_crash;
      max_crashes_per_process = max_crashes;
    }
  in
  let cfg = match crashes with Some c -> { cfg with H.crashes = c } | None -> cfg in
  H.run cfg factory

let test_forced_arities () =
  (* Forcing arity b on a width-w memory, for every b <= w. *)
  List.iter
    (fun b ->
      let f = KM.factory_with_arity b in
      let r = run ~n:10 ~w:16 ~policy:(H.Random_policy b) Rmr.Cc f in
      assert_ok (Printf.sprintf "km arity %d" b) r)
    [ 2; 3; 4; 8; 16 ]

let test_arity_exceeding_width_rejected () =
  let f = KM.factory_with_arity 16 in
  Alcotest.(check bool) "b > w rejected" true
    (try
       ignore (run ~n:8 ~w:8 Rmr.Cc f);
       false
     with Invalid_argument _ -> true)

let test_wider_arity_fewer_rmrs () =
  (* At n = 64, arity 2 gives 6 levels; arity 8 gives 2. *)
  let rmrs b =
    let r = run ~n:64 ~w:32 ~sp:1 (Rmr.Dsm) (KM.factory_with_arity b) in
    assert_ok (Printf.sprintf "arity %d" b) r;
    r.H.max_passage_rmr
  in
  Alcotest.(check bool) "b=8 cheaper than b=2" true (rmrs 8 < rmrs 2)

let test_narrowest_width () =
  (* w = 2 forces binary arity and multi-word pids. *)
  let r = run ~n:12 ~w:2 ~sp:2 ~policy:(H.Random_policy 17) Rmr.Cc KM.factory in
  assert_ok "km w=2" r

let test_width_sweep_shape () =
  (* The headline tradeoff at n = 128: passage RMRs fall as w grows.
     Widths giving the same tree depth can differ slightly from
     contention noise, so the check allows 15% slack per step and
     requires a large overall drop. *)
  let rmrs w =
    let r = run ~n:128 ~w ~sp:1 ~policy:(H.Random_policy 3) Rmr.Dsm KM.factory in
    assert_ok (Printf.sprintf "w=%d" w) r;
    r.H.max_passage_rmr
  in
  let seq = List.map rmrs [ 2; 4; 8; 16; 32 ] in
  let rec mostly_decreasing = function
    | a :: b :: rest -> (b <= a + (a * 15 / 100)) && mostly_decreasing (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool)
    (Printf.sprintf "mostly decreasing: %s"
       (String.concat " ~>= " (List.map string_of_int seq)))
    true (mostly_decreasing seq);
  let first = List.hd seq and last = List.nth seq (List.length seq - 1) in
  Alcotest.(check bool) "w=2 costs at least 3x w=32" true (first >= 3 * last)

let test_crash_storm_many_seeds () =
  List.iter
    (fun seed ->
      let r =
        run ~n:8 ~w:8 ~sp:3 ~policy:(H.Random_policy seed)
          ~crashes:(H.Crash_prob { prob = 0.04; seed = seed * 7 })
          ~allow_cs_crash:true ~max_crashes:4 Rmr.Cc KM.factory
      in
      assert_ok (Printf.sprintf "km storm %d" seed) r)
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let test_crash_storm_dsm_narrow () =
  (* Narrow words + DSM + crashes: the most delicate recovery paths
     (multi-word who/pid chunks, succ/xdone bookkeeping). *)
  List.iter
    (fun seed ->
      let r =
        run ~n:9 ~w:3 ~sp:2 ~policy:(H.Random_policy seed)
          ~crashes:(H.Crash_prob { prob = 0.05; seed })
          ~allow_cs_crash:true ~max_crashes:3 Rmr.Dsm KM.factory
      in
      assert_ok (Printf.sprintf "km narrow storm %d" seed) r)
    [ 11; 22; 33; 44 ]

let test_systematic_crash_points () =
  (* Crash every process at every step of a short run — the full
     single-crash state space of the handoff protocol. *)
  let n = 3 and w = 4 in
  List.iter
    (fun model ->
      let base = { (H.default_config ~n ~width:w model) with superpassages = 1 } in
      let crash_free = H.run base KM.factory in
      assert_ok "baseline" crash_free;
      for s = 0 to crash_free.H.steps - 1 do
        for p = 0 to n - 1 do
          let cfg =
            { base with H.crashes = H.Crash_script [ (s, p) ]; allow_cs_crash = true }
          in
          let r = H.run cfg KM.factory in
          assert_ok (Printf.sprintf "km %s crash p%d@%d" (Rmr.model_name model) p s) r
        done
      done)
    Rmr.all_models

let test_double_crash_same_process () =
  let n = 3 and w = 4 in
  let base = { (H.default_config ~n ~width:w Rmr.Cc) with superpassages = 1 } in
  let crash_free = H.run base KM.factory in
  let horizon = min 60 crash_free.H.steps in
  let stride = max 1 (horizon / 10) in
  for i = 0 to (horizon / stride) - 1 do
    for j = i to (horizon / stride) - 1 do
      let s1 = i * stride and s2 = j * stride in
      let cfg =
        {
          base with
          H.crashes = H.Crash_script [ (s1, 0); (s2, 0) ];
          allow_cs_crash = true;
          max_crashes_per_process = 2;
        }
      in
      let r = H.run cfg KM.factory in
      assert_ok (Printf.sprintf "km double crash @%d @%d" s1 s2) r
    done
  done

let test_min_width_is_two () =
  Alcotest.(check int) "min width" 2 (KM.factory.Lock_intf.min_width ~n:1000);
  Alcotest.(check int) "forced arity min width" 8
    ((KM.factory_with_arity 8).Lock_intf.min_width ~n:1000)

let suite =
  ( "katzan-morrison",
    [
      Alcotest.test_case "forced arities" `Quick test_forced_arities;
      Alcotest.test_case "arity > width rejected" `Quick test_arity_exceeding_width_rejected;
      Alcotest.test_case "wider arity costs fewer RMRs" `Quick test_wider_arity_fewer_rmrs;
      Alcotest.test_case "narrowest width (w=2)" `Quick test_narrowest_width;
      Alcotest.test_case "width sweep is monotone" `Quick test_width_sweep_shape;
      Alcotest.test_case "crash storms (CC)" `Quick test_crash_storm_many_seeds;
      Alcotest.test_case "crash storms (DSM, narrow words)" `Quick
        test_crash_storm_dsm_narrow;
      Alcotest.test_case "every single-crash point" `Slow test_systematic_crash_points;
      Alcotest.test_case "double crashes, same process" `Slow test_double_crash_same_process;
      Alcotest.test_case "minimum widths" `Quick test_min_width_is_two;
    ] )
