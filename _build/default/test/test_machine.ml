(* Tests for the adversary-controlled machine. *)

module M = Rme_core.Machine
module Rmr = Rme_memory.Rmr
module Op = Rme_memory.Op

let mk ?(n = 4) ?(w = 16) ?(model = Rmr.Cc) factory = M.create ~n ~width:w ~model factory

let test_initial_phase () =
  let m = mk Rme_locks.Rcas.factory in
  for p = 0 to 3 do
    Alcotest.(check bool) "in entry" true (M.phase m ~pid:p = M.In_entry);
    Alcotest.(check bool) "poised" true (M.peek m ~pid:p <> None)
  done

let test_peek_then_step_consistent () =
  let m = mk Rme_locks.Rcas.factory in
  match M.peek m ~pid:0 with
  | None -> Alcotest.fail "not poised"
  | Some (loc, _op) ->
      let info = M.step m ~pid:0 in
      Alcotest.(check int) "same loc" loc info.M.loc

let test_run_to_completion_solo () =
  let m = mk ~n:1 Rme_locks.Rcas.factory in
  let steps = ref 0 in
  let ok = M.run_to_completion m ~pid:0 ~cap:1000 ~on_step:(fun _ -> incr steps) in
  Alcotest.(check bool) "completed" true ok;
  Alcotest.(check bool) "took steps" true (!steps > 0);
  Alcotest.(check bool) "phase done" true (M.completed m ~pid:0);
  Alcotest.(check int) "entered CS once" 1 (M.cs_entries m ~pid:0)

let test_blocked_completion () =
  (* p0 takes the lock; p1 cannot complete. *)
  let m = mk ~n:2 Rme_locks.Rcas.factory in
  (* run p0 until it is in the CS *)
  let guard = ref 0 in
  while M.phase m ~pid:0 <> M.In_cs && !guard < 100 do
    ignore (M.step m ~pid:0);
    incr guard
  done;
  Alcotest.(check bool) "p0 in CS" true (M.phase m ~pid:0 = M.In_cs);
  let ok = M.run_to_completion m ~pid:1 ~cap:500 ~on_step:(fun _ -> ()) in
  Alcotest.(check bool) "p1 blocked" false ok

let test_crash_resets_continuation () =
  let m = mk ~n:2 Rme_locks.Rcas.factory in
  ignore (M.step m ~pid:0);
  M.crash m ~pid:0;
  Alcotest.(check int) "crash counted" 1 (M.crashes m ~pid:0);
  Alcotest.(check bool) "in recovery" true (M.phase m ~pid:0 = M.In_recovery);
  (* Recovery must lead back to a completable state. *)
  let ok = M.run_to_completion m ~pid:0 ~cap:1000 ~on_step:(fun _ -> ()) in
  Alcotest.(check bool) "completes after crash" true ok

let test_crash_drops_cache () =
  let m = mk ~n:2 ~model:Rmr.Cc Rme_locks.Rcas.factory in
  (* status write then await-read: run two steps so p0 caches the lock word *)
  ignore (M.step m ~pid:0);
  ignore (M.step m ~pid:0);
  let rmrs_before = M.total_rmrs m ~pid:0 in
  M.crash m ~pid:0;
  (* Totals survive the crash; the cache does not (observable via
     poised_rmr on the lock word read in recovery, which is remote again). *)
  Alcotest.(check int) "totals kept" rmrs_before (M.total_rmrs m ~pid:0)

let test_run_while_local_dsm () =
  (* In DSM, rcas's first entry step (own status word) is local; the
     await read of the shared lock word is remote. *)
  let m = mk ~n:2 ~model:Rmr.Dsm Rme_locks.Rcas.factory in
  let taken = M.run_while_local m ~pid:0 ~cap:100 in
  Alcotest.(check int) "one local step" 1 taken;
  Alcotest.(check bool) "now poised on RMR" true (M.poised_rmr m ~pid:0);
  Alcotest.(check int) "no RMRs incurred" 0 (M.total_rmrs m ~pid:0)

let test_run_while_local_cc () =
  (* In CC, every write is remote: the status write is already an RMR. *)
  let m = mk ~n:2 ~model:Rmr.Cc Rme_locks.Rcas.factory in
  let taken = M.run_while_local m ~pid:0 ~cap:100 in
  Alcotest.(check int) "no local steps" 0 taken;
  Alcotest.(check bool) "poised on RMR" true (M.poised_rmr m ~pid:0)

let test_step_on_completed_rejected () =
  let m = mk ~n:1 Rme_locks.Rcas.factory in
  ignore (M.run_to_completion m ~pid:0 ~cap:1000 ~on_step:(fun _ -> ()));
  Alcotest.check_raises "step after done"
    (Invalid_argument "Machine.step: process already completed") (fun () ->
      ignore (M.step m ~pid:0))

let test_width_check () =
  Alcotest.(check bool) "narrow width rejected" true
    (try
       ignore (M.create ~n:300 ~width:4 ~model:Rmr.Cc Rme_locks.Rcas.factory);
       false
     with Invalid_argument _ -> true)

let test_all_complete_sequentially () =
  (* Any lock: run processes to completion one after another. *)
  List.iter
    (fun (factory : Rme_sim.Lock_intf.factory) ->
      let m = mk ~n:4 factory in
      for p = 0 to 3 do
        let ok = M.run_to_completion m ~pid:p ~cap:5_000 ~on_step:(fun _ -> ()) in
        Alcotest.(check bool)
          (Printf.sprintf "%s p%d completes" factory.Rme_sim.Lock_intf.name p)
          true ok
      done)
    Rme_locks.Registry.all

let suite =
  ( "machine",
    [
      Alcotest.test_case "initial phases" `Quick test_initial_phase;
      Alcotest.test_case "peek/step consistency" `Quick test_peek_then_step_consistent;
      Alcotest.test_case "solo completion" `Quick test_run_to_completion_solo;
      Alcotest.test_case "blocked completion hits cap" `Quick test_blocked_completion;
      Alcotest.test_case "crash resets continuation" `Quick test_crash_resets_continuation;
      Alcotest.test_case "crash keeps RMR totals" `Quick test_crash_drops_cache;
      Alcotest.test_case "run_while_local (DSM)" `Quick test_run_while_local_dsm;
      Alcotest.test_case "run_while_local (CC)" `Quick test_run_while_local_cc;
      Alcotest.test_case "step after completion rejected" `Quick
        test_step_on_completed_rejected;
      Alcotest.test_case "width checked" `Quick test_width_check;
      Alcotest.test_case "sequential completion, all locks" `Quick
        test_all_complete_sequentially;
    ] )
