(* Tests for the replayable-schedule substrate, including negative
   tests: a tampered record must make the replay checker raise
   [Diverged], and a tampered schedule must surface as invariant
   violations in the schedule table. *)

module A = Rme_core.Adversary
module S = Rme_core.Schedule
module T = Rme_core.Schedule_table
module Rmr = Rme_memory.Rmr
module Intset = Rme_util.Intset

let committed () =
  let cfg = { (A.default_config ~n:8 ~width:16 Rmr.Cc) with A.k = 4 } in
  (A.run cfg Rme_locks.Rcas.factory).A.schedule

let test_full_replay_consistent () =
  let sched = committed () in
  let play = S.replay sched.A.ctx sched.A.directives in
  Alcotest.(check bool) "assertions performed" true (play.S.checked > 0)

let test_filtered_replay_consistent () =
  (* Dropping any single *removed-eligible* pid keeps the replay
     consistent by construction; here we drop the processes the
     adversary itself never removed and expect consistency for subsets
     containing all finishers. *)
  let sched = committed () in
  let last = List.nth sched.A.metas (List.length sched.A.metas - 1) in
  let keepable = Intset.union last.A.meta_active last.A.meta_finished in
  (* Remove one active process: the construction promises nobody saw it. *)
  match Intset.to_sorted_list last.A.meta_active with
  | [] -> Alcotest.fail "no actives"
  | z :: _ ->
      let keep p = Intset.mem p (Intset.remove z keepable) in
      let play = S.replay sched.A.ctx ~keep sched.A.directives in
      Alcotest.(check bool) "filtered replay ok" true (play.S.checked > 0)

let test_tampered_record_diverges () =
  let sched = committed () in
  (* Corrupt the first step record's expected old value. *)
  let directives = Array.copy sched.A.directives in
  let idx = ref None in
  Array.iteri
    (fun i (d, r) ->
      if !idx = None then
        match (d, r) with
        | S.D_step _, S.R_step { loc; old_value } ->
            idx := Some (i, d, loc, old_value)
        | _ -> ())
    directives;
  match !idx with
  | None -> Alcotest.fail "no step directive found"
  | Some (i, d, loc, old_value) ->
      directives.(i) <- (d, S.R_step { loc; old_value = old_value + 1 });
      Alcotest.(check bool) "diverges" true
        (try
           ignore (S.replay sched.A.ctx directives);
           false
         with S.Diverged _ -> true)

let test_tampered_directive_diverges () =
  let sched = committed () in
  let directives = Array.copy sched.A.directives in
  (* Mismatch a directive/record pair. *)
  let idx = ref None in
  Array.iteri
    (fun i (d, _) ->
      if !idx = None then
        match d with S.D_local pid -> idx := Some (i, pid) | _ -> ())
    directives;
  (match !idx with
  | None -> () (* no local directives in this schedule; fine *)
  | Some (i, pid) ->
      directives.(i) <- (S.D_crash pid, S.R_crash);
      (* Crashing a process that then behaves differently must trip some
         later record (or complete inconsistently). *)
      Alcotest.(check bool) "diverges or reports" true
        (try
           ignore (S.replay sched.A.ctx directives);
           true (* a crash of an inactive-by-then process may be benign *)
         with S.Diverged _ -> true))

let test_pid_of_directive () =
  Alcotest.(check int) "local" 3 (S.pid_of_directive (S.D_local 3));
  Alcotest.(check int) "step" 4
    (S.pid_of_directive (S.D_step { pid = 4; hidden_as = [] }));
  Alcotest.(check int) "crash" 5 (S.pid_of_directive (S.D_crash 5));
  Alcotest.(check int) "complete" 6 (S.pid_of_directive (S.D_complete 6))

let test_table_catches_tampering () =
  (* Shorten a schedule mid-round and point a meta at it with a bogus
     active set: the checker must report violations (I4/I10 style). *)
  let sched = committed () in
  match sched.A.metas with
  | [] -> Alcotest.fail "no rounds"
  | first :: _ ->
      let bogus_meta =
        {
          first with
          A.meta_active =
            (* claim a finished process is active — I4 must fire, or at
               minimum I10 (it stopped incurring RMRs) *)
            Intset.union first.A.meta_active first.A.meta_finished;
        }
      in
      if Intset.is_empty first.A.meta_finished then ()
        (* nothing finished in round 1 for this lock; skip *)
      else begin
        let tampered = { sched with A.metas = [ bogus_meta ] } in
        let rep = T.check ~max_actives:10 tampered in
        Alcotest.(check bool) "violations reported" true (not (T.ok rep))
      end

let test_visible_tracking () =
  let ctx =
    {
      S.n = 2;
      width = 8;
      model = Rmr.Cc;
      factory = Rme_locks.Rcas.factory;
      local_cap = 100;
      completion_cap = 1000;
    }
  in
  let play = S.fresh_play ctx in
  (* Step p0 once (rcas entry: status write) and check visibility. *)
  let info = S.do_step play ~pid:0 ~hidden_as:[] in
  Alcotest.(check bool) "writer visible" true
    (Intset.mem 0 (S.visible_at play info.Rme_core.Machine.loc));
  (* A hidden step attributes visibility to the alphas instead. *)
  let info2 = S.do_step play ~pid:1 ~hidden_as:[ 0 ] in
  let vis = S.visible_at play info2.Rme_core.Machine.loc in
  Alcotest.(check bool) "hidden stepper invisible" true (not (Intset.mem 1 vis));
  Alcotest.(check bool) "alphas visible" true (Intset.mem 0 vis)

let suite =
  ( "schedule",
    [
      Alcotest.test_case "full replay consistent" `Quick test_full_replay_consistent;
      Alcotest.test_case "filtered replay consistent" `Quick
        test_filtered_replay_consistent;
      Alcotest.test_case "tampered record diverges" `Quick test_tampered_record_diverges;
      Alcotest.test_case "tampered directive tolerated or caught" `Quick
        test_tampered_directive_diverges;
      Alcotest.test_case "pid_of_directive" `Quick test_pid_of_directive;
      Alcotest.test_case "table catches bogus metadata" `Quick
        test_table_catches_tampering;
      Alcotest.test_case "visibility tracking" `Quick test_visible_tracking;
    ] )
