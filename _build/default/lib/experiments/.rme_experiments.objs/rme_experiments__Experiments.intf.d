lib/experiments/experiments.mli: Rme_core Rme_util
