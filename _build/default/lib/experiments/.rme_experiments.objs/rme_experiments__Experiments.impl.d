lib/experiments/experiments.ml: Array List Option Printf Rme_core Rme_locks Rme_memory Rme_sim Rme_util
