module Table = Rme_util.Table
module Intset = Rme_util.Intset
module Splitmix = Rme_util.Splitmix
module Bitword = Rme_util.Bitword
module H = Rme_sim.Harness
module Lock_intf = Rme_sim.Lock_intf
module Rmr = Rme_memory.Rmr
module Registry = Rme_locks.Registry
module A = Rme_core.Adversary
module Bounds = Rme_core.Bounds
module Hiding = Rme_core.Hiding

type outcome = Table.t list

let run_lock ?(sp = 2) ~seed ~n ~width ~model factory =
  let cfg =
    {
      (H.default_config ~n ~width model) with
      superpassages = sp;
      policy = H.Random_policy seed;
    }
  in
  H.run cfg factory

(* ------------------------------------------------------------------ *)
(* E1: the RMR landscape across algorithms (the measured version of the
   paper's §1.2 comparison). *)

let theory_of (factory : Lock_intf.factory) ~n ~w =
  match factory.Lock_intf.name with
  | "tas" | "ticket" -> "O(n) worst"
  | "mcs" -> "O(1)"
  | "peterson-tree" -> Printf.sprintf "O(log n)=%.0f" (Bounds.log_n ~n)
  | "rcas" | "rstamp" -> "O(n)"
  | "rtournament" -> Printf.sprintf "O(log n)=%.0f" (Bounds.log_n ~n)
  | "katzan-morrison" -> Printf.sprintf "O(log_w n)=%.0f" (Bounds.km_upper ~n ~w)
  | "sublog-tournament" ->
      Printf.sprintf "O(log n/llog n)=%.1f" (Bounds.log_over_loglog ~n)
  | "clh" -> "O(1) (CC)"
  | "epoch-mcs" -> "O(1) (system-wide)"
  | _ -> "?"

let e1_lock_landscape ?(seed = 42) ?(width = 16) ?(ns = [ 2; 4; 8; 16; 32; 64 ]) () =
  List.map
    (fun model ->
      let t =
        Table.create
          ~title:
            (Printf.sprintf
               "E1 (%s): max RMRs per passage, crash-free, w=%d (rows: lock; \
                cols: n)"
               (Rmr.model_name model) width)
          ~columns:
            ("lock" :: List.map (fun n -> Printf.sprintf "n=%d" n) ns
            @ [ "theory (largest n)" ])
      in
      List.iter
        (fun (factory : Lock_intf.factory) ->
          let cells =
            List.map
              (fun n ->
                if Lock_intf.supports factory ~n ~width then begin
                  let r = run_lock ~seed ~n ~width ~model factory in
                  if r.H.ok then string_of_int r.H.max_passage_rmr else "FAIL"
                end
                else "n/a")
              ns
          in
          let n_max = List.fold_left max 2 ns in
          Table.add_row t
            ((factory.Lock_intf.name :: cells)
            @ [ theory_of factory ~n:n_max ~w:width ]))
        Registry.all;
      t)
    Rmr.all_models

(* ------------------------------------------------------------------ *)
(* E2: the word-size tradeoff of the Katzan–Morrison lock. *)

let e2_word_size_tradeoff ?(seed = 7) ?(ns = [ 16; 64; 256; 1024 ])
    ?(ws = [ 2; 4; 8; 16; 32; 62 ]) () =
  List.map
    (fun model ->
      let t =
        Table.create
          ~title:
            (Printf.sprintf
               "E2 (%s): Katzan-Morrison max RMRs per passage vs word size \
                (theory: ceil(log_w n) levels)"
               (Rmr.model_name model))
          ~columns:
            ("n"
            :: List.concat_map
                 (fun w -> [ Printf.sprintf "w=%d" w; Printf.sprintf "lvls" ])
                 ws)
      in
      List.iter
        (fun n ->
          let cells =
            List.concat_map
              (fun w ->
                let r =
                  run_lock ~sp:1 ~seed ~n ~width:w ~model
                    Rme_locks.Katzan_morrison.factory
                in
                let levels = Bounds.tree_levels ~n ~b:(min w n) in
                [
                  (if r.H.ok then string_of_int r.H.max_passage_rmr else "FAIL");
                  string_of_int levels;
                ])
              ws
          in
          Table.add_row t (string_of_int n :: cells))
        ns;
      t)
    Rmr.all_models

(* ------------------------------------------------------------------ *)
(* E3: rounds forced by the lower-bound adversary. *)

let e3_adversary_bound ?(ns = [ 64; 256; 1024; 4096 ]) ?(ws = [ 4; 8; 16; 32 ]) () =
  List.concat_map
    (fun model ->
      List.map
        (fun (factory : Lock_intf.factory) ->
          let t =
            Table.create
              ~title:
                (Printf.sprintf
                   "E3 (%s, %s): adversary rounds (= RMRs forced on survivors) \
                    vs Theorem 1 bound"
                   factory.Lock_intf.name (Rmr.model_name model))
              ~columns:
                ("n"
                :: List.concat_map
                     (fun w ->
                       [ Printf.sprintf "w=%d" w; "bound"; "surv" ])
                     ws)
          in
          List.iter
            (fun n ->
              let cells =
                List.concat_map
                  (fun w ->
                    if Lock_intf.supports factory ~n ~width:w then begin
                      let cfg = A.default_config ~n ~width:w model in
                      let r = A.run cfg factory in
                      [
                        string_of_int r.A.rounds_completed;
                        Printf.sprintf "%.1f" r.A.predicted_lower_bound;
                        string_of_int (Intset.cardinal r.A.survivors);
                      ]
                    end
                    else [ "n/a"; "-"; "-" ])
                  ws
              in
              Table.add_row t (string_of_int n :: cells))
            ns;
          t)
        Registry.recoverable)
    Rmr.all_models

(* ------------------------------------------------------------------ *)
(* E4: the Process-Hiding Lemma with the paper's constants. *)

let e4_families : (string * (y:int -> Rme_core.Partite.edge -> int)) list =
  [
    ("fas (last writer)", fun ~y e ->
        if Array.length e = 0 then y else e.(Array.length e - 1) mod 2);
    ("or (KM bit-set, w=1)", fun ~y e ->
        Array.fold_left (fun acc p -> acc lor (1 lsl (p mod 2))) y e);
    ("faa (wrap w=1)", fun ~y e ->
        Array.fold_left (fun acc p -> Bitword.add ~width:1 acc (1 + (p mod 3))) y e);
    ("parity (arbitrary rmw)", fun ~y e ->
        Array.fold_left (fun acc p -> acc lxor (p land 1)) y e);
  ]

let e4_hiding_lemma ?(seed = 99) ?(m = 3) ?(trials = 50) () =
  let p = Hiding.paper_params ~ell:1 ~delta:1.0 in
  let gsize = Hiding.min_group_size p in
  let groups = Array.init m (fun i -> Array.init gsize (fun j -> (i * gsize) + j)) in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "E4: Process-Hiding Lemma, paper constants (ell=1, delta=1, k=%d, \
            subgroup=%d, groups of %d, m=%d); %d random discovery sets each"
           p.Hiding.k p.Hiding.subgroup_size gsize m trials)
      ~columns:
        [ "operation family"; "solved"; "verify"; "min |I_D|"; "m/2"; "query verify" ]
  in
  List.iter
    (fun (name, f) ->
      let sol = Hiding.solve p ~groups ~f ~y0:0 in
      let verified =
        match Hiding.verify sol ~f with Ok () -> "ok" | Error e -> "FAIL: " ^ e
      in
      let rng = Splitmix.create seed in
      let v = Hiding.all_v sol in
      let budget = int_of_float (p.Hiding.delta *. float_of_int (Intset.cardinal v)) in
      let pool = Array.concat (Array.to_list groups) in
      let min_id = ref max_int in
      let query_ok = ref true in
      for _ = 1 to trials do
        Splitmix.shuffle rng pool;
        let d =
          Array.sub pool 0 (Splitmix.int rng (budget + 1))
          |> Array.fold_left (fun acc x -> Intset.add x acc) Intset.empty
        in
        let hs = Hiding.query sol ~d in
        min_id := min !min_id (List.length hs);
        if Hiding.verify_query sol ~f ~d hs <> Ok () then query_ok := false
      done;
      Table.add_row t
        [
          name;
          string_of_int (Array.length sol.Hiding.groups);
          verified;
          string_of_int !min_id;
          Printf.sprintf "%.1f" (float_of_int m /. 2.0);
          (if !query_ok then "ok" else "FAIL");
        ])
    e4_families;
  [ t ]

(* ------------------------------------------------------------------ *)
(* E5: recovery cost under increasing crash rates. *)

let e5_crash_cost ?(seed = 5) ?(n = 8)
    ?(probs = [ 0.0; 0.01; 0.02; 0.05; 0.1; 0.2 ]) () =
  List.map
    (fun model ->
      let t =
        Table.create
          ~title:
            (Printf.sprintf
               "E5 (%s): recoverable locks under crashes, n=%d, w=16 (cells: \
                mean RMRs per super-passage ~ mean per passage / crashes)"
               (Rmr.model_name model) n)
          ~columns:
            ("lock"
            :: List.map (fun p -> Printf.sprintf "p=%.2f" p) probs)
      in
      List.iter
        (fun (factory : Lock_intf.factory) ->
          let cells =
            List.map
              (fun prob ->
                let cfg =
                  {
                    (H.default_config ~n ~width:16 model) with
                    superpassages = 4;
                    policy = H.Random_policy seed;
                    crashes =
                      (if prob = 0.0 then H.No_crashes
                       else H.Crash_prob { prob; seed = seed * 31 });
                    allow_cs_crash = true;
                    max_crashes_per_process = 6;
                  }
                in
                let r = H.run cfg factory in
                if r.H.ok then begin
                  (* RMRs per super-passage: the true cost of recovery —
                     crashes split super-passages into more (cheaper)
                     passages, so the per-passage mean alone understates
                     the recovery overhead. *)
                  let work =
                    Array.fold_left
                      (fun acc (p : H.proc_stats) ->
                        acc + p.H.total_rmrs - p.H.cs_entries)
                      0 r.H.procs
                  in
                  let superpassages = n * cfg.H.superpassages in
                  Printf.sprintf "%.1f ~ %.1f /%d"
                    (float_of_int work /. float_of_int superpassages)
                    r.H.mean_passage_rmr r.H.total_crashes
                end
                else "FAIL")
              probs
          in
          Table.add_row t (factory.Lock_intf.name :: cells))
        Registry.recoverable;
      t)
    Rmr.all_models

(* ------------------------------------------------------------------ *)
(* E6: CC vs DSM side by side. *)

let e6_model_comparison ?(seed = 11) ?(n = 32) () =
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "E6: CC vs DSM, n=%d, w=16, crash-free (max / mean RMRs per passage)" n)
      ~columns:[ "lock"; "CC max"; "CC mean"; "DSM max"; "DSM mean" ]
  in
  List.iter
    (fun (factory : Lock_intf.factory) ->
      let cell model =
        if Lock_intf.supports factory ~n ~width:16 then begin
          let r = run_lock ~seed ~n ~width:16 ~model factory in
          if r.H.ok then
            (string_of_int r.H.max_passage_rmr, Printf.sprintf "%.1f" r.H.mean_passage_rmr)
          else ("FAIL", "-")
        end
        else ("n/a", "-")
      in
      let cc_max, cc_mean = cell Rmr.Cc in
      let dsm_max, dsm_mean = cell Rmr.Dsm in
      Table.add_row t [ factory.Lock_intf.name; cc_max; cc_mean; dsm_max; dsm_mean ])
    Registry.all;
  [ t ]

(* ------------------------------------------------------------------ *)
(* E7: the min(log_w n, log n / log log n) crossover. *)

let e7_crossover ?(n = 65536) ?(ws = [ 2; 3; 4; 6; 8; 12; 16; 24; 32; 48; 62 ]) () =
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "E7: Theorem 1 crossover at n=%d (log2 n = %.0f): bound = \
            min(log_w n, log n/log log n)"
           n (Bounds.log_n ~n))
      ~columns:[ "w"; "log_w n"; "log n/log log n"; "Theorem 1 bound"; "regime" ]
  in
  let lll = Bounds.log_over_loglog ~n in
  List.iter
    (fun w ->
      let lwn = Bounds.km_upper ~n ~w in
      let bound = Bounds.theorem1_lower ~n ~w in
      Table.add_row t
        [
          string_of_int w;
          Printf.sprintf "%.2f" lwn;
          Printf.sprintf "%.2f" lll;
          Printf.sprintf "%.2f" bound;
          (if lwn <= lll then "word-size term" else "log/loglog term");
        ])
    ws;
  (* Measured companion: KM at a smaller n across the crossover. *)
  let n_meas = 1024 in
  let t2 =
    Table.create
      ~title:
        (Printf.sprintf
           "E7b: measured KM (CC) max passage RMRs across the crossover, n=%d"
           n_meas)
      ~columns:[ "w"; "measured max RMR"; "ceil(log_w n)"; "bound" ]
  in
  List.iter
    (fun w ->
      let r =
        run_lock ~sp:1 ~seed:13 ~n:n_meas ~width:w ~model:Rmr.Cc
          Rme_locks.Katzan_morrison.factory
      in
      Table.add_row t2
        [
          string_of_int w;
          (if r.H.ok then string_of_int r.H.max_passage_rmr else "FAIL");
          Printf.sprintf "%.0f" (Bounds.km_upper ~n:n_meas ~w);
          Printf.sprintf "%.2f" (Bounds.theorem1_lower ~n:n_meas ~w);
        ])
    [ 2; 4; 8; 10; 16; 32 ];
  [ t; t2 ]

(* ------------------------------------------------------------------ *)
(* E8: the system-wide crash separation (paper conclusion / [11], [14]):
   under simultaneous crashes with epoch support, O(1) RMRs per passage
   are possible — the lower bound inherently needs individual crashes. *)

let e8_system_wide ?(seed = 3) ?(ns = [ 4; 8; 16; 32; 64 ]) () =
  let t =
    Table.create
      ~title:
        "E8: system-wide crash model — epoch-MCS max RMRs per passage stays \
         O(1) in n despite crashes (vs Theorem 1's growth under individual \
         crashes)"
      ~columns:
        ("lock / crashes"
        :: List.map (fun n -> Printf.sprintf "n=%d" n) ns)
  in
  let row name crashes =
    let cells =
      List.map
        (fun n ->
          let cfg =
            {
              (H.default_config ~n ~width:16 Rmr.Cc) with
              superpassages = 3;
              policy = H.Random_policy seed;
              crashes;
              allow_cs_crash = true;
            }
          in
          let r = H.run cfg Rme_locks.Epoch_mcs.factory in
          if r.H.ok then string_of_int r.H.max_passage_rmr else "FAIL")
        ns
    in
    Table.add_row t (name :: cells)
  in
  row "epoch-mcs, crash-free" H.No_crashes;
  row "epoch-mcs, 2 system crashes" (H.System_crash_script [ 10; 120 ]);
  row "epoch-mcs, 5 system crashes" (H.System_crash_script [ 5; 30; 80; 160; 300 ]);
  (* Companion: the individual-crash adversary bound at the same n. *)
  let bound_row =
    "Theorem 1 bound (individual crashes)"
    :: List.map
         (fun n -> Printf.sprintf "%.1f" (Bounds.theorem1_lower ~n ~w:16))
         ns
  in
  Table.add_row t bound_row;
  [ t ]

(* ------------------------------------------------------------------ *)
(* A1: ablation — Katzan–Morrison tree arity below the word size. The
   design choice b = Θ(w) is what converts word width into fewer levels;
   forcing smaller arity at the same w gives strictly more levels. *)

let a1_arity_ablation ?(seed = 9) ?(n = 256) ?(arities = [ 2; 4; 8; 16; 32 ]) () =
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "A1 (ablation): KM tree arity at fixed w=32, n=%d — arity below \
            the word size wastes the word (max RMRs per passage)"
           n)
      ~columns:[ "arity b"; "levels"; "CC max"; "DSM max" ]
  in
  List.iter
    (fun b ->
      let cell model =
        let cfg =
          {
            (H.default_config ~n ~width:32 model) with
            superpassages = 1;
            policy = H.Random_policy seed;
          }
        in
        let r = H.run cfg (Rme_locks.Katzan_morrison.factory_with_arity b) in
        if r.H.ok then string_of_int r.H.max_passage_rmr else "FAIL"
      in
      Table.add_row t
        [
          string_of_int b;
          string_of_int (Bounds.tree_levels ~n ~b);
          cell Rmr.Cc;
          cell Rmr.Dsm;
        ])
    arities;
  [ t ]

(* A2: ablation — the adversary's contention threshold k (the paper's
   w^d). Larger k merges more processes per hiding group: rounds shrink
   by at most a constant factor (log_{k} n vs log_w n), never below the
   bound. *)

let a2_k_ablation ?(n = 1024) ?(w = 16) ?(ks = [ 17; 24; 32; 64; 128 ]) () =
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "A2 (ablation): adversary contention threshold k at n=%d, w=%d \
            (rounds forced; Theorem 1 bound %.2f)"
           n w
           (Bounds.theorem1_lower ~n ~w))
      ~columns:
        ("lock" :: List.map (fun k -> Printf.sprintf "k=%d" k) ks)
  in
  List.iter
    (fun (factory : Lock_intf.factory) ->
      let cells =
        List.map
          (fun k ->
            if Lock_intf.supports factory ~n ~width:w then begin
              let cfg = { (A.default_config ~n ~width:w Rmr.Cc) with A.k } in
              let r = A.run cfg factory in
              string_of_int r.A.rounds_completed
            end
            else "n/a")
          ks
      in
      Table.add_row t (factory.Lock_intf.name :: cells))
    Registry.recoverable;
  [ t ]

(* A3: ablation — contention adaptivity. Katzan–Morrison's full
   algorithm is adaptive: O(min(k, log_w n)) for k concurrent
   contenders. Our implementation is the non-adaptive O(log_w n) core
   (DESIGN.md documents the simplification): a solo passage still climbs
   every level. This ablation measures that gap honestly. *)

let a3_adaptivity ?(n = 256) ?(ws = [ 4; 8; 16; 32 ]) () =
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "A3 (ablation): contention adaptivity at n=%d (CC) — our KM core \
            pays ceil(log_w n) levels even solo; the full algorithm of [19] \
            would pay O(min(k, log_w n))"
           n)
      ~columns:[ "w"; "solo passage RMRs"; "contended max RMRs"; "levels" ]
  in
  List.iter
    (fun w ->
      let solo =
        let m =
          Rme_core.Machine.create ~n ~width:w ~model:Rmr.Cc
            Rme_locks.Katzan_morrison.factory
        in
        let ok =
          Rme_core.Machine.run_to_completion m ~pid:0 ~cap:100_000
            ~on_step:(fun _ -> ())
        in
        assert ok;
        (* exclude the single CS step (a write: 1 RMR) *)
        Rme_core.Machine.total_rmrs m ~pid:0 - 1
      in
      let contended =
        let r =
          run_lock ~sp:1 ~seed:21 ~n ~width:w ~model:Rmr.Cc
            Rme_locks.Katzan_morrison.factory
        in
        if r.H.ok then string_of_int r.H.max_passage_rmr else "FAIL"
      in
      Table.add_row t
        [
          string_of_int w;
          string_of_int solo;
          contended;
          string_of_int (Bounds.tree_levels ~n ~b:(min w n));
        ])
    ws;
  [ t ]

(* F1: fairness. The RME literature studies FCFS and starvation-freedom
   as extended properties (paper §1.2, "ignoring any extended
   properties"); the harness measures them as bypass counts: how many
   critical sections others completed between a request and its grant. *)

let f1_fairness ?(seed = 31) ?(n = 8) ?(sp = 6) () =
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "F1: fairness — max CS entries by others between request and grant \
            (n=%d, %d super-passages, random schedule, CC)"
           n sp)
      ~columns:[ "lock"; "max bypass"; "doorway-FIFO (bypass <= 2n-2)" ]
  in
  List.iter
    (fun (factory : Lock_intf.factory) ->
      if Lock_intf.supports factory ~n ~width:16 then begin
        let cfg =
          {
            (H.default_config ~n ~width:16 Rmr.Cc) with
            superpassages = sp;
            policy = H.Random_policy seed;
          }
        in
        let r = H.run cfg factory in
        let worst =
          Array.fold_left (fun acc (p : H.proc_stats) -> max acc p.H.max_bypass) 0
            r.H.procs
        in
        Table.add_row t
          [
            factory.Lock_intf.name;
            string_of_int worst;
            (if worst <= (2 * n) - 2 then "yes" else "no");
          ]
      end)
    Registry.all;
  [ t ]

(* ------------------------------------------------------------------ *)

let all =
  [
    ("e1", "RMR landscape across lock algorithms", fun () -> e1_lock_landscape ());
    ("e2", "Katzan-Morrison word-size tradeoff", fun () -> e2_word_size_tradeoff ());
    ("e3", "lower-bound adversary vs Theorem 1", fun () -> e3_adversary_bound ());
    ("e4", "Process-Hiding Lemma (paper constants)", fun () -> e4_hiding_lemma ());
    ("e5", "crash-recovery cost", fun () -> e5_crash_cost ());
    ("e6", "CC vs DSM", fun () -> e6_model_comparison ());
    ("e7", "min(log_w n, log/loglog) crossover", fun () -> e7_crossover ());
    ("e8", "system-wide crash separation (epoch-MCS)", fun () -> e8_system_wide ());
    ("a1", "ablation: KM tree arity vs word size", fun () -> a1_arity_ablation ());
    ("a2", "ablation: adversary contention threshold k", fun () -> a2_k_ablation ());
    ("a3", "ablation: contention adaptivity of the KM core", fun () -> a3_adaptivity ());
    ("f1", "fairness: bypass counts per lock", fun () -> f1_fairness ());
  ]

let run_one id =
  List.find_opt (fun (i, _, _) -> i = id) all |> Option.map (fun (_, _, f) -> f ())
