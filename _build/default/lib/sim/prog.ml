module Memory = Rme_memory.Memory
module Op = Rme_memory.Op

type 'a t =
  | Return of 'a
  | Step of Memory.loc * Op.t * (int -> 'a t)

let return x = Return x

let rec bind m f =
  match m with
  | Return x -> f x
  | Step (loc, op, k) -> Step (loc, op, fun v -> bind (k v) f)

let map f m = bind m (fun x -> Return (f x))

let op loc o = Step (loc, o, fun v -> Return v)

let read loc = op loc Op.Read

let write loc v = Step (loc, Op.Write v, fun _ -> Return ())

let cas_old loc ~expected ~desired = op loc (Op.Cas { expected; desired })

let cas loc ~expected ~desired =
  map (fun old -> old = expected) (cas_old loc ~expected ~desired)

let fas loc v = op loc (Op.Fas v)

let faa loc d = op loc (Op.Faa d)

let fai loc = op loc Op.fai

let rmw loc ~name f = op loc (Op.Rmw { name; f })

let await loc cond =
  let rec spin () =
    Step (loc, Op.Read, fun v -> if cond v then Return v else spin ())
  in
  spin ()

let repeat_until body =
  let rec loop () =
    bind (body ()) (function Some x -> Return x | None -> loop ())
  in
  loop ()

let peek = function
  | Return _ -> None
  | Step (loc, o, _) -> Some (loc, o)

module Infix = struct
  let ( let* ) = bind
  let ( let+ ) m f = map f m
  let ( >>= ) = bind
end
