lib/sim/trace.mli: Format Rme_memory
