lib/sim/trace.ml: Array Format Rme_memory Rme_util
