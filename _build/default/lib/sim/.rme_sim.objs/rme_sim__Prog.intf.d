lib/sim/prog.mli: Rme_memory
