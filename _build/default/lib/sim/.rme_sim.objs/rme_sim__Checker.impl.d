lib/sim/checker.ml: Array Harness Hashtbl List Printf Rme_memory Rme_util Trace
