lib/sim/harness.ml: Array List Lock_intf Printf Prog Rme_memory Rme_util Trace
