lib/sim/lock_intf.ml: Prog Rme_memory
