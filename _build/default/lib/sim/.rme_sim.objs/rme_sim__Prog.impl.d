lib/sim/prog.ml: Rme_memory
