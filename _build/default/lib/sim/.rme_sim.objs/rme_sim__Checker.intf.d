lib/sim/checker.mli: Harness Rme_memory Trace
