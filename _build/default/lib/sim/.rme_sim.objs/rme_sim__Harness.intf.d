lib/sim/harness.mli: Lock_intf Prog Rme_memory Trace
