(** Execution traces.

    The scheduler can record every event of a run: each shared-memory step
    (with its pre/post values and whether it incurred an RMR) and each
    crash step. Traces feed the lower-bound adversary's replay machinery
    and the schedule-table invariant checkers, and make failing tests
    debuggable. *)

type section = In_entry | In_cs | In_exit | In_recovery

val section_name : section -> string

type event =
  | Step of {
      pid : int;
      loc : Rme_memory.Memory.loc;
      op : Rme_memory.Op.t;
      old_value : int;
      new_value : int;
      rmr : bool;
      section : section;
    }
  | Crash of { pid : int; section : section }

type t

val create : unit -> t
val record : t -> event -> unit
val length : t -> int
val get : t -> int -> event
val events : t -> event list
val iter : (event -> unit) -> t -> unit
val pid_of_event : event -> int
val filter_pids : t -> keep:(int -> bool) -> t
(** A new trace containing only events of kept processes — the "removal
    of processes from a schedule" operation of the lower-bound proof. *)

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit
