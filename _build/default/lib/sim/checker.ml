module Memory = Rme_memory.Memory
module Op = Rme_memory.Op
module Rmr = Rme_memory.Rmr
module Cache = Rme_memory.Cache
module Bitword = Rme_util.Bitword

type report = {
  events : int;
  steps_checked : int;
  errors : string list;
}

let ok r = r.errors = []

let check ~n ~width ~model ~owner trace =
  let errors = ref [] in
  let error fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let cache = match model with Rmr.Cc -> Some (Cache.create ~n) | Rmr.Dsm -> None in
  let last_value : (int, int) Hashtbl.t = Hashtbl.create 64 in
  (* [holder]: the process entitled to the critical section — set by its
     first CS step, kept across crashes inside the CS (re-entry), cleared
     by its first exit step. *)
  let holder = ref None in
  let steps = ref 0 in
  let index = ref 0 in
  Trace.iter
    (fun event ->
      (match event with
      | Trace.Step { pid; loc; op; old_value; new_value; rmr; section } ->
          incr steps;
          (* Value-chain continuity and width. *)
          (match Hashtbl.find_opt last_value loc with
          | Some prev when prev <> old_value ->
              error "event %d: p%d read %d from R%d but the last store was %d"
                !index pid old_value loc prev
          | Some _ | None -> ());
          if new_value < 0 || new_value > Bitword.mask width then
            error "event %d: R%d holds %d, outside the %d-bit domain" !index loc
              new_value width;
          (* Operation semantics. *)
          let expected_new = Op.next_value ~width op old_value in
          if expected_new <> new_value then
            error "event %d: p%d %s on R%d: %d -> %d, expected -> %d" !index pid
              (Op.name op) loc old_value new_value expected_new;
          Hashtbl.replace last_value loc new_value;
          (* RMR recomputation. *)
          let expected_rmr =
            match (model, cache) with
            | Rmr.Dsm, _ -> (
                match owner loc with Some o -> o <> pid | None -> true)
            | Rmr.Cc, Some c -> Cache.access c ~pid ~loc ~is_read:(Op.is_read op)
            | Rmr.Cc, None -> assert false
          in
          if expected_rmr <> rmr then
            error "event %d: p%d on R%d flagged rmr=%b, rules say %b" !index pid
              loc rmr expected_rmr;
          (* Mutual exclusion and critical-section re-entry. *)
          (match section with
          | Trace.In_cs -> (
              match !holder with
              | Some q when q <> pid ->
                  error
                    "event %d: p%d took a CS step while p%d holds the critical \
                     section"
                    !index pid q
              | Some _ | None -> holder := Some pid)
          | Trace.In_exit ->
              if !holder = Some pid then holder := None
          | Trace.In_entry | Trace.In_recovery -> ())
      | Trace.Crash { pid; section = _ } -> (
          match cache with Some c -> Cache.drop_process c ~pid | None -> ()));
      incr index)
    trace;
  { events = !index; steps_checked = !steps; errors = List.rev !errors }

let check_result (r : Harness.result) =
  match r.Harness.trace with
  | None -> None
  | Some trace ->
      let memory = r.Harness.memory in
      Some
        (check
           ~n:(Array.length r.Harness.procs)
           ~width:(Memory.width memory) ~model:r.Harness.model
           ~owner:(fun loc -> Memory.owner memory loc)
           trace)
