(** Offline trace validation — an independent re-implementation of the
    model's rules, run against recorded traces.

    The harness accounts RMRs, enforces word width and checks mutual
    exclusion {e while} executing; this module re-derives all of it from
    the event stream alone, so a bug in the live bookkeeping and a bug in
    the checker would have to coincide to go unnoticed (differential
    testing). Checks performed:

    - {b value-chain continuity}: on every location, each step's observed
      pre-value equals the previous step's post-value (atomicity of the
      simulated memory), and every stored value fits the word width;
    - {b RMR recomputation}: each step's RMR flag matches a fresh
      evaluation of the CC rule (read-caching, non-read invalidation,
      crash cache-drop) or the DSM rule (segment ownership);
    - {b operation semantics}: each step's post-value equals
      [Op.next_value] of its pre-value;
    - {b mutual exclusion}: critical-section step spans of distinct
      processes never interleave, where a span runs from a process's
      first CS step to its next non-CS event, and a crash inside the CS
      leaves the process the {e holder} until it re-enters and completes
      (critical-section re-entry);
    - {b re-entry}: after a crash in the CS, the next process to take a
      CS step is the crashed holder itself. *)

type report = {
  events : int;
  steps_checked : int;
  errors : string list;
}

val ok : report -> bool

val check :
  n:int ->
  width:int ->
  model:Rme_memory.Rmr.model ->
  owner:(Rme_memory.Memory.loc -> int option) ->
  Trace.t ->
  report

val check_result : Harness.result -> report option
(** Convenience: validate a harness result that recorded a trace (its
    memory supplies widths and ownership). [None] when no trace was
    recorded. *)
