module Vec = Rme_util.Vec
module Op = Rme_memory.Op

type section = In_entry | In_cs | In_exit | In_recovery

let section_name = function
  | In_entry -> "entry"
  | In_cs -> "cs"
  | In_exit -> "exit"
  | In_recovery -> "recovery"

type event =
  | Step of {
      pid : int;
      loc : Rme_memory.Memory.loc;
      op : Op.t;
      old_value : int;
      new_value : int;
      rmr : bool;
      section : section;
    }
  | Crash of { pid : int; section : section }

type t = event Vec.t

let create () = Vec.create ()

let record t e = ignore (Vec.push t e)

let length = Vec.length

let get = Vec.get

let events t = Array.to_list (Vec.to_array t)

let iter = Vec.iter

let pid_of_event = function Step { pid; _ } -> pid | Crash { pid; _ } -> pid

let filter_pids t ~keep =
  let t' = create () in
  iter (fun e -> if keep (pid_of_event e) then record t' e) t;
  t'

let pp_event ppf = function
  | Step { pid; loc; op; old_value; new_value; rmr; section } ->
      Format.fprintf ppf "p%d %s %a@R%d: %d -> %d%s" pid (section_name section)
        Op.pp op loc old_value new_value
        (if rmr then " [RMR]" else "")
  | Crash { pid; section } ->
      Format.fprintf ppf "p%d CRASH in %s" pid (section_name section)

let pp ppf t =
  iter (fun e -> Format.fprintf ppf "%a@." pp_event e) t
