(** Process programs as a free monad over shared-memory steps.

    A lock protocol is written in direct style with [let*]; each [op]
    yields exactly one atomic shared-memory operation to the scheduler,
    which owns the interleaving. The representation gives the simulator
    the two capabilities the paper's model requires:

    - {b crash steps}: a crash discards the continuation — all "local
      variables" (everything captured in the closure) vanish, while shared
      memory persists; and
    - {b poised inspection}: the next operation of a suspended program can
      be examined without running it, which is how the adversary of the
      lower-bound proof decides whether a process is "poised to incur an
      RMR" and on which object. *)

type 'a t =
  | Return of 'a
  | Step of Rme_memory.Memory.loc * Rme_memory.Op.t * (int -> 'a t)
      (** [Step (loc, op, k)]: perform [op] on [loc]; [k] receives the
          value the location held before the operation. *)

val return : 'a -> 'a t

val bind : 'a t -> ('a -> 'b t) -> 'b t

val map : ('a -> 'b) -> 'a t -> 'b t

val op : Rme_memory.Memory.loc -> Rme_memory.Op.t -> int t
(** A single operation returning the pre-operation value. *)

(** {2 Operation shorthands} *)

val read : Rme_memory.Memory.loc -> int t
val write : Rme_memory.Memory.loc -> int -> unit t
val cas : Rme_memory.Memory.loc -> expected:int -> desired:int -> bool t
(** Returns whether the CAS succeeded. *)

val cas_old : Rme_memory.Memory.loc -> expected:int -> desired:int -> int t
(** Like [cas] but returns the pre-operation value. *)

val fas : Rme_memory.Memory.loc -> int -> int t
val faa : Rme_memory.Memory.loc -> int -> int t
val fai : Rme_memory.Memory.loc -> int t
val rmw : Rme_memory.Memory.loc -> name:string -> (width:int -> int -> int) -> int t

(** {2 Control} *)

val await : Rme_memory.Memory.loc -> (int -> bool) -> int t
(** [await loc cond] spins — one read per scheduling step — until the
    value satisfies [cond]; returns the satisfying value. Under the CC
    model the re-reads hit the cache and incur no RMRs; under DSM they are
    local only if the process owns [loc]. *)

val repeat_until : (unit -> 'a option t) -> 'a t
(** Re-run a program until it produces [Some]. *)

val peek : 'a t -> (Rme_memory.Memory.loc * Rme_memory.Op.t) option
(** The next shared-memory operation of a suspended program, or [None] if
    it has returned. *)

module Infix : sig
  val ( let* ) : 'a t -> ('a -> 'b t) -> 'b t
  val ( let+ ) : 'a t -> ('a -> 'b) -> 'b t
  val ( >>= ) : 'a t -> ('a -> 'b t) -> 'b t
end
