(** The recoverable-lock interface every algorithm in [rme_locks]
    implements, and what the harness drives.

    A lock exposes three protocols as {!Prog} programs. In the crash-free
    case the harness runs [entry], then the critical section, then [exit].
    When a process crashes — its continuation is discarded, modelling the
    reset of all local variables — the harness starts [recover], whose
    result tells the harness where the process should resume:

    - [Resume_entry]: the process does not hold the lock; its entry
      protocol is restartable and should be run (again) from the top.
      Recoverable entry protocols are written to be {e idempotent}: they
      re-derive progress from per-process persistent state in shared
      memory, so re-running them resumes rather than redoes work.
    - [In_cs]: the process holds the lock (it crashed inside the critical
      section, or after the entry protocol's linearization point); it
      re-enters the critical section (the critical-section re-entry
      property of Golab and Ramaraju).
    - [Resume_exit]: the critical section is complete but the lock is not
      fully released; run [exit] (also idempotent) to finish.
    - [Passage_done]: the super-passage had already completed before the
      crash took effect; return to the remainder section. *)

type resume = Resume_entry | In_cs | Resume_exit | Passage_done

let resume_name = function
  | Resume_entry -> "resume-entry"
  | In_cs -> "in-cs"
  | Resume_exit -> "resume-exit"
  | Passage_done -> "passage-done"

(** A created lock: per-process protocol programs. The programs for a
    given [pid] may be requested many times (one per passage attempt);
    each request must return a fresh program whose local state starts
    empty, with all persistence living in shared memory.

    [system_epoch], when present, is a location the harness increments
    once per {e system-wide} crash (all processes crash simultaneously).
    This models the non-standard system support Golab and Hendler [11]
    assume — "an epoch counter is incremented with each system crash" —
    under which constant-RMR RME is possible, in contrast to the
    individual-crash model Theorem 1 lower-bounds. *)
type instance = {
  entry : pid:int -> unit Prog.t;
  exit : pid:int -> unit Prog.t;
  recover : pid:int -> resume Prog.t;
  system_epoch : Rme_memory.Memory.loc option;
}

(** A lock algorithm: how to instantiate it over a memory for [n]
    processes. *)
type factory = {
  name : string;
  recoverable : bool;
      (** Whether [recover] is meaningful; the harness refuses to inject
          crashes into non-recoverable locks. *)
  min_width : n:int -> int;
      (** Smallest word width (bits) the algorithm functions with for [n]
          processes; e.g. a lock that CASes process IDs into a single word
          needs [bits_needed (n+1)]. *)
  make : Rme_memory.Memory.t -> n:int -> instance;
}

let supports factory ~n ~width = width >= factory.min_width ~n
