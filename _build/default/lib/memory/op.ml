type t =
  | Read
  | Write of int
  | Cas of { expected : int; desired : int }
  | Fas of int
  | Faa of int
  | Rmw of { name : string; f : width:int -> int -> int }

let fai = Faa 1

let is_read = function
  | Read -> true
  | Write _ | Cas _ | Fas _ | Faa _ | Rmw _ -> false

let next_value ~width op current =
  let truncate v = Rme_util.Bitword.truncate ~width v in
  match op with
  | Read -> current
  | Write v -> truncate v
  | Cas { expected; desired } ->
      if current = truncate expected then truncate desired else current
  | Fas v -> truncate v
  | Faa d -> Rme_util.Bitword.add ~width current d
  | Rmw { f; _ } -> truncate (f ~width current)

let name = function
  | Read -> "read"
  | Write _ -> "write"
  | Cas _ -> "cas"
  | Fas _ -> "fas"
  | Faa _ -> "faa"
  | Rmw { name; _ } -> "rmw:" ^ name

let pp ppf = function
  | Read -> Format.pp_print_string ppf "read"
  | Write v -> Format.fprintf ppf "write(%d)" v
  | Cas { expected; desired } -> Format.fprintf ppf "cas(%d,%d)" expected desired
  | Fas v -> Format.fprintf ppf "fas(%d)" v
  | Faa d -> Format.fprintf ppf "faa(%d)" d
  | Rmw { name; _ } -> Format.fprintf ppf "rmw:%s" name
