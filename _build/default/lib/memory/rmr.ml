type model = Cc | Dsm

let model_of_string = function
  | "cc" | "CC" -> Some Cc
  | "dsm" | "DSM" -> Some Dsm
  | _ -> None

let model_name = function Cc -> "CC" | Dsm -> "DSM"

let pp_model ppf m = Format.pp_print_string ppf (model_name m)

let all_models = [ Cc; Dsm ]

type t = {
  model : model;
  cache : Cache.t option;
  totals : int array;
  passages : int array;
}

let create model ~n =
  {
    model;
    cache = (match model with Cc -> Some (Cache.create ~n) | Dsm -> None);
    totals = Array.make n 0;
    passages = Array.make n 0;
  }

let model t = t.model

let cache t = t.cache

let dsm_incurs ~owner ~pid =
  match owner with Some o -> o <> pid | None -> true

let record t ~pid ~loc ~owner ~is_read =
  let rmr =
    match t.model with
    | Dsm -> dsm_incurs ~owner ~pid
    | Cc -> (
        match t.cache with
        | Some c -> Cache.access c ~pid ~loc ~is_read
        | None -> assert false)
  in
  if rmr then begin
    t.totals.(pid) <- t.totals.(pid) + 1;
    t.passages.(pid) <- t.passages.(pid) + 1
  end;
  rmr

let would_incur t ~pid ~loc ~owner ~is_read =
  match t.model with
  | Dsm -> dsm_incurs ~owner ~pid
  | Cc -> (
      match t.cache with
      | Some c -> (not is_read) || not (Cache.has_copy c ~pid ~loc)
      | None -> assert false)

let on_crash t ~pid =
  match t.cache with Some c -> Cache.drop_process c ~pid | None -> ()

let total t ~pid = t.totals.(pid)

let passage t ~pid = t.passages.(pid)

let start_passage t ~pid = t.passages.(pid) <- 0

let grand_total t = Array.fold_left ( + ) 0 t.totals
