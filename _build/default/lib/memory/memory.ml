module Bitword = Rme_util.Bitword
module Vec = Rme_util.Vec

type loc = int

type cell = {
  owner : int option;
  name : string;
  init : int;
  mutable value : int;
  mutable last_accessor : int option;
}

type t = { width : int; cells : cell Vec.t }

let create ~width =
  Bitword.check_width width;
  { width; cells = Vec.create () }

let width t = t.width

let num_locs t = Vec.length t.cells

let alloc ?owner ?(name = "loc") t ~init =
  let init = Bitword.truncate ~width:t.width init in
  Vec.push t.cells { owner; name; init; value = init; last_accessor = None }

let alloc_array ?owner ?(name = "arr") t ~init ~len =
  Array.init len (fun i -> alloc ?owner ~name:(Printf.sprintf "%s[%d]" name i) t ~init)

let cell t loc = Vec.get t.cells loc

let value t loc = (cell t loc).value

let owner t loc = (cell t loc).owner

let loc_name t loc = (cell t loc).name

let last_accessor t loc = (cell t loc).last_accessor

let apply t ~pid loc op =
  let c = cell t loc in
  let old = c.value in
  c.value <- Op.next_value ~width:t.width op old;
  c.last_accessor <- Some pid;
  old

let peek_next_value t loc op = Op.next_value ~width:t.width op (value t loc)

let snapshot t = Array.init (num_locs t) (fun i -> (cell t i).value)

let full_snapshot t =
  Array.init (num_locs t) (fun i ->
      let c = cell t i in
      (c.value, c.last_accessor))

let reset_values t =
  Vec.iter
    (fun c ->
      c.value <- c.init;
      c.last_accessor <- None)
    t.cells
