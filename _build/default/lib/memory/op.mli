(** The atomic-operation algebra on a single base object.

    The paper's model allows {e arbitrary} atomic operations, as long as
    each operation affects a single memory location ([Rmw] carries an
    arbitrary transition function). Every operation returns the value the
    location held {e immediately before} the operation — this uniform
    convention subsumes the usual return conventions: a [Read] returns the
    current value, [Fas]/[Faa] return the fetched value, and a [Cas]
    succeeded iff the returned value equals its [expected] parameter. *)

type t =
  | Read
  | Write of int
  | Cas of { expected : int; desired : int }
      (** Stores [desired] iff the current value equals [expected]. *)
  | Fas of int  (** Fetch-and-store: unconditionally stores the operand. *)
  | Faa of int
      (** Fetch-and-add: adds the (possibly negative) operand modulo
          [2^w]. *)
  | Rmw of { name : string; f : width:int -> int -> int }
      (** Arbitrary atomic read-modify-write: [f ~width current] is the new
          value (it is truncated to [width] bits by the memory). The [name]
          only serves tracing and debugging. *)

val fai : t
(** Fetch-and-increment, i.e. [Faa 1]. *)

val is_read : t -> bool
(** Only [Read] is a read; everything else invalidates CC cache copies,
    even when it happens to leave the value unchanged (this matches the
    paper's CC model, where any non-read operation invalidates). *)

val next_value : width:int -> t -> int -> int
(** [next_value ~width op current] is the value stored after applying [op]
    to a location of width [width] currently holding [current]. The result
    is always truncated to [width] bits. *)

val name : t -> string

val pp : Format.formatter -> t -> unit
