lib/memory/rmr.mli: Cache Format
