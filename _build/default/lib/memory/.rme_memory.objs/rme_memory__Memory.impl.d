lib/memory/memory.ml: Array Op Printf Rme_util
