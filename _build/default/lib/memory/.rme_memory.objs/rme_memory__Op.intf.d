lib/memory/op.mli: Format
