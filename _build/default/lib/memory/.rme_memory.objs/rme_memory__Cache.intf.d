lib/memory/cache.mli: Rme_util
