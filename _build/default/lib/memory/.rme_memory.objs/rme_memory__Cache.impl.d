lib/memory/cache.ml: Array Hashtbl Option Rme_util
