lib/memory/rmr.ml: Array Cache Format
