lib/memory/memory.mli: Op
