lib/memory/op.ml: Format Rme_util
