(** Small descriptive-statistics helpers for experiment summaries. *)

type summary = {
  count : int;
  min : float;
  max : float;
  mean : float;
  stddev : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

val summarize : float array -> summary
(** Summary of a non-empty sample; raises [Invalid_argument] on empty
    input. The input array is not modified. *)

val summarize_ints : int array -> summary

val percentile : float array -> float -> float
(** [percentile sorted q] with [q] in [0,1], by linear interpolation.
    The array must already be sorted ascending and non-empty. *)

val mean : float array -> float

val max_int_arr : int array -> int
(** Maximum of a non-empty int array. *)

val pp_summary : Format.formatter -> summary -> unit
