type t = {
  title : string;
  columns : string list;
  mutable rows : string list list; (* reversed *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg
      (Printf.sprintf "Table.add_row: %d cells for %d columns (table %S)"
         (List.length row) (List.length t.columns) t.title);
  t.rows <- row :: t.rows

let add_rowf t fmt =
  Printf.ksprintf
    (fun s -> add_row t (String.split_on_char '|' s |> List.map String.trim))
    fmt

let render t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  let note_widths row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  List.iter note_widths all;
  let pad i cell = cell ^ String.make (widths.(i) - String.length cell) ' ' in
  let line row = String.concat "  " (List.mapi pad row) in
  let rule =
    String.concat "  "
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (line t.columns);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (line row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print t = print_string (render t ^ "\n")
