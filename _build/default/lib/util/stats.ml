type summary = {
  count : int;
  min : float;
  max : float;
  mean : float;
  stddev : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let mean a =
  if Array.length a = 0 then invalid_arg "Stats.mean: empty sample";
  Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.percentile: empty sample";
  if n = 1 then sorted.(0)
  else begin
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = min (lo + 1) (n - 1) in
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let summarize a =
  if Array.length a = 0 then invalid_arg "Stats.summarize: empty sample";
  let sorted = Array.copy a in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let m = mean sorted in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 sorted
    /. float_of_int n
  in
  {
    count = n;
    min = sorted.(0);
    max = sorted.(n - 1);
    mean = m;
    stddev = sqrt var;
    p50 = percentile sorted 0.5;
    p95 = percentile sorted 0.95;
    p99 = percentile sorted 0.99;
  }

let summarize_ints a = summarize (Array.map float_of_int a)

let max_int_arr a =
  if Array.length a = 0 then invalid_arg "Stats.max_int_arr: empty sample";
  Array.fold_left max a.(0) a

let pp_summary ppf s =
  Format.fprintf ppf "n=%d min=%.2f mean=%.2f p95=%.2f max=%.2f" s.count s.min
    s.mean s.p95 s.max
