let max_width = 62

let check_width w =
  if w < 1 || w > max_width then
    invalid_arg (Printf.sprintf "Bitword: width %d out of range [1, %d]" w max_width)

let mask w =
  check_width w;
  if w = max_width then max_int else (1 lsl w) - 1

let truncate ~width v = v land mask width

let domain_size w =
  check_width w;
  if w = max_width then invalid_arg "Bitword.domain_size: 2^62 overflows"
  else 1 lsl w

let add ~width a b = truncate ~width (a + b)

let test_bit v i = (v lsr i) land 1 = 1

let set_bit v i = v lor (1 lsl i)

let clear_bit v i = v land lnot (1 lsl i)

let popcount v =
  assert (v >= 0);
  let rec loop acc v = if v = 0 then acc else loop (acc + (v land 1)) (v lsr 1) in
  loop 0 v

let lowest_set_bit v =
  if v = 0 then None
  else begin
    let rec loop i = if test_bit v i then i else loop (i + 1) in
    Some (loop 0)
  end

let bits v =
  let rec loop i v acc =
    if v = 0 then List.rev acc
    else if v land 1 = 1 then loop (i + 1) (v lsr 1) (i :: acc)
    else loop (i + 1) (v lsr 1) acc
  in
  loop 0 v []

let bits_needed n =
  if n <= 1 then n
  else begin
    let rec loop b cap = if cap >= n then b else loop (b + 1) (cap * 2) in
    loop 1 2
  end

let pp ~width ppf v =
  let buf = Bytes.create width in
  for i = 0 to width - 1 do
    Bytes.set buf (width - 1 - i) (if test_bit v i then '1' else '0')
  done;
  Format.pp_print_string ppf (Bytes.to_string buf)
