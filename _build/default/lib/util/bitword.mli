(** Fixed-width machine words.

    Every shared base object in the simulated system stores a value from a
    domain of size [2^w] (the paper's word-size parameter). This module
    provides the arithmetic on such values: masking, wraparound addition,
    and bit manipulation. Values are represented as non-negative OCaml
    integers, so the supported range of widths is [1 <= w <= 62]. *)

val max_width : int
(** Largest supported word width (62, the usable bits of a native [int]). *)

val check_width : int -> unit
(** [check_width w] raises [Invalid_argument] unless [1 <= w <= max_width]. *)

val mask : int -> int
(** [mask w] is [2^w - 1], the all-ones word of width [w]. *)

val truncate : width:int -> int -> int
(** [truncate ~width v] keeps the low [width] bits of [v]. Negative values
    are interpreted in two's complement, i.e. [truncate ~width (-1)] is
    [mask width]. *)

val domain_size : int -> int
(** [domain_size w] is [2^w], the number of distinct values of a [w]-bit
    word. Raises [Invalid_argument] if [w > max_width]. *)

val add : width:int -> int -> int -> int
(** [add ~width a b] is [(a + b) mod 2^width], the semantics of a [w]-bit
    fetch-and-add. [b] may be negative (wraps). *)

val test_bit : int -> int -> bool
(** [test_bit v i] is the [i]-th bit of [v] (bit 0 is least significant). *)

val set_bit : int -> int -> int
(** [set_bit v i] sets bit [i] of [v]. *)

val clear_bit : int -> int -> int
(** [clear_bit v i] clears bit [i] of [v]. *)

val popcount : int -> int
(** Number of set bits. Requires the argument to be non-negative. *)

val lowest_set_bit : int -> int option
(** Index of the least-significant set bit, or [None] when the argument is
    zero. *)

val bits : int -> int list
(** [bits v] is the ascending list of set-bit indices of [v]. *)

val bits_needed : int -> int
(** [bits_needed n] is the number of bits required to represent the values
    [0 .. n-1]; by convention [bits_needed 0 = 0] and [bits_needed 1 = 1]. *)

val pp : width:int -> Format.formatter -> int -> unit
(** Print a word as a zero-padded binary string of the given width. *)
