(** Growable arrays (OCaml 5.1 predates [Dynarray]).

    Used by the simulated memory for location allocation and by trace
    recording. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val get : 'a t -> int -> 'a
(** Raises [Invalid_argument] when the index is out of bounds. *)

val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> int
(** Appends and returns the index of the new element. *)

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val to_array : 'a t -> 'a array
val of_array : 'a array -> 'a t
val clear : 'a t -> unit
