(** Sets of small integers (process IDs, location IDs, vertex IDs).

    A thin layer over [Set.Make (Int)] with the handful of derived
    operations the lower-bound machinery uses repeatedly. *)

include Set.S with type elt = int

val of_range : int -> int -> t
(** [of_range lo hi] is the set [{lo, ..., hi}] (empty when [lo > hi]). *)

val to_sorted_list : t -> int list
(** Ascending element list. *)

val pp : Format.formatter -> t -> unit
(** Prints as [{1, 4, 5}]. *)

val encode : t -> int
(** [encode s] is [sum over p in s of 2^p]: the paper's column index for a
    set of processes. Elements must be in [0, 61]. *)

val decode : int -> t
(** Inverse of [encode]. *)
