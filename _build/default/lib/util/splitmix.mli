(** Deterministic pseudo-random number generation (SplitMix64).

    Every randomised component of the simulator (schedulers, crash
    injection, workload generators, property tests that need auxiliary
    randomness) draws from this generator so that runs are reproducible
    bit-for-bit from a seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator. Equal seeds give equal streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val next : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [0, bound). Raises [Invalid_argument] when
    [bound <= 0]. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> bool

val split : t -> t
(** A generator whose stream is independent of the parent's future
    outputs. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. Raises [Invalid_argument] on an
    empty array. *)
