include Set.Make (Int)

let of_range lo hi =
  let rec loop i acc = if i > hi then acc else loop (i + 1) (add i acc) in
  loop lo empty

let to_sorted_list = elements

let pp ppf s =
  Format.fprintf ppf "{%s}"
    (String.concat ", " (List.map string_of_int (elements s)))

let encode s =
  fold
    (fun p acc ->
      if p < 0 || p > 61 then invalid_arg "Intset.encode: element out of [0, 61]";
      acc lor (1 lsl p))
    s 0

let decode v =
  let rec loop i v acc =
    if v = 0 then acc
    else if v land 1 = 1 then loop (i + 1) (v lsr 1) (add i acc)
    else loop (i + 1) (v lsr 1) acc
  in
  loop 0 v empty
