(** ASCII table rendering for experiment output.

    The benchmark harness prints every reproduced table/figure as rows of
    aligned columns, in the spirit of the series a paper plot would show. *)

type t

val create : title:string -> columns:string list -> t
(** A fresh table with the given column headers. *)

val add_row : t -> string list -> unit
(** Append a row; the row must have as many cells as there are columns. *)

val add_rowf : t -> ('a, unit, string, unit) format4 -> 'a
(** [add_rowf t fmt ...] formats a single string and splits it on ['|']
    characters into cells. Convenient for numeric rows. *)

val render : t -> string
(** The table as a string, with a title line, a header, a rule, and the
    rows, all columns padded to their widest cell. *)

val print : t -> unit
(** [render] followed by printing to stdout with a trailing newline. *)
