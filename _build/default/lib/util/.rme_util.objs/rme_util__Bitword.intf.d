lib/util/bitword.mli: Format
