lib/util/intset.mli: Format Set
