lib/util/bitword.ml: Bytes Format List Printf
