lib/util/splitmix.mli:
