lib/util/table.mli:
