lib/util/intset.ml: Format Int List Set String
