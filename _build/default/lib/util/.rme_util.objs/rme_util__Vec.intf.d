lib/util/vec.mli:
