type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy g = { state = g.state }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

let int g bound =
  if bound <= 0 then invalid_arg "Splitmix.int: bound must be positive";
  (* Take the top bits, which have the best statistical quality, and reduce
     modulo the bound; the modulo bias is negligible for simulation use. *)
  let raw = Int64.to_int (Int64.shift_right_logical (next g) 2) in
  raw mod bound

let float g =
  let raw = Int64.to_float (Int64.shift_right_logical (next g) 11) in
  raw *. (1.0 /. 9007199254740992.0)

let bool g = Int64.logand (next g) 1L = 1L

let split g =
  let seed = Int64.to_int (next g) in
  { state = mix (Int64.of_int seed) }

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick g a =
  if Array.length a = 0 then invalid_arg "Splitmix.pick: empty array";
  a.(int g (Array.length a))
