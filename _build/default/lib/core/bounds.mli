(** Closed-form RMR complexity formulas of the paper and its related
    work, for comparing measured values against predicted shapes. *)

val log2 : float -> float

val log_base : base:float -> float -> float

val theorem1_lower : n:int -> w:int -> float
(** The paper's Theorem 1: [min(log_w n, log n / log log n)] (the
    asymptotic body, constant factor 1, floored at 1). *)

val km_upper : n:int -> w:int -> float
(** Katzan–Morrison upper bound shape: [max 1 (ceil (log_w n))]. *)

val log_n : n:int -> float
(** [log2 n], the Yang–Anderson / recoverable-tournament shape. *)

val log_over_loglog : n:int -> float
(** [log n / log log n] — the optimal RME complexity for
    FAS/CAS-style primitives (Golab–Hendler, Jayanti–Jayanti–Joshi). *)

val crossover_width : n:int -> int
(** The [w ~ log n] point at which [log_w n] meets
    [log n / log log n]. *)

val tree_levels : n:int -> b:int -> int
(** [ceil (log_b n)], the number of levels of a [b]-ary arbitration
    tree (0 for [n <= 1]) — the exact structural quantity behind
    [km_upper]. *)
