let log2 x = log x /. log 2.0

let log_base ~base x = log x /. log base

let log_n ~n = if n <= 1 then 0.0 else log2 (float_of_int n)

let log_over_loglog ~n =
  if n <= 2 then 1.0
  else begin
    let l = log2 (float_of_int n) in
    let ll = log2 l in
    if ll <= 1.0 then l else l /. ll
  end

let km_upper ~n ~w =
  if n <= 1 then 0.0
  else begin
    let b = float_of_int (max 2 w) in
    Float.max 1.0 (Float.ceil (log_base ~base:b (float_of_int n)))
  end

let theorem1_lower ~n ~w =
  if n <= 1 then 0.0
  else Float.max 1.0 (Float.min (km_upper ~n ~w) (log_over_loglog ~n))

let crossover_width ~n = max 2 (int_of_float (Float.round (log_n ~n)))

let tree_levels ~n ~b =
  if n <= 1 then 0
  else begin
    let b = max 2 b in
    let rec loop l cap = if cap >= n then l else loop (l + 1) (cap * b) in
    loop 1 b
  end
