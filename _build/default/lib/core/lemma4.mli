(** Lemma 4 — the dichotomy on [k]-partite hypergraphs, constructively.

    Given [H = (X_1, ..., X_k, E)] with [|X_1| <= s(1+eps)] and
    [0 <= eps < 1/2], there is a set [Z ⊆ X_1] such that either

    (a) [|Z| <= 2] and [|∪_{z in Z} pi_z(E)| >= |E|/s], or
    (b) [|Z| >= s(1+eps)(1-2eps)] and [∩_{z in Z} pi_z(E) ≠ ∅].

    [solve] returns a witness for one of the two cases; it follows the
    paper's proof (check all pairs for (a); when none works, the
    expectation argument guarantees a common tail [e*] shared by enough
    projections, which [solve] finds by exact counting). Projections are
    always taken along the {e first} part, which is how Lemma 5 consumes
    this lemma. *)

type outcome =
  | Union_small of { zs : int list; union : Partite.edge list }
      (** Case (a): [|zs| <= 2]; [union] is [∪ pi_z(E)], edges of arity
          [k-1]. *)
  | Intersect_large of { zs : int list; witness : Partite.edge }
      (** Case (b): [witness] is an [e* in ∩_{z in zs} pi_z(E)], arity
          [k-1]. *)

val solve : s:float -> eps:float -> parts:int array array -> edges:Partite.edge list -> outcome
(** Raises [Invalid_argument] when preconditions fail ([s <= 0],
    [eps] out of range, [|X_1| > s(1+eps)], or no edges) or — which the
    lemma proves impossible — when neither case can be witnessed. *)

val verify :
  s:float ->
  eps:float ->
  parts:int array array ->
  edges:Partite.edge list ->
  outcome ->
  (unit, string) result
(** Independently re-check an outcome against the lemma's statement. *)
