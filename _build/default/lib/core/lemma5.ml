module Intset = Rme_util.Intset

type outcome = {
  d : int;
  hyperedges : Partite.edge list;
  u : Intset.t;
  zs : int list array;
}

let check_preconditions ~s ~eps ~parts ~edges =
  if s <= 0.0 then invalid_arg "Lemma5: s must be positive";
  if eps < 0.0 || eps >= 0.5 then invalid_arg "Lemma5: eps must be in [0, 1/2)";
  let k = Array.length parts in
  if k = 0 then invalid_arg "Lemma5: no parts";
  Array.iteri
    (fun i x ->
      if float_of_int (Array.length x) > (s *. (1.0 +. eps)) +. 1e-9 then
        invalid_arg (Printf.sprintf "Lemma5: |X_%d| exceeds s(1+eps)" (i + 1)))
    parts;
  let need = s ** float_of_int k in
  if float_of_int (List.length edges) < need -. 1e-6 then
    invalid_arg
      (Printf.sprintf "Lemma5: |E| = %d below s^k = %.2f" (List.length edges)
         need)

let solve ~s ~eps ~parts ~edges =
  check_preconditions ~s ~eps ~parts ~edges;
  let k = Array.length parts in
  let zs_acc = ref [] in
  (* Peel parts off the front with Lemma 4 until case (b) fires (or the
     last part is reached, where all surviving singleton edges form Z_k). *)
  let rec peel i edges_cur =
    let parts_rem = Array.sub parts i (k - i) in
    if i = k - 1 then begin
      let z = List.sort_uniq compare (List.map (fun e -> e.(0)) edges_cur) in
      zs_acc := z :: !zs_acc;
      (k, [||])
    end
    else begin
      match Lemma4.solve ~s ~eps ~parts:parts_rem ~edges:edges_cur with
      | Lemma4.Union_small { zs; union } ->
          zs_acc := zs :: !zs_acc;
          peel (i + 1) union
      | Lemma4.Intersect_large { zs; witness } ->
          zs_acc := zs :: !zs_acc;
          (i + 1, witness)
    end
  in
  let d, e_star = peel 0 edges in
  let zs = Array.of_list (List.rev !zs_acc) in
  (* Reconstruct F: edges whose first d components lie in Z_1 .. Z_d and
     whose remaining components spell out e*. *)
  let in_z j v = List.exists (fun z -> z = v) zs.(j) in
  let matches e =
    let ok_prefix =
      let rec chk j = j >= d || (in_z j e.(j) && chk (j + 1)) in
      chk 0
    in
    ok_prefix
    &&
    let rec chk j = j >= k || (e.(j) = e_star.(j - d) && chk (j + 1)) in
    chk d
  in
  let f = List.filter matches edges in
  if f = [] then
    invalid_arg "Lemma5: internal error — reconstructed F is empty";
  { d; hyperedges = f; u = Partite.vertices_of_edges f; zs }

let verify ~s ~eps ~parts ~edges outcome =
  let ( let* ) r f = Result.bind r f in
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let k = Array.length parts in
  let* () =
    if outcome.d >= 1 && outcome.d <= k then Ok ()
    else fail "d = %d out of range" outcome.d
  in
  let* () =
    if outcome.hyperedges <> [] then Ok () else fail "F is empty"
  in
  let edge_set = Hashtbl.create 1024 in
  List.iter (fun e -> Hashtbl.replace edge_set e ()) edges;
  let* () =
    if List.for_all (Hashtbl.mem edge_set) outcome.hyperedges then Ok ()
    else fail "F contains an edge not in E"
  in
  let u = Partite.vertices_of_edges outcome.hyperedges in
  let* () =
    if Intset.equal u outcome.u then Ok () else fail "U does not match F"
  in
  let inter_size i =
    Array.fold_left
      (fun acc v -> if Intset.mem v u then acc + 1 else acc)
      0 parts.(i)
  in
  let* () =
    let rec chk i =
      if i >= k then Ok ()
      else if i = outcome.d - 1 then chk (i + 1)
      else if inter_size i <= 2 then chk (i + 1)
      else fail "|U ∩ X_%d| = %d > 2" (i + 1) (inter_size i)
    in
    chk 0
  in
  let need = s *. (1.0 +. eps) *. (1.0 -. (2.0 *. eps)) in
  if float_of_int (inter_size (outcome.d - 1)) >= need -. 1e-9 then Ok ()
  else
    fail "|U ∩ X_d| = %d below %.2f" (inter_size (outcome.d - 1)) need
