type outcome =
  | Union_small of { zs : int list; union : Partite.edge list }
  | Intersect_large of { zs : int list; witness : Partite.edge }

(* Projections are along part 0 throughout (Lemma 5 peels parts off the
   front). For each vertex z of X_1 we collect the set of tails
   pi_z(E); for each tail we remember which vertices project onto it. *)

type projections = {
  by_vertex : (int, (Partite.edge, unit) Hashtbl.t) Hashtbl.t;
  by_tail : (Partite.edge, int list ref) Hashtbl.t;
  total : int;
}

let project edges =
  let by_vertex = Hashtbl.create 64 in
  let by_tail = Hashtbl.create 1024 in
  List.iter
    (fun e ->
      let z = e.(0) in
      let tail = Partite.tail_key ~part:0 e in
      let tails =
        match Hashtbl.find_opt by_vertex z with
        | Some t -> t
        | None ->
            let t = Hashtbl.create 64 in
            Hashtbl.add by_vertex z t;
            t
      in
      if not (Hashtbl.mem tails tail) then begin
        Hashtbl.replace tails tail ();
        match Hashtbl.find_opt by_tail tail with
        | Some l -> l := z :: !l
        | None -> Hashtbl.add by_tail tail (ref [ z ])
      end)
    edges;
  { by_vertex; by_tail; total = List.length edges }

let proj_size p z =
  match Hashtbl.find_opt p.by_vertex z with
  | Some t -> Hashtbl.length t
  | None -> 0

let union_edges p zs =
  let seen = Hashtbl.create 1024 in
  let acc = ref [] in
  List.iter
    (fun z ->
      match Hashtbl.find_opt p.by_vertex z with
      | Some tails ->
          Hashtbl.iter
            (fun tail () ->
              if not (Hashtbl.mem seen tail) then begin
                Hashtbl.add seen tail ();
                acc := tail :: !acc
              end)
            tails
      | None -> ())
    zs;
  !acc

let check_preconditions ~s ~eps ~parts ~edges =
  if s <= 0.0 then invalid_arg "Lemma4: s must be positive";
  if eps < 0.0 || eps >= 0.5 then invalid_arg "Lemma4: eps must be in [0, 1/2)";
  if Array.length parts = 0 then invalid_arg "Lemma4: no parts";
  if edges = [] then invalid_arg "Lemma4: no edges";
  let x1 = float_of_int (Array.length parts.(0)) in
  if x1 > s *. (1.0 +. eps) +. 1e-9 then
    invalid_arg
      (Printf.sprintf "Lemma4: |X_1| = %d exceeds s(1+eps) = %.3f"
         (Array.length parts.(0))
         (s *. (1.0 +. eps)))

let solve ~s ~eps ~parts ~edges =
  check_preconditions ~s ~eps ~parts ~edges;
  let p = project edges in
  let threshold_a = float_of_int p.total /. s in
  let x1 = Array.to_list parts.(0) in
  (* Case (a) with a single vertex. *)
  let single =
    List.find_opt (fun z -> float_of_int (proj_size p z) >= threshold_a) x1
  in
  match single with
  | Some z -> Union_small { zs = [ z ]; union = union_edges p [ z ] }
  | None -> begin
      (* Case (a) with a pair: |p_i ∪ p_j| = |p_i| + |p_j| - |p_i ∩ p_j|.
         Intersections are counted exactly by walking the tails. *)
      let inter = Hashtbl.create 256 in
      Hashtbl.iter
        (fun _tail zs ->
          let l = List.sort_uniq compare !zs in
          let rec pairs = function
            | [] -> ()
            | z1 :: rest ->
                List.iter
                  (fun z2 ->
                    let key = (z1, z2) in
                    let c = Option.value ~default:0 (Hashtbl.find_opt inter key) in
                    Hashtbl.replace inter key (c + 1))
                  rest;
                pairs rest
          in
          pairs l)
        p.by_tail;
      let inter_size z1 z2 =
        let a, b = if z1 < z2 then (z1, z2) else (z2, z1) in
        Option.value ~default:0 (Hashtbl.find_opt inter (a, b))
      in
      let found_pair = ref None in
      let rec scan_pairs = function
        | [] -> ()
        | z1 :: rest ->
            List.iter
              (fun z2 ->
                if !found_pair = None then begin
                  let u =
                    proj_size p z1 + proj_size p z2 - inter_size z1 z2
                  in
                  if float_of_int u >= threshold_a then found_pair := Some (z1, z2)
                end)
              rest;
            if !found_pair = None then scan_pairs rest
      in
      scan_pairs x1;
      match !found_pair with
      | Some (z1, z2) ->
          Union_small { zs = [ z1; z2 ]; union = union_edges p [ z1; z2 ] }
      | None -> begin
          (* Case (b): find the tail shared by the most projections. The
             expectation argument of the paper guarantees one shared by at
             least s(1+eps)(1-2eps) of them once (a) fails everywhere. *)
          let threshold_b = s *. (1.0 +. eps) *. (1.0 -. (2.0 *. eps)) in
          let best = ref None in
          Hashtbl.iter
            (fun tail zs ->
              let l = List.sort_uniq compare !zs in
              let c = List.length l in
              match !best with
              | Some (_, _, c') when c' >= c -> ()
              | _ -> best := Some (tail, l, c))
            p.by_tail;
          match !best with
          | Some (tail, zs, c) when float_of_int c >= threshold_b ->
              Intersect_large { zs; witness = tail }
          | Some (_, _, c) ->
              invalid_arg
                (Printf.sprintf
                   "Lemma4: no witness found (best intersection %d < %.2f) — \
                    preconditions must have been violated"
                   c threshold_b)
          | None -> invalid_arg "Lemma4: empty projection structure"
        end
    end

let verify ~s ~eps ~parts ~edges outcome =
  let ( let* ) r f = Result.bind r f in
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let total = List.length edges in
  let member_x1 z = Array.exists (fun v -> v = z) parts.(0) in
  match outcome with
  | Union_small { zs; union } ->
      let* () = if List.length zs <= 2 then Ok () else fail "case (a): |Z| > 2" in
      let* () =
        if List.for_all member_x1 zs then Ok () else fail "case (a): Z not in X_1"
      in
      (* Recompute the union independently. *)
      let expected = Hashtbl.create 64 in
      List.iter
        (fun z ->
          List.iter
            (fun t -> Hashtbl.replace expected t ())
            (Partite.pi_z ~part:0 ~z edges))
        zs;
      let* () =
        if List.length union = Hashtbl.length expected
           && List.for_all (Hashtbl.mem expected) union
        then Ok ()
        else fail "case (a): union does not match pi projections"
      in
      if float_of_int (List.length union) >= (float_of_int total /. s) -. 1e-9
      then Ok ()
      else
        fail "case (a): union size %d below |E|/s = %.2f" (List.length union)
          (float_of_int total /. s)
  | Intersect_large { zs; witness } ->
      let need = s *. (1.0 +. eps) *. (1.0 -. (2.0 *. eps)) in
      let* () =
        if float_of_int (List.length zs) >= need -. 1e-9 then Ok ()
        else fail "case (b): |Z| = %d below %.2f" (List.length zs) need
      in
      let* () =
        if List.for_all member_x1 zs then Ok () else fail "case (b): Z not in X_1"
      in
      if
        List.for_all
          (fun z ->
            List.exists (fun t -> t = witness) (Partite.pi_z ~part:0 ~z edges))
          zs
      then Ok ()
      else fail "case (b): witness not in every projection"
