module Intset = Rme_util.Intset

type params = {
  ell : int;
  delta : float;
  k : int;
  subgroup_size : int;
  s : float;
  eps : float;
}

let paper_params ~ell ~delta =
  if ell < 1 then invalid_arg "Hiding.paper_params: ell must be >= 1";
  if delta < 1.0 then invalid_arg "Hiding.paper_params: delta must be >= 1";
  let subgroup_size = int_of_float (27.0 *. delta *. float_of_int ell) in
  {
    ell;
    delta;
    k = 4 * ell;
    subgroup_size;
    s = float_of_int subgroup_size /. 1.2;
    eps = 0.2;
  }

let min_group_size p = p.k * p.subgroup_size

let check_params p =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  if p.ell < 0 then fail "ell must be >= 0"
  else if p.delta < 1.0 then fail "delta must be >= 1"
  else if p.k < 1 then fail "k must be >= 1"
  else if p.subgroup_size < 1 then fail "subgroup_size must be >= 1"
  else if p.s <= 0.0 then fail "s must be positive"
  else if p.eps < 0.0 || p.eps >= 0.5 then fail "eps must be in [0, 1/2)"
  else if float_of_int p.subgroup_size > (p.s *. (1.0 +. p.eps)) +. 1e-9 then
    fail "subgroup_size %d exceeds s(1+eps) = %.3f" p.subgroup_size
      (p.s *. (1.0 +. p.eps))
  else begin
    (* Majority-value edge count: subgroup^k / 2^ell >= s^k. *)
    let lhs =
      float_of_int p.k
      *. log (float_of_int p.subgroup_size /. p.s)
    in
    let rhs = float_of_int p.ell *. log 2.0 in
    if lhs < rhs -. 1e-9 then
      fail "(subgroup/s)^k = e^%.3f below 2^ell = e^%.3f" lhs rhs
    else begin
      (* |I_D| >= m/2 needs min |U_i \ V_i| >= 2*delta*max |V_i|. *)
      let uv_min = (p.s *. (1.0 +. p.eps) *. (1.0 -. (2.0 *. p.eps))) -. 1.0 in
      let v_max = float_of_int ((2 * (p.k - 1)) + 1) in
      if uv_min < 2.0 *. p.delta *. v_max -. 1e-9 then
        fail "hiding margin too small: |U\\V| >= %.2f but need >= 2*delta*|V| = %.2f"
          uv_min
          (2.0 *. p.delta *. v_max)
      else Ok ()
    end
  end

type group_solution = {
  index : int;
  parts : int array array;
  a : Partite.edge;
  v : Intset.t;
  d : int;
  f_edges : Partite.edge list;
  u : Intset.t;
  y : int;
}

type t = { y0 : int; groups : group_solution array; params : params }

let subgroup_partition p xs =
  if Array.length xs < min_group_size p then
    invalid_arg
      (Printf.sprintf "Hiding: group of size %d below required %d"
         (Array.length xs) (min_group_size p));
  Array.init p.k (fun j -> Array.sub xs (j * p.subgroup_size) p.subgroup_size)

let solve p ~groups ~f ~y0 =
  (match check_params p with
  | Ok () -> ()
  | Error m -> invalid_arg ("Hiding.solve: " ^ m));
  let y_prev = ref y0 in
  let solutions =
    Array.mapi
      (fun index xs ->
        let parts = subgroup_partition p xs in
        let complete = Partite.complete ~parts in
        (* Pick the value y_i produced by the most tuples. *)
        let by_value =
          Partite.group_by_value complete.Partite.edges ~f:(fun e ->
              f ~y:!y_prev e)
        in
        let y_i, edges_y =
          Hashtbl.fold
            (fun y es (best_y, best_es) ->
              if List.length es > List.length best_es then (y, es)
              else (best_y, best_es))
            by_value (0, [])
        in
        let outcome = Lemma5.solve ~s:p.s ~eps:p.eps ~parts ~edges:edges_y in
        let a =
          match outcome.Lemma5.hyperedges with
          | e :: _ -> e
          | [] -> assert false (* Lemma5 guarantees non-empty F *)
        in
        let x_d = parts.(outcome.Lemma5.d - 1) in
        let u = outcome.Lemma5.u in
        (* V_i = (U_i \ X_{i,d_i}) ∪ A_i. *)
        let v =
          Array.fold_left
            (fun acc vtx -> Intset.add vtx acc)
            (Array.fold_left (fun acc vtx -> Intset.remove vtx acc) u x_d)
            a
        in
        let sol =
          {
            index;
            parts;
            a;
            v;
            d = outcome.Lemma5.d;
            f_edges = outcome.Lemma5.hyperedges;
            u;
            y = y_i;
          }
        in
        y_prev := y_i;
        sol)
      groups
  in
  { y0; groups = solutions; params = p }

let all_v t =
  Array.fold_left (fun acc g -> Intset.union acc g.v) Intset.empty t.groups

let y_after t i = if i = 0 then t.y0 else t.groups.(i - 1).y

type hidden = { index : int; z : int; b : int array; e : Partite.edge }

let query t ~d:discovered =
  Array.to_list t.groups
  |> List.filter_map (fun g ->
         let x_d = g.parts.(g.d - 1) in
         (* Candidates for the hidden process: U_i ∩ X_{i,d_i}, minus V_i
            and minus the discovery set D. *)
         let candidates =
           Array.to_list x_d
           |> List.filter (fun z ->
                  Intset.mem z g.u
                  && (not (Intset.mem z g.v))
                  && not (Intset.mem z discovered))
         in
         match candidates with
         | [] -> None
         | z :: _ ->
             (* Any F_i-hyperedge through z serves: its other components
                lie in U_i \ X_{i,d_i} ⊆ V_i. *)
             let e =
               List.find (fun e -> e.(g.d - 1) = z) g.f_edges
             in
             let b =
               Array.of_list
                 (List.filteri
                    (fun j _ -> j <> g.d - 1)
                    (Array.to_list e))
             in
             Some { index = g.index; z; b; e })

let verify t ~f =
  let ( let* ) r fn = Result.bind r fn in
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let rec each i =
    if i >= Array.length t.groups then Ok ()
    else begin
      let g = t.groups.(i) in
      let y_prev = y_after t i in
      (* A_i steps must change the value from y_{i-1} to y_i. *)
      let* () =
        if f ~y:y_prev g.a = g.y then Ok ()
        else fail "group %d: f_{y_%d}(A) <> y_%d" i i (i + 1)
      in
      (* A_i ⊆ V_i ⊆ X_i, and A_i non-empty. *)
      let* () =
        if Array.length g.a > 0 then Ok () else fail "group %d: A empty" i
      in
      let x_i =
        Array.fold_left
          (fun acc part ->
            Array.fold_left (fun acc v -> Intset.add v acc) acc part)
          Intset.empty g.parts
      in
      let* () =
        if Array.for_all (fun v -> Intset.mem v g.v) g.a then Ok ()
        else fail "group %d: A not within V" i
      in
      let* () =
        if Intset.subset g.v x_i then Ok () else fail "group %d: V not within X" i
      in
      (* Every F_i edge evaluates to y_i. *)
      let* () =
        if List.for_all (fun e -> f ~y:y_prev e = g.y) g.f_edges then Ok ()
        else fail "group %d: some F edge does not reach y_%d" i (i + 1)
      in
      each (i + 1)
    end
  in
  each 0

let verify_query t ~f ~d:discovered hiddens =
  let ( let* ) r fn = Result.bind r fn in
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let m = Array.length t.groups in
  let budget =
    t.params.delta *. float_of_int (Intset.cardinal (all_v t))
  in
  let* () =
    if float_of_int (Intset.cardinal discovered) <= budget +. 1e-9 then
      if 2 * List.length hiddens >= m then Ok ()
      else
        fail "|I_D| = %d below m/2 = %.1f (|D| = %d within budget %.1f)"
          (List.length hiddens)
          (float_of_int m /. 2.0)
          (Intset.cardinal discovered)
          budget
    else Ok () (* no guarantee claimed beyond the budget *)
  in
  let rec each = function
    | [] -> Ok ()
    | h :: rest ->
        let g = t.groups.(h.index) in
        let y_prev = y_after t h.index in
        let* () =
          if (not (Intset.mem h.z g.v)) && not (Intset.mem h.z discovered)
          then Ok ()
          else fail "group %d: z in V ∪ D" h.index
        in
        let* () =
          if Array.for_all (fun v -> Intset.mem v g.v) h.b then Ok ()
          else fail "group %d: B not within V" h.index
        in
        let* () =
          if f ~y:y_prev h.e = g.y then Ok ()
          else fail "group %d: f_{y_prev}(B ∪ {z}) <> y_i" h.index
        in
        each rest
  in
  each hiddens
