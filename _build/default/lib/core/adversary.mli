(** The lower-bound adversary: the round-based schedule construction of
    Section 3 of the paper, executed against a real lock implementation.

    The adversary maintains one concrete execution — the {e maximal
    schedule} — together with the set of {e active} processes: processes
    still in their entry protocol that have never crashed, never entered
    the critical section, and have not been discovered by any other
    process. Each round it:

    + runs every active process up to its next RMR-incurring step (the
      setup phase; possible because non-RMR steps convey no information
      under invariants (I8)/(I9));
    + classifies the round by contention against the threshold [k]:
      {ul
      {- {b low contention}: keeps an independent set of the conflict
         graph (same object, object owned by an active process, object
         where an active process is visible) and lets each member take
         one RMR step;}
      {- {b high contention, read case}: poised reads cannot be observed,
         so all read-poised group members step;}
      {- {b high contention, hide case}: per group of [k] processes
         poised on one object, finds step sets [A] and [B ∪ {z}] with
         identical resulting values (the Process-Hiding argument,
         instantiated per operation type), schedules [B ∪ {z}], then
         crashes the [V]-processes and runs them to completion — [z]'s
         RMR is hidden behind the indistinguishable [A]-execution.}}
    + removes any process that would be discovered, by {e replaying} the
      entire schedule without it — re-checking, step by step, that every
      surviving process observes exactly the values it originally
      observed (the executable version of invariants (I3)/(I5)).

    The construction ends when fewer than two active processes remain;
    every survivor of round [i] has incurred at least [i] RMRs without
    entering the critical section or crashing — the quantity Theorem 1
    lower-bounds by [Ω(min(log_w n, log n/log log n))]. *)

type config = {
  n : int;
  width : int;
  model : Rme_memory.Rmr.model;
  k : int;  (** contention threshold; the paper's [w^d]. *)
  local_cap : int;  (** setup-phase step budget per process per round. *)
  completion_cap : int;  (** step budget for a crash-and-complete run. *)
  max_rounds : int;
}

val default_config : n:int -> width:int -> Rme_memory.Rmr.model -> config
(** [k = max 2 w], generous caps. *)

type round_kind = Low_contention | High_read | High_hide

val round_kind_name : round_kind -> string

type round_info = {
  index : int;  (** 1-based. *)
  kind : round_kind;
  active_before : int;
  active_after : int;
  newly_finished : int;  (** crash-completed this round. *)
  newly_removed : int;  (** dropped from the schedule this round. *)
  replays : int;  (** fixpoint iterations the round needed. *)
}

type round_meta = {
  boundary : int;
      (** Committed directive count at the end of the round — the prefix
          of the schedule that constitutes row [i] of [σ_round]. *)
  meta_active : Rme_util.Intset.t;
  meta_finished : Rme_util.Intset.t;
  meta_removed : Rme_util.Intset.t;
}

type committed_schedule = {
  ctx : Schedule.context;
  directives : (Schedule.directive * Schedule.record) array;
  metas : round_meta list;  (** oldest round first. *)
}
(** The maximal schedule the construction committed, replayable and
    filterable — the input to {!Schedule_table.check}. *)

type result = {
  rounds : round_info list;
  rounds_completed : int;
  survivors : Rme_util.Intset.t;
  survivor_min_rmrs : int;
      (** Minimum RMRs over surviving active processes — each survivor of
          round [i] has at least [i]. *)
  finished : int;  (** processes driven through complete super-passages. *)
  removed : int;
  escaped : int;  (** actives that completed entry uninstructed (none for
                      a correct construction at adequate [n]). *)
  replay_checked_steps : int;
      (** Step observations re-verified identical across replays. *)
  predicted_lower_bound : float;  (** Theorem 1's formula for (n, w). *)
  schedule : committed_schedule;
}

val run : config -> Rme_sim.Lock_intf.factory -> result
