(** The explicit schedule table [σ_round[i][0..2^n - 1]] of Section 3.3,
    materialised and checked for small [n].

    The adversary's construction is a proof-by-invariants over a row of
    [2^{n_i}] schedules per round: the maximal schedule plus one
    sub-schedule for every subset of its active processes. The adversary
    itself only ever executes the maximal schedule; this module
    {e materialises} the whole row — replaying the committed directives
    filtered to every admissible column set [S] with
    [F(A[S_max]) ⊆ S ⊆ S_max] — and checks the paper's invariants on
    each:

    - (I1)/(I2) hold by construction of the filtering and are asserted;
    - (I3) process states agree with the maximal schedule (checked as:
      identical recorded observations during replay, identical phase,
      poised operation, crash count and — via (I9) — RMR count);
    - (I4) the finished set is identical in every column;
    - (I5) every object's value across columns takes at most two values,
      determined by whether the column contains the object's last
      accessor in the maximal schedule;
    - (I6) every process crashes at most once and unfinished processes
      never crash;
    - (I7) unfinished processes never enter the critical section;
    - (I8) (DSM) objects owned by an active process are accessed only by
      their owner;
    - (I9) (CC) each kept process's set of valid cache copies matches the
      maximal schedule's;
    - (I10) every active process has incurred at least [i] RMRs by the
      end of row [i].

    Columns are enumerated exhaustively, so this is exponential in the
    number of active processes; callers bound it with [max_actives]. *)

type violation = {
  round : int;
  invariant : string;  (** e.g. ["I5"]. *)
  column : Rme_util.Intset.t option;  (** offending column, if any. *)
  detail : string;
}

type report = {
  rounds_checked : int;
  columns_checked : int;
  assertions : int;  (** recorded-observation checks that passed. *)
  violations : violation list;
}

val ok : report -> bool

val check : ?max_actives:int -> Adversary.committed_schedule -> report
(** Verify every round whose active set has at most [max_actives]
    processes (default 10; [2^max_actives] replays per round). *)

val pp_report : Format.formatter -> report -> unit
