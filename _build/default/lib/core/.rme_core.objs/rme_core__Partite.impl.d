lib/core/partite.ml: Array Hashtbl List Option Printf Rme_util
