lib/core/schedule.mli: Hashtbl Machine Rme_memory Rme_sim Rme_util
