lib/core/lemma4.ml: Array Hashtbl List Option Partite Printf Result
