lib/core/machine.mli: Rme_memory Rme_sim
