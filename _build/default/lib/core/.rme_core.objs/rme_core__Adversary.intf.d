lib/core/adversary.mli: Rme_memory Rme_sim Rme_util Schedule
