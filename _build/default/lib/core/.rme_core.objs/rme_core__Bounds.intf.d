lib/core/bounds.mli:
