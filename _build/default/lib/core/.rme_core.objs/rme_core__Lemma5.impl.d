lib/core/lemma5.ml: Array Hashtbl Lemma4 List Partite Printf Result Rme_util
