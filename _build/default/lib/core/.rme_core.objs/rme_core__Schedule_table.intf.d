lib/core/schedule_table.mli: Adversary Format Rme_util
