lib/core/schedule.ml: Array Hashtbl List Machine Option Printf Rme_memory Rme_sim Rme_util
