lib/core/schedule_table.ml: Adversary Array Format List Machine Option Printf Rme_memory Rme_util Schedule
