lib/core/partite.mli: Hashtbl Rme_util
