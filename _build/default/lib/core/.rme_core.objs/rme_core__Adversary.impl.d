lib/core/adversary.ml: Array Bounds Hashtbl List Machine Option Rme_memory Rme_util Schedule
