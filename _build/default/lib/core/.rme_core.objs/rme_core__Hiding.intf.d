lib/core/hiding.mli: Partite Rme_util
