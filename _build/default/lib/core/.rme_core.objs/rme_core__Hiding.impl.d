lib/core/hiding.ml: Array Hashtbl Lemma5 List Partite Printf Result Rme_util
