lib/core/lemma4.mli: Partite
