lib/core/machine.ml: Array Printf Rme_memory Rme_sim
