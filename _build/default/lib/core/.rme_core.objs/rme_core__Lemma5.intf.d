lib/core/lemma5.mli: Partite Rme_util
