(** The Process-Hiding Lemma (Lemma 2) — the paper's key technical
    contribution, implemented constructively.

    Setting: groups [X_1, ..., X_m] of processes, each poised to apply an
    operation to the same [w]-bit object; a value domain [Y] with
    [|Y| <= 2^ell]; for each [y in Y] a function [f_y : 2^X -> Y] giving
    the object's value after a subset of processes take one step each (in
    a fixed order); and a crash-discovery budget [delta].

    [solve] produces, per group, a value [y_i], a step set [A_i] and a
    crash set [V_i ⊇ A_i] such that stepping exactly [A_i] turns the
    object from [y_{i-1}] into [y_i]. Later — once the adversary knows
    which processes [D] the crashed-and-recovered [V]-processes would
    discover — [query] produces, for at least half the groups, an
    {e alternative} step set [B_i ∪ {z_i}] with [B_i ⊆ V_i] and
    [z_i ∉ V_i ∪ D] that reaches the {e same} value [y_i]: the two
    executions are indistinguishable to everyone but [z_i], so [z_i]'s
    RMR-incurring step is hidden.

    The paper's constants ([k = 4*ell] subgroups of [floor(27*delta*ell)]
    processes, [s = floor(27*delta*ell)/1.2], [eps = 0.2]) are defaults
    of {!params}; any parameters passing {!check_params} give the same
    guarantees. Cost warning: [solve] evaluates [f] on all
    [subgroup_size^k] tuples of each group — keep parameters small (the
    paper's constants are feasible for [ell = 1], i.e. binary-valued
    objects). *)

type params = {
  ell : int;  (** [|Y| <= 2^ell]. *)
  delta : float;  (** discovery budget multiplier, [>= 1]. *)
  k : int;  (** subgroups per group. *)
  subgroup_size : int;
  s : float;  (** Lemma 5 parameter. *)
  eps : float;  (** Lemma 5 parameter, in [0, 1/2). *)
}

val paper_params : ell:int -> delta:float -> params
(** The constants used in the paper's proof. *)

val min_group_size : params -> int
(** [k * subgroup_size]; every group must be at least this large (the
    paper's [108*delta*ell^2] with default constants). *)

val check_params : params -> (unit, string) result
(** Validates the inequality chain the proof rests on:
    [subgroup_size <= s*(1+eps)] (Lemma 5 applicability),
    [(subgroup_size/s)^k >= 2^ell] (majority-value edge count),
    and [s*(1+eps)*(1-2eps) - 1 >= 2*delta*(2*(k-1)+1)] (the counting
    argument giving [|I_D| >= m/2]). *)

type group_solution = {
  index : int;
  parts : int array array;  (** the subgroup partition [X_{i,1..k}]. *)
  a : Partite.edge;  (** [A_i], as a tuple in subgroup order. *)
  v : Rme_util.Intset.t;  (** [V_i]. *)
  d : int;  (** special subgroup index (1-based). *)
  f_edges : Partite.edge list;  (** [F_i] from Lemma 5. *)
  u : Rme_util.Intset.t;  (** [U_i]. *)
  y : int;  (** [y_i]. *)
}

type t = {
  y0 : int;
  groups : group_solution array;
  params : params;
}

val solve :
  params ->
  groups:int array array ->
  f:(y:int -> Partite.edge -> int) ->
  y0:int ->
  t
(** [f ~y e] is [f_y] applied to the processes of [e] in tuple order.
    Raises [Invalid_argument] if [check_params] fails or a group is
    smaller than [min_group_size]. *)

val all_v : t -> Rme_util.Intset.t
(** [∪_i V_i] — the processes that will crash and run to completion. *)

val y_after : t -> int -> int
(** [y_after t i] is [y_i] ([y_0] for [i = 0]): the object value after
    groups [1..i] have stepped their [A]-sets. *)

type hidden = {
  index : int;  (** group index. *)
  z : int;  (** the hidden process, [z_i ∉ V_i ∪ D]. *)
  b : int array;  (** [B_i ⊆ V_i] (tuple order, [z] excluded). *)
  e : Partite.edge;  (** the full tuple [B_i ∪ {z_i}] in step order. *)
}

val query : t -> d:Rme_util.Intset.t -> hidden list
(** The alternative executions for a discovery set [D]. When
    [|D| <= delta * |all_v t|], at least [m/2] groups are returned. *)

val verify : t -> f:(y:int -> Partite.edge -> int) -> (unit, string) result
(** Re-check every clause of the lemma's statement on a solution. *)

val verify_query :
  t ->
  f:(y:int -> Partite.edge -> int) ->
  d:Rme_util.Intset.t ->
  hidden list ->
  (unit, string) result
