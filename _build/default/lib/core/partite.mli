(** [k]-partite hypergraphs and the set operators of Definition 3.

    Vertices are integers (process IDs in the lower-bound application). A
    hyperedge contains precisely one vertex from each part, represented as
    an [int array] of length [k] in part order. The operators

    [sigma_A(B) = { S in B : A ⊆ S }] and
    [pi_A(B)    = { S \ A : S in sigma_A(B) }]

    are provided on edge collections, specialised to what Lemmas 4 and 5
    consume: projections along a single vertex of a designated part. *)

type edge = int array

type t = {
  parts : int array array;  (** [parts.(i)]: the vertices of part [i]. *)
  edges : edge list;
}

val create : parts:int array array -> edges:edge list -> t
(** Validates that every edge has one vertex per part, drawn from that
    part. Raises [Invalid_argument] otherwise. *)

val complete : parts:int array array -> t
(** The complete [k]-partite hypergraph: all [prod |X_i|] edges, in
    lexicographic part order. Raises [Invalid_argument] when the edge
    count would exceed [2^30] (keep test parameters sane). *)

val num_parts : t -> int
val num_edges : t -> int

val vertices_of_edges : edge list -> Rme_util.Intset.t
(** The union of all vertices appearing in the given edges — the set [U]
    of Lemma 5. *)

val sigma_z : part:int -> z:int -> edge list -> edge list
(** [sigma_z ~part ~z edges]: edges whose [part] component equals [z]
    (kept whole). *)

val pi_z : part:int -> z:int -> edge list -> edge list
(** [pi_z ~part ~z edges]: the [sigma_z] edges with the [part] component
    removed — each result has length [k - 1]. Duplicates are removed (the
    operator produces a set). *)

val tail_key : part:int -> edge -> edge
(** The edge with component [part] removed; the canonical key for
    projection bookkeeping. *)

val filter_by_value : t -> f:(edge -> int) -> value:int -> edge list
(** Edges on which [f] evaluates to [value] — builds the [E_{i,y}] of the
    Process-Hiding Lemma proof. *)

val group_by_value : edge list -> f:(edge -> int) -> (int, edge list) Hashtbl.t
(** Partition edges by [f]-value; used to pick the majority value [y_i]. *)
