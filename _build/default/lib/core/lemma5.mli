(** Lemma 5 — iterated application of Lemma 4, constructively.

    Given [H = (X_1, ..., X_k, E)] with [|X_i| <= s(1+eps)] for all [i]
    and [|E| >= s^k], produces a set [F] of hyperedges and an index [d]
    such that [U = ∪_{e in F} e] satisfies

    (a) [|U ∩ X_i| <= 2] for all [i ≠ d], and
    (b) [|U ∩ X_d| >= s(1+eps)(1-2eps)].

    The Process-Hiding Lemma draws its [A_i] and [V_i] from this [F]: the
    many [X_d]-vertices of [U] are the candidate hidden processes, while
    every other part contributes at most two processes to the crash set. *)

type outcome = {
  d : int;  (** 1-based index of the special part. *)
  hyperedges : Partite.edge list;  (** [F], full arity [k], non-empty. *)
  u : Rme_util.Intset.t;  (** [∪_{e in F} e]. *)
  zs : int list array;  (** [Z_1 .. Z_d] of the recursive construction. *)
}

val solve : s:float -> eps:float -> parts:int array array -> edges:Partite.edge list -> outcome
(** Raises [Invalid_argument] when preconditions fail. *)

val verify :
  s:float ->
  eps:float ->
  parts:int array array ->
  edges:Partite.edge list ->
  outcome ->
  (unit, string) result
