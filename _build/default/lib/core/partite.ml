module Intset = Rme_util.Intset

type edge = int array

type t = { parts : int array array; edges : edge list }

let validate_edge parts e =
  if Array.length e <> Array.length parts then
    invalid_arg "Partite: edge arity differs from the number of parts";
  Array.iteri
    (fun i v ->
      if not (Array.exists (fun x -> x = v) parts.(i)) then
        invalid_arg
          (Printf.sprintf "Partite: vertex %d is not in part %d" v i))
    e

let create ~parts ~edges =
  List.iter (validate_edge parts) edges;
  { parts; edges }

let complete ~parts =
  let k = Array.length parts in
  let total =
    Array.fold_left (fun acc p -> acc * Array.length p) 1 parts
  in
  if total > 1 lsl 30 then
    invalid_arg "Partite.complete: too many edges (over 2^30)";
  let acc = ref [] in
  let e = Array.make k 0 in
  let rec fill i =
    if i = k then acc := Array.copy e :: !acc
    else
      Array.iter
        (fun v ->
          e.(i) <- v;
          fill (i + 1))
        parts.(i)
  in
  if k = 0 then { parts; edges = [] }
  else begin
    fill 0;
    { parts; edges = List.rev !acc }
  end

let num_parts t = Array.length t.parts

let num_edges t = List.length t.edges

let vertices_of_edges edges =
  List.fold_left
    (fun acc e -> Array.fold_left (fun acc v -> Intset.add v acc) acc e)
    Intset.empty edges

let sigma_z ~part ~z edges = List.filter (fun e -> e.(part) = z) edges

let tail_key ~part e =
  let k = Array.length e in
  Array.init (k - 1) (fun i -> if i < part then e.(i) else e.(i + 1))

let pi_z ~part ~z edges =
  let seen = Hashtbl.create 64 in
  List.filter_map
    (fun e ->
      if e.(part) <> z then None
      else begin
        let key = tail_key ~part e in
        if Hashtbl.mem seen key then None
        else begin
          Hashtbl.add seen key ();
          Some key
        end
      end)
    edges

let filter_by_value t ~f ~value = List.filter (fun e -> f e = value) t.edges

let group_by_value edges ~f =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let y = f e in
      let prev = Option.value ~default:[] (Hashtbl.find_opt tbl y) in
      Hashtbl.replace tbl y (e :: prev))
    edges;
  tbl
