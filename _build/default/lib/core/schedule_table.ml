module Intset = Rme_util.Intset
module Memory = Rme_memory.Memory
module Rmr = Rme_memory.Rmr
module Cache = Rme_memory.Cache

type violation = {
  round : int;
  invariant : string;
  column : Intset.t option;
  detail : string;
}

type report = {
  rounds_checked : int;
  columns_checked : int;
  assertions : int;
  violations : violation list;
}

let ok r = r.violations = []

(* Enumerate all subsets of a small set, as a list. *)
let subsets set =
  let elems = Intset.to_sorted_list set in
  List.fold_left
    (fun acc e -> acc @ List.map (fun s -> Intset.add e s) acc)
    [ Intset.empty ] elems

type column_obs = {
  col : Intset.t;
  values : int array;
  checked : int;
}

let check ?(max_actives = 10) (sched : Adversary.committed_schedule) =
  let ctx = sched.Adversary.ctx in
  let violations = ref [] in
  let violate ~round ~invariant ?column detail =
    violations := { round; invariant; column; detail } :: !violations
  in
  let rounds_checked = ref 0 in
  let columns_checked = ref 0 in
  let assertions = ref 0 in
  List.iteri
    (fun idx meta ->
      let round = idx + 1 in
      let active = meta.Adversary.meta_active in
      let finished = meta.Adversary.meta_finished in
      let removed = meta.Adversary.meta_removed in
      if Intset.cardinal active <= max_actives then begin
        incr rounds_checked;
        let prefix = Array.sub sched.Adversary.directives 0 meta.Adversary.boundary in
        ignore removed;
        (* Maximal column first. *)
        let s_max = Intset.union active finished in
        let run_column col =
          let i8_events = ref [] in
          let play =
            Schedule.replay ctx
              ~keep:(fun p -> Intset.mem p col)
              ~on_event:(fun ~pid info -> i8_events := (pid, info.Machine.loc) :: !i8_events)
              prefix
          in
          (play, !i8_events)
        in
        match run_column s_max with
        | exception Schedule.Diverged d ->
            violate ~round ~invariant:"I3" ~column:s_max
              (Printf.sprintf "maximal replay diverged: %s" d)
        | play_max, _ ->
            let mem_max = Machine.memory play_max.Schedule.m in
            let max_values = Memory.snapshot mem_max in
            let num_locs = Array.length max_values in
            let last_acc =
              Array.init num_locs (fun l -> Memory.last_accessor mem_max l)
            in
            let max_phase p = Machine.phase play_max.Schedule.m ~pid:p in
            (* Compare poised operations by location and operation name:
               arbitrary RMW operations carry closures, which are not
               structurally comparable. *)
            let peek_key m p =
              Option.map
                (fun (loc, op) -> (loc, Rme_memory.Op.name op))
                (Machine.peek m ~pid:p)
            in
            let max_peek p = peek_key play_max.Schedule.m p in
            let max_rmrs p = Machine.total_rmrs play_max.Schedule.m ~pid:p in
            let max_cache p =
              match Rmr.cache (Machine.rmr play_max.Schedule.m) with
              | Some c -> Some (Cache.valid_set c ~pid:p)
              | None -> None
            in
            let observations = ref [] in
            List.iter
              (fun t ->
                let col = Intset.union finished t in
                incr columns_checked;
                match run_column col with
                | exception Schedule.Diverged d ->
                    violate ~round ~invariant:"I3" ~column:col
                      (Printf.sprintf "replay diverged: %s" d)
                | play, i8_events ->
                    assertions := !assertions + play.Schedule.checked;
                    let m = play.Schedule.m in
                    (* I8 (DSM): owner-exclusive access to active-owned
                       objects, in every column. *)
                    if ctx.Schedule.model = Rmr.Dsm then
                      List.iter
                        (fun (pid, loc) ->
                          match Memory.owner (Machine.memory m) loc with
                          | Some o when Intset.mem o active && o <> pid ->
                              violate ~round ~invariant:"I8" ~column:col
                                (Printf.sprintf "p%d accessed R%d owned by active p%d"
                                   pid loc o)
                          | Some _ | None -> ())
                        i8_events;
                    (* I4 / I6 / I7 / I10 / I3 / I9, per kept process. *)
                    Intset.iter
                      (fun p ->
                        let completed = Machine.completed m ~pid:p in
                        let in_f = Intset.mem p finished in
                        if completed <> in_f then
                          violate ~round ~invariant:"I4" ~column:col
                            (Printf.sprintf "p%d completed=%b but finished=%b" p
                               completed in_f);
                        let crashes = Machine.crashes m ~pid:p in
                        if crashes > 1 then
                          violate ~round ~invariant:"I6" ~column:col
                            (Printf.sprintf "p%d crashed %d times" p crashes);
                        if (not in_f) && crashes > 0 then
                          violate ~round ~invariant:"I6" ~column:col
                            (Printf.sprintf "unfinished p%d crashed" p);
                        if (not in_f) && Machine.cs_entries m ~pid:p > 0 then
                          violate ~round ~invariant:"I7" ~column:col
                            (Printf.sprintf "unfinished p%d entered the CS" p);
                        if Intset.mem p t then begin
                          if Machine.total_rmrs m ~pid:p < round then
                            violate ~round ~invariant:"I10" ~column:col
                              (Printf.sprintf "active p%d has %d RMRs in round %d"
                                 p
                                 (Machine.total_rmrs m ~pid:p)
                                 round);
                          if Machine.phase m ~pid:p <> max_phase p then
                            violate ~round ~invariant:"I3" ~column:col
                              (Printf.sprintf "p%d phase differs from maximal" p);
                          if peek_key m p <> max_peek p then
                            violate ~round ~invariant:"I3" ~column:col
                              (Printf.sprintf "p%d poised op differs from maximal" p);
                          if Machine.total_rmrs m ~pid:p <> max_rmrs p then
                            violate ~round ~invariant:"I9" ~column:col
                              (Printf.sprintf "p%d RMR count differs from maximal" p);
                          match (Rmr.cache (Machine.rmr m), max_cache p) with
                          | Some c, Some vmax ->
                              if not (Intset.equal (Cache.valid_set c ~pid:p) vmax)
                              then
                                violate ~round ~invariant:"I9" ~column:col
                                  (Printf.sprintf "p%d cache set differs from maximal"
                                     p)
                          | None, None -> ()
                          | Some _, None | None, Some _ -> ()
                        end)
                      col;
                    observations :=
                      {
                        col;
                        values = Memory.snapshot (Machine.memory m);
                        checked = play.Schedule.checked;
                      }
                      :: !observations)
              (subsets active);
            (* I5: per object, column values must take at most two forms:
               the maximal value when the column contains the object's
               last (maximal-schedule) accessor, a single y_R otherwise. *)
            let obs = !observations in
            for l = 0 to num_locs - 1 do
              let with_acc, without_acc =
                List.partition
                  (fun o ->
                    match last_acc.(l) with
                    | Some a -> Intset.mem a o.col
                    | None -> false)
                  obs
              in
              List.iter
                (fun o ->
                  if o.values.(l) <> max_values.(l) then
                    violate ~round ~invariant:"I5" ~column:o.col
                      (Printf.sprintf
                         "R%d = %d in a column containing its last accessor, \
                          maximal has %d"
                         l o.values.(l) max_values.(l)))
                with_acc;
              match without_acc with
              | [] -> ()
              | first :: rest ->
                  let y_r = first.values.(l) in
                  List.iter
                    (fun o ->
                      if o.values.(l) <> y_r then
                        violate ~round ~invariant:"I5" ~column:o.col
                          (Printf.sprintf "R%d = %d, other accessor-free columns have %d"
                             l o.values.(l) y_r))
                    rest
            done
      end)
    sched.Adversary.metas;
  {
    rounds_checked = !rounds_checked;
    columns_checked = !columns_checked;
    assertions = !assertions;
    violations = List.rev !violations;
  }

let pp_report ppf r =
  Format.fprintf ppf "rounds=%d columns=%d assertions=%d violations=%d"
    r.rounds_checked r.columns_checked r.assertions (List.length r.violations);
  List.iter
    (fun v ->
      Format.fprintf ppf "@.  [%s] round %d%s: %s" v.invariant v.round
        (match v.column with
        | Some c -> Format.asprintf " col %a" Intset.pp c
        | None -> "")
        v.detail)
    r.violations
