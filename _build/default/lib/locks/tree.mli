(** Binary-tournament-tree index arithmetic shared by the tree-based
    locks.

    Internal nodes are heap-indexed: the root is node 1, and node [i] has
    children [2i] and [2i+1]. The [n] processes sit at the leaves of a
    perfect binary tree of [2^ceil(log2 n)] leaves; process [p]'s leaf is
    [pow2 + p]. A process's path climbs from its leaf's parent up to the
    root, recording at each internal node which side (0 = left, 1 = right)
    it arrived from. *)

val pow2_ceil : int -> int
(** Smallest power of two [>= max 1 n]. *)

val levels : n:int -> int
(** Number of internal nodes on each leaf-to-root path ([0] when [n <= 1]:
    a single process needs no arbitration). *)

val num_nodes : n:int -> int
(** Internal node indices are [1 .. num_nodes] (i.e. [pow2_ceil n - 1]). *)

val path : n:int -> pid:int -> (int * int) array
(** Bottom-up path of process [pid]: [(node, side)] pairs from the lowest
    internal node to the root. Length [levels ~n]. *)
