(** Recoverable binary tournament lock — the [O(log n)]-RMR RME algorithm
    row of experiment E1, in the spirit of Jayanti and Joshi [16].

    Each internal tree node is a word holding 0 (free), 1 (held via the
    left child) or 2 (held via the right child), acquired by CAS. The key
    recoverability property is that ownership is {e re-derivable} from
    shared memory alone: a process [p] holds the nodes of a contiguous
    lower segment of its leaf-to-root path, and

    [held(0) = (node_0 = side_0 + 1)] — at leaf level the side slot
    denotes a unique process — and
    [held(l) = held(l-1) && (node_l = side_l + 1)] — a same-side holder of
    a higher node must have come through the child node that [p] holds,
    hence is [p] itself.

    Entry and exit both recompute this held segment from scratch, which
    makes them idempotent: recovery merely inspects the per-process status
    word and re-runs the appropriate protocol. Node words need only 2
    bits, so the algorithm works at every word size — it trades more RMRs
    (Θ(log n)) for total word-size independence, one endpoint of the
    paper's tradeoff. *)

val factory : Rme_sim.Lock_intf.factory
