(** The catalogue of lock algorithms, for the CLI, benches and tests. *)

val all : Rme_sim.Lock_intf.factory list
(** Every lock in the library, baselines first. *)

val recoverable : Rme_sim.Lock_intf.factory list
(** Locks tolerating {e individual} process crashes — the model of
    Theorem 1. *)

val system_wide : Rme_sim.Lock_intf.factory list
(** Locks for the {e system-wide} crash model (all processes crash
    simultaneously), where constant RMR complexity is achievable and the
    paper's lower bound does not apply. Only subject these to the
    harness's [System_crash_*] policies. *)

val conventional : Rme_sim.Lock_intf.factory list

val find : string -> Rme_sim.Lock_intf.factory option
(** Look a lock up by its [name]. *)

val names : unit -> string list
