(** Test-and-test-and-set spin lock.

    The simplest conventional baseline: a single bit, acquired with
    fetch-and-store. Spins with reads (so under CC the wait is cached and
    the repeated test incurs no RMRs), but every handoff invalidates all
    waiters, so the RMR cost per passage grows with contention — the
    classic motivation for queue locks. Not recoverable: a crash while
    holding the bit deadlocks the system. *)

val factory : Rme_sim.Lock_intf.factory
