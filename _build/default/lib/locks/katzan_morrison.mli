(** Katzan–Morrison-style recoverable lock from [w]-bit fetch-and-add —
    the matching upper bound of Theorem 1.

    The algorithm of [19] achieves [O(log_w n)] RMRs per passage by
    arbitrating through a [b]-ary tournament tree with [b = Θ(w)]: at each
    node, up to [b] contenders announce themselves by atomically setting
    their private bit of a [w]-bit mask with [FAA(2^slot)], so a single
    RMR publishes a contender {e and} reveals the whole competition — the
    very capability the paper's Process-Hiding Lemma shows cannot be
    hidden once words are wide. With arity [w] the tree has [ceil(log_w n)]
    levels and each level costs [O(1)] RMRs (plus [ceil(log2 n / w)] for
    spelling out a process ID across words when [w < log2 n]; the paper
    notes that all known RME algorithms implicitly assume [w = Ω(log n)]).

    This implementation is the recoverable [O(log_w n)] core of [19]
    (abortability and adaptivity are out of scope; see DESIGN.md). Every
    piece of cross-step state is either re-derivable from shared memory or
    explicitly persisted before the action it describes:

    - {b mask} (per node): bit [s] is set exactly while slot [s] is
      occupied. Strict alternation holds because slot occupancy is
      serialized by ownership of the child node and release is top-down,
      so the guarded [FAA(±2^s)] never carries into foreign bits.
    - {b owner} (per node): [0] when free, [s+1] when the occupant of slot
      [s] owns the node. Single-word, hence atomically updatable; the
      ground truth a woken waiter checks, which makes stale doorbells from
      crashed releasers harmless.
    - {b succ} (per process and level): the committed successor choice of
      an in-progress release, persisted {e before} the ownership transfer
      so that a crashed releaser re-executes the same handoff.
    - {b xdone} (per process and level): release-completion marker, reset
      during the next registration.

    Recovery inspects a per-process status word and re-runs the
    (idempotent) entry or exit protocol; ownership of each tree node is
    re-derived bottom-up exactly as in {!Rtournament}. *)

val factory : Rme_sim.Lock_intf.factory

val factory_with_arity : int -> Rme_sim.Lock_intf.factory
(** [factory_with_arity b] forces tree arity [b >= 2] (still requires
    [b <= w]); the default picks [b = min w n]. Used by the word-size
    sweep of experiment E2 and the ablation benches. *)
