(** The sub-logarithmic RME point: [O(log n / log log n)] RMRs per
    passage — the optimal complexity for read/FAS/FAI/CAS-style
    primitives (Golab–Hendler [10] for CC, Jayanti–Jayanti–Joshi [15]
    for DSM; optimality by Chan–Woelfel [5], reproven as a special case
    of this paper's Theorem 1).

    Realised as the recoverable arbitration tree of {!Katzan_morrison}
    with arity fixed to [Θ(log n / log log n)] instead of [Θ(w)]: levels
    [= log_b n = Θ(log n / log log n)], each O(1) RMRs. This is exactly
    the structural point the paper makes about these algorithms — they
    implicitly assume [w = Ω(log n)] (the node state needs
    [b ≈ log n / log log n ≤ w] bits) but do not exploit any width
    beyond that, which is why Katzan–Morrison beats them when words are
    wide and why Theorem 1 says nothing can beat them when words are
    poly-logarithmic. *)

val arity_for : n:int -> int
(** [max 2 (ceil (log n / log log n))]. *)

val factory : Rme_sim.Lock_intf.factory
