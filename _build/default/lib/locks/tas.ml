module Memory = Rme_memory.Memory
module Lock_intf = Rme_sim.Lock_intf
module Prog = Rme_sim.Prog
open Prog.Infix

type t = { bit : Memory.loc }

let make memory ~n:_ =
  let bit = Memory.alloc memory ~name:"tas.bit" ~init:0 in
  let t = { bit } in
  let rec acquire () =
    let* _ = Prog.await t.bit (fun v -> v = 0) in
    let* old = Prog.fas t.bit 1 in
    if old = 0 then Prog.return () else acquire ()
  in
  {
    Lock_intf.entry = (fun ~pid:_ -> acquire ());
    exit = (fun ~pid:_ -> Prog.write t.bit 0);
    recover = (fun ~pid:_ -> Prog.return Lock_intf.Resume_entry);
    system_epoch = None;
  }

let factory =
  { Lock_intf.name = "tas"; recoverable = false; min_width = (fun ~n:_ -> 1); make }
