(** Recoverable stamp lock — built on an {e arbitrary} read-modify-write
    operation rather than any named primitive.

    Semantically a recoverable acquire-by-claim lock (like {!Rcas}), but
    the claim and release are opaque [Op.Rmw] transition functions:

    - [claim]: [v -> if v = 0 then pid + 1 else v]
    - [release]: [v -> if v = pid + 1 then 0 else v]

    Its purpose in the library is the paper's headline: Theorem 1 is the
    first RMR lower bound that restricts {e no} operation type, only the
    word size. The simulator's accounting, the visibility tracking and —
    most importantly — the lower-bound adversary's Process-Hiding search
    must treat these operations as black-box functions on [w]-bit values
    (no FAS/CAS special-casing applies), and the bound must still be
    forced. The adversary test-suite runs this lock through the full
    construction. *)

val factory : Rme_sim.Lock_intf.factory
