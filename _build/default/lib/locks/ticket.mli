(** Ticket lock (fetch-and-increment).

    FIFO and fair: a process draws a ticket with FAI and waits for the
    "now serving" counter to reach it. Constant RMRs per passage under CC
    (the wait spins on a cached copy and is invalidated once per handoff
    on average, though a passage can see up to [n] invalidations in the
    worst case). Not recoverable: a ticket drawn and then forgotten in a
    crash stalls the queue forever — the textbook example of why RME needs
    different techniques.

    Counters wrap modulo [2^w]; with at most [n] outstanding tickets the
    lock is sound whenever [2^w >= n + 1]. *)

val factory : Rme_sim.Lock_intf.factory
