(** Tournament tree of two-process Peterson locks (read/write only).

    The classic way to get [O(log n)]-RMR mutual exclusion from atomic
    reads and writes in the CC model (in the lineage of Yang & Anderson
    [23]): each internal tree node is a two-process Peterson lock; a
    process wins its leaf-to-root path to enter, and releases top-down on
    exit. Uses only 1-bit locations, so it works at any word size.

    Not recoverable: a crash while holding node locks wedges the subtree.
    Serves as the read/write [O(log n)] baseline of experiment E1. *)

val factory : Rme_sim.Lock_intf.factory
