let all =
  [
    Tas.factory;
    Ticket.factory;
    Mcs.factory;
    Clh.factory;
    Peterson_tree.factory;
    Rcas.factory;
    Rstamp.factory;
    Rtournament.factory;
    Katzan_morrison.factory;
    Sublog.factory;
    Epoch_mcs.factory;
  ]

(* Locks whose recover protocol tolerates *individual* process crashes —
   the model of the paper's Theorem 1. *)
let recoverable =
  [
    Rcas.factory;
    Rstamp.factory;
    Rtournament.factory;
    Katzan_morrison.factory;
    Sublog.factory;
  ]

(* Locks for the system-wide crash model (all processes crash together),
   where the paper's lower bound provably does not apply. *)
let system_wide = [ Epoch_mcs.factory ]

let conventional =
  List.filter (fun f -> not f.Rme_sim.Lock_intf.recoverable) all

let find name =
  List.find_opt (fun f -> f.Rme_sim.Lock_intf.name = name) all

let names () = List.map (fun f -> f.Rme_sim.Lock_intf.name) all
