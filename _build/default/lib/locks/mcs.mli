(** MCS queue lock (Mellor-Crummey & Scott [21]).

    The classic [O(1)]-RMR conventional lock in both CC and DSM: each
    waiter spins on a flag in its own queue node (allocated in its own
    memory segment, so the spin is local under DSM too) and the releaser
    hands the lock directly to its successor. Built from fetch-and-store
    on the queue tail plus one compare-and-swap on release.

    This is the algorithm whose [O(1)] bound the paper contrasts with the
    recoverable setting: a crash between the tail swap and the
    predecessor-link write loses the queue structure, so MCS is not
    recoverable. *)

val factory : Rme_sim.Lock_intf.factory
