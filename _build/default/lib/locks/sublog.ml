module Lock_intf = Rme_sim.Lock_intf

let arity_for ~n =
  if n <= 2 then 2
  else begin
    let l = log (float_of_int n) /. log 2.0 in
    let ll = Float.max 1.0 (log l /. log 2.0) in
    max 2 (int_of_float (Float.ceil (l /. ll)))
  end

let factory =
  {
    Lock_intf.name = "sublog-tournament";
    recoverable = true;
    min_width = (fun ~n -> max 2 (arity_for ~n));
    make =
      (fun memory ~n ->
        (Katzan_morrison.factory_with_arity (arity_for ~n)).Lock_intf.make memory
          ~n);
  }
