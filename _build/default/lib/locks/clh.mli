(** CLH queue lock (Craig [6]; Magnusson, Landin & Hagersten [20]).

    The other classic [O(1)]-RMR queue lock the paper cites alongside
    MCS: waiters form an implicit queue by fetch-and-storing a pointer to
    their own "request" cell into the tail and spinning on their
    predecessor's cell. Each passage recycles the predecessor's cell (the
    standard CLH node-rotation), so the lock needs [2n + 1] cells for [n]
    processes.

    Under CC the spin is cached and each passage costs O(1) RMRs. Under
    DSM the spin target is the {e predecessor's} cell — not the waiting
    process's own segment — which is precisely why the literature pairs
    CLH with CC and MCS with DSM; the E1/E6 tables show the difference.

    Not recoverable: a crash loses the local pointers to the implicit
    queue. *)

val factory : Rme_sim.Lock_intf.factory
