(** Epoch-based recoverable MCS lock for the {e system-wide} crash model
    — Golab–Hendler-style [11], with their assumed system support.

    The paper's conclusion points out that its lower bound "inherently
    relies on individual process crashes" and cannot extend to the
    system-wide failure model, where all processes crash simultaneously:
    there, constant-RMR RME is possible. This lock demonstrates that
    separation inside the simulator (experiment E8).

    Model and assumption: crashes only ever hit {e everyone at once}
    (use the harness's [System_crash_script]/[System_crash_prob]
    policies), and the system increments an epoch counter with each
    system crash — exactly the support [11] assumes; the harness
    provides it through {!Rme_sim.Lock_intf.instance}'s [system_epoch]
    field.

    Structure: a plain MCS queue for O(1)-RMR handoff, plus
    - an [owner] word — the single source of truth for who may be in the
      CS (a queue winner additionally waits for [owner = 0] before
      claiming it, which bridges across crashes);
    - per-epoch queue reconstruction: the first process to act after a
      crash (a recoverer, or a fresh entrant arriving from the remainder)
      wins a CAS election and resets the queue, everyone else gates on
      [reset_done = epoch]. Because all processes crash {e together},
      there are no stale delayed writes from the old epoch — the very
      property the individual-crash model lacks, and the reason this
      construction cannot beat Theorem 1 there.

    Per passage: O(1) RMRs in the CC model (MCS handoff + a constant
    number of gate/owner accesses), regardless of how many system
    crashes occur. *)

val factory : Rme_sim.Lock_intf.factory
