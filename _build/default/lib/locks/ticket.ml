module Memory = Rme_memory.Memory
module Bitword = Rme_util.Bitword
module Lock_intf = Rme_sim.Lock_intf
module Prog = Rme_sim.Prog
open Prog.Infix

type t = {
  next : Memory.loc;
  serving : Memory.loc;
  width : int;
  my_ticket : int array; (* per-process register: ticket of current passage *)
}

let make memory ~n =
  let t =
    {
      next = Memory.alloc memory ~name:"ticket.next" ~init:0;
      serving = Memory.alloc memory ~name:"ticket.serving" ~init:0;
      width = Memory.width memory;
      my_ticket = Array.make n 0;
    }
  in
  let entry ~pid =
    let* ticket = Prog.fai t.next in
    t.my_ticket.(pid) <- ticket;
    let* _ = Prog.await t.serving (fun v -> v = ticket) in
    Prog.return ()
  in
  let exit ~pid =
    Prog.write t.serving (Bitword.add ~width:t.width t.my_ticket.(pid) 1)
  in
  {
    Lock_intf.entry;
    exit;
    recover = (fun ~pid:_ -> Prog.return Lock_intf.Resume_entry);
    system_epoch = None;
  }

let factory =
  {
    Lock_intf.name = "ticket";
    recoverable = false;
    min_width = (fun ~n -> Bitword.bits_needed (n + 1));
    make;
  }
