(** Recoverable CAS lock — the [O(n)]-flavoured RME baseline, in the
    spirit of Golab and Ramaraju's first recoverable mutex [12].

    The lock word holds the owner's ID (plus one, 0 = free) and is
    acquired by CAS, so ownership is always re-derivable from shared
    memory after a crash. A per-process persistent status word sequences
    the release so that recovery can always tell apart "still trying",
    "holding", "mid-release" and "done" — the crash-consistency pattern
    that every recoverable lock in this library follows:

    status 0 = no passage in progress;
    status 1 = super-passage in progress (set before the first acquire
    attempt);
    status 2 = critical section complete, release pending (set before the
    lock word is cleared).

    RMR cost per passage is unbounded in theory (every handoff invalidates
    all spinning waiters under CC, and spins are remote under DSM), which
    is exactly why it plays the "first RME algorithm, O(n)" row of
    experiment E1. *)

val factory : Rme_sim.Lock_intf.factory
