lib/locks/tas.ml: Rme_memory Rme_sim
