lib/locks/mcs.mli: Rme_sim
