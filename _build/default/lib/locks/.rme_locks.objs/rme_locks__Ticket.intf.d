lib/locks/ticket.mli: Rme_sim
