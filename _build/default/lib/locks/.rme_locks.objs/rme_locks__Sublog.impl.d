lib/locks/sublog.ml: Float Katzan_morrison Rme_sim
