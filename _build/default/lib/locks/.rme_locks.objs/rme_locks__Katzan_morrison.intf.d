lib/locks/katzan_morrison.mli: Rme_sim
