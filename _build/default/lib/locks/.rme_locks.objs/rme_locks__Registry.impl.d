lib/locks/registry.ml: Clh Epoch_mcs Katzan_morrison List Mcs Peterson_tree Rcas Rme_sim Rstamp Rtournament Sublog Tas Ticket
