lib/locks/sublog.mli: Rme_sim
