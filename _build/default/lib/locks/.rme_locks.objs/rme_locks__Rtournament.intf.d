lib/locks/rtournament.mli: Rme_sim
