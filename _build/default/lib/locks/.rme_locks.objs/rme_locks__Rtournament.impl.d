lib/locks/rtournament.ml: Array Printf Rme_memory Rme_sim Tree
