lib/locks/katzan_morrison.ml: Array Printf Rme_memory Rme_sim Rme_util
