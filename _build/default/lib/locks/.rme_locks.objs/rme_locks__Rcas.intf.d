lib/locks/rcas.mli: Rme_sim
