lib/locks/rstamp.ml: Array Printf Rme_memory Rme_sim Rme_util
