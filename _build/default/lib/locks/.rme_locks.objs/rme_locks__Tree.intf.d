lib/locks/tree.mli:
