lib/locks/peterson_tree.mli: Rme_sim
