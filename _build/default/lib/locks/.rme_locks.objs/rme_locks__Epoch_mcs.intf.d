lib/locks/epoch_mcs.mli: Rme_sim
