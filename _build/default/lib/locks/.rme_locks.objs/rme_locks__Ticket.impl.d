lib/locks/ticket.ml: Array Rme_memory Rme_sim Rme_util
