lib/locks/registry.mli: Rme_sim
