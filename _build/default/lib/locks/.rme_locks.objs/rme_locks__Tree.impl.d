lib/locks/tree.ml: Array List Printf
