lib/locks/epoch_mcs.ml: Array Printf Rme_memory Rme_sim Rme_util
