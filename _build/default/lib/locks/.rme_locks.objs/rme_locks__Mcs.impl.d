lib/locks/mcs.ml: Array Printf Rme_memory Rme_sim Rme_util
