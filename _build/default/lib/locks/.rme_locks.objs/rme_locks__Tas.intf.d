lib/locks/tas.mli: Rme_sim
