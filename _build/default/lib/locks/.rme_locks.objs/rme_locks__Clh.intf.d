lib/locks/clh.mli: Rme_sim
