lib/locks/rstamp.mli: Rme_sim
