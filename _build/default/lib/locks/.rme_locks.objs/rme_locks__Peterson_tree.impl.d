lib/locks/peterson_tree.ml: Array Printf Rme_memory Rme_sim Tree
