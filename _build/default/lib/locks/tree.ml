let pow2_ceil n =
  let n = max 1 n in
  let rec loop p = if p >= n then p else loop (p * 2) in
  loop 1

let levels ~n =
  let p = pow2_ceil n in
  let rec loop acc p = if p = 1 then acc else loop (acc + 1) (p / 2) in
  loop 0 p

let num_nodes ~n = pow2_ceil n - 1

let path ~n ~pid =
  if pid < 0 || pid >= max 1 n then
    invalid_arg (Printf.sprintf "Tree.path: pid %d out of range for n = %d" pid n);
  let leaf = pow2_ceil n + pid in
  let rec climb node acc =
    if node <= 1 then acc else climb (node / 2) ((node / 2, node land 1) :: acc)
  in
  (* [climb] accumulates top-down; the path is wanted bottom-up. *)
  Array.of_list (List.rev (climb leaf []))
