(* The paper's headline tradeoff, measured.

     dune exec examples/word_size_tradeoff.exe

   Theorem 1 says any RME algorithm on w-bit words pays
   Omega(min(log_w n, log n / log log n)) RMRs per passage, and
   Katzan-Morrison's w-bit fetch-and-add algorithm matches it with
   O(log_w n). This example sweeps the word size at fixed n and prints
   measured passage RMRs next to the bound's two terms — watch the cost
   fall as words widen, exactly along ceil(log_w n). *)

module H = Rme_sim.Harness
module Rmr = Rme_memory.Rmr
module Bounds = Rme_core.Bounds
module Table = Rme_util.Table

let n = 256

let () =
  Printf.printf
    "Katzan-Morrison lock, n = %d processes, DSM model, crash-free.\n\n" n;
  let t =
    Table.create
      ~title:(Printf.sprintf "word size vs RMRs per passage (n = %d)" n)
      ~columns:
        [ "w (bits)"; "measured max"; "measured mean"; "ceil(log_w n)";
          "log n/log log n"; "Theorem 1 bound" ]
  in
  List.iter
    (fun w ->
      let config =
        {
          (H.default_config ~n ~width:w Rmr.Dsm) with
          superpassages = 1;
          policy = H.Random_policy 5;
        }
      in
      let r = H.run config Rme_locks.Katzan_morrison.factory in
      assert r.H.ok;
      Table.add_row t
        [
          string_of_int w;
          string_of_int r.H.max_passage_rmr;
          Printf.sprintf "%.1f" r.H.mean_passage_rmr;
          Printf.sprintf "%.0f" (Bounds.km_upper ~n ~w);
          Printf.sprintf "%.2f" (Bounds.log_over_loglog ~n);
          Printf.sprintf "%.2f" (Bounds.theorem1_lower ~n ~w);
        ])
    [ 2; 3; 4; 6; 8; 12; 16; 24; 32; 48; 62 ];
  Table.print t;
  Printf.printf
    "The crossover w ~ log2 n = %d: below it the log n/log log n term of\n\
     Theorem 1 binds (and indeed no algorithm does better there); above it\n\
     the word-size term log_w n binds and Katzan-Morrison tracks it.\n"
    (Bounds.crossover_width ~n)
