examples/nvram_log.ml: Array List Option Printf Rme_locks Rme_memory Rme_sim
