examples/quickstart.mli:
