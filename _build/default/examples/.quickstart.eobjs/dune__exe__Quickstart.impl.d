examples/quickstart.ml: Array Printf Rme_locks Rme_memory Rme_sim
