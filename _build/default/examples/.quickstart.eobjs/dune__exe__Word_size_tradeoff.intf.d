examples/word_size_tradeoff.mli:
