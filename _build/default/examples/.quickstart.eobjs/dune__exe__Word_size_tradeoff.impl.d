examples/word_size_tradeoff.ml: List Printf Rme_core Rme_locks Rme_memory Rme_sim Rme_util
