examples/nvram_log.mli:
