examples/system_crash.mli:
