examples/adversary_demo.ml: Format List Printf Rme_core Rme_locks Rme_memory Rme_sim Rme_util
