examples/system_crash.ml: Array List Printf Rme_core Rme_locks Rme_memory Rme_sim Rme_util
