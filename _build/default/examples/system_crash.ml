(* The system-wide crash model — where the paper's lower bound ends.

     dune exec examples/system_crash.exe

   Theorem 1 "inherently relies on individual process crashes": one
   process can be crashed to forget what it learned while everyone else
   keeps running. If instead the *whole system* crashes at once (and the
   system bumps an epoch counter, the support Golab-Hendler assume),
   constant-RMR recoverable mutual exclusion is possible: nothing from
   the old epoch is ever in flight, so one CAS election rebuilds the
   queue and an owner word carries the critical section across the
   crash.

   This demo hammers the epoch-MCS lock with simultaneous crashes and
   shows its per-passage RMR cost staying flat as n grows — the curve
   Theorem 1 forbids under individual crashes. *)

module H = Rme_sim.Harness
module Rmr = Rme_memory.Rmr
module Bounds = Rme_core.Bounds
module Table = Rme_util.Table

let () =
  let t =
    Table.create
      ~title:
        "epoch-MCS under system-wide crash storms (CC, w=16, 3 super-passages \
         per process)"
      ~columns:
        [ "n"; "system crashes"; "max RMRs/passage"; "mutex";
          "Theorem 1 bound (individual)" ]
  in
  List.iter
    (fun n ->
      let config =
        {
          (H.default_config ~n ~width:16 Rmr.Cc) with
          superpassages = 3;
          policy = H.Random_policy 77;
          crashes = H.System_crash_prob { prob = 0.02; seed = 5; max = 6 };
          allow_cs_crash = true;
        }
      in
      let r = H.run config Rme_locks.Epoch_mcs.factory in
      assert r.H.ok;
      let crashes =
        (* every non-remainder process crashes per event; report events *)
        Array.fold_left (fun acc (p : H.proc_stats) -> max acc p.H.crashes) 0
          r.H.procs
      in
      Table.add_row t
        [
          string_of_int n;
          string_of_int crashes;
          string_of_int r.H.max_passage_rmr;
          (if r.H.violations = [] then "ok" else "VIOLATED");
          Printf.sprintf "%.1f and growing" (Bounds.theorem1_lower ~n ~w:16);
        ])
    [ 4; 8; 16; 32; 64; 128 ];
  Table.print t;
  print_endline
    "Flat in n under crashes: the separation between the system-wide and\n\
     individual crash models that the paper's conclusion discusses.";
  exit 0
