(* Watch the lower-bound proof run.

     dune exec examples/adversary_demo.exe

   The adversary of Section 3 builds an execution round by round: every
   active process is driven to an RMR-incurring step, contention is
   classified, and processes are hidden (behind indistinguishable
   crash-and-recover executions), finished, or removed — without any
   active process ever discovering another, entering the critical
   section, or crashing. Survivors of round i have incurred i RMRs, so
   the number of rounds is a lower bound on the algorithm's RMR
   complexity. This demo narrates the construction against each
   recoverable lock and re-checks the paper's invariants (I1)-(I10) on
   the materialised schedule table. *)

module A = Rme_core.Adversary
module T = Rme_core.Schedule_table
module Rmr = Rme_memory.Rmr
module Intset = Rme_util.Intset

let narrate (factory : Rme_sim.Lock_intf.factory) =
  let n = 64 and width = 8 in
  let cfg = A.default_config ~n ~width Rmr.Cc in
  Printf.printf "=== %s (n=%d, w=%d, k=%d, CC) ===\n" factory.Rme_sim.Lock_intf.name
    n width cfg.A.k;
  let r = A.run cfg factory in
  List.iter
    (fun (ri : A.round_info) ->
      let what =
        match ri.A.kind with
        | A.Low_contention ->
            "low contention: an independent set of the conflict graph steps"
        | A.High_read -> "high contention, read case: unobservable reads step"
        | A.High_hide ->
            "high contention, hide case: steps hidden behind crash-recoveries"
      in
      Printf.printf "  round %2d: %-66s %4d -> %4d active (%d finished, %d removed)\n"
        ri.A.index what ri.A.active_before ri.A.active_after ri.A.newly_finished
        ri.A.newly_removed)
    r.A.rounds;
  Printf.printf
    "  => %d rounds completed; %d survivors each incurred >= %d RMRs without\n\
    \     entering the CS or crashing (Theorem 1 predicts >= %.2f).\n"
    r.A.rounds_completed
    (Intset.cardinal r.A.survivors)
    r.A.survivor_min_rmrs r.A.predicted_lower_bound;
  Printf.printf "  => %d step observations re-verified identical across replays.\n"
    r.A.replay_checked_steps;
  (* Materialise the sigma_round table at a small n and check I1-I10. *)
  let small = A.run { (A.default_config ~n:8 ~width:16 Rmr.Cc) with A.k = 4 } factory in
  let report = T.check ~max_actives:8 small.A.schedule in
  Printf.printf "  => invariants at n=8: %s\n\n"
    (Format.asprintf "%a" T.pp_report report);
  float_of_int r.A.rounds_completed >= r.A.predicted_lower_bound && T.ok report

let () =
  let ok = List.for_all narrate Rme_locks.Registry.recoverable in
  exit (if ok then 0 else 1)
