(* NVRAM append-only log — the motivating workload for recoverable
   mutual exclusion.

     dune exec examples/nvram_log.exe

   Processes append records to a shared persistent log. The append is a
   multi-step critical section (read the count, write the slot, bump the
   count), so without mutual exclusion appends would interleave and
   corrupt the log; without *recoverable* mutual exclusion, one crash
   between lock acquisition and release would wedge the system forever.

   Crashes are injected everywhere — inside entry, exit, recovery and
   the critical section itself. A process that crashed mid-append holds
   on to the lock (mutual exclusion keeps everyone else out), recovers,
   re-enters the critical section, and re-runs the append; the append is
   written idempotently (slot index derived from the persistent count),
   exactly like a real NVRAM program. At the end we check the log:
   every process's records present, exactly once each, no gaps. *)

module H = Rme_sim.Harness
module Memory = Rme_memory.Memory
module Rmr = Rme_memory.Rmr
module Prog = Rme_sim.Prog
open Prog.Infix

let n = 6
let appends_per_process = 4
let width = 16

(* The log lives in shared (persistent) memory: a count cell and one
   slot per record; records encode their writer (slot value = pid + 1).

   The append must be idempotent under critical-section re-entry: a
   crash can strike between ANY two steps, including after the count
   increment but before the CS completes, and recovery re-runs the whole
   body. The standard NVRAM pattern makes it exactly-once: each process
   persists a reservation — the slot it is filling, tagged with the
   attempt number — before any visible write. Re-runs of the same
   attempt reuse the reservation (rewriting the same slot and count,
   harmlessly); a crash after the commit point (the [done] increment)
   makes the next run a fresh attempt with a fresh reservation. Holding
   the lock is what makes the count-read/reserve pair safe — which is
   the point of the example. *)
let build_log_cs memory =
  let count = Memory.alloc memory ~name:"log.count" ~init:0 in
  let slots =
    Memory.alloc_array memory ~name:"log.slot" ~init:0
      ~len:(n * appends_per_process)
  in
  let done_ = Memory.alloc_array memory ~name:"log.done" ~init:0 ~len:n in
  let reserved = Memory.alloc_array memory ~name:"log.reserved" ~init:0 ~len:n in
  let rsv_for = Memory.alloc_array memory ~name:"log.rsv_for" ~init:0 ~len:n in
  let append ~pid ~attempt =
    let req = attempt + 1 in
    let* k = Prog.read done_.(pid) in
    if k >= req then Prog.return () (* this request already committed *)
    else begin
      (* Reserve a slot for request [req] unless a previous (crashed) run
         of this very request already did. [reserved] is written before
         [rsv_for], so a torn reservation is simply re-done. *)
      let* tag = Prog.read rsv_for.(pid) in
      let* slot_plus_1 =
        if tag = req then Prog.read reserved.(pid)
        else begin
          let* c = Prog.read count in
          let* () = Prog.write reserved.(pid) (c + 1) in
          let* () = Prog.write rsv_for.(pid) req in
          Prog.return (c + 1)
        end
      in
      let slot = slot_plus_1 - 1 in
      let* () = Prog.write slots.(slot) (pid + 1) in
      let* () = Prog.write count (slot + 1) in
      Prog.write done_.(pid) req
    end
  in
  (count, slots, append)

let run_with factory_name factory =
  let memory_ref = ref None in
  let cs_ref = ref None in
  (* The harness builds the memory; we attach the log to it by wrapping
     the factory. *)
  let wrapped =
    {
      factory with
      Rme_sim.Lock_intf.make =
        (fun memory ~n ->
          let instance = factory.Rme_sim.Lock_intf.make memory ~n in
          let count, slots, append = build_log_cs memory in
          memory_ref := Some (memory, count, slots);
          cs_ref := Some append;
          instance);
    }
  in
  let config =
    {
      (H.default_config ~n ~width Rmr.Cc) with
      superpassages = appends_per_process;
      policy = H.Random_policy 11;
      crashes = H.Crash_prob { prob = 0.04; seed = 23 };
      allow_cs_crash = true;
      max_crashes_per_process = 6;
      cs = Some (fun ~pid ~attempt -> (Option.get !cs_ref) ~pid ~attempt);
    }
  in
  let result = H.run config wrapped in
  let memory, count, slots = Option.get !memory_ref in
  let final_count = Memory.value memory count in
  let per_writer = Array.make n 0 in
  Array.iteri
    (fun i slot ->
      if i < final_count then begin
        let v = Memory.value memory slot in
        if v >= 1 && v <= n then per_writer.(v - 1) <- per_writer.(v - 1) + 1
      end)
    slots;
  let expected = n * appends_per_process in
  let exactly_once = Array.for_all (fun c -> c = appends_per_process) per_writer in
  Printf.printf "%-16s crashes=%2d  log length %d/%d  %s  mutex %s\n"
    factory_name result.H.total_crashes final_count expected
    (if final_count = expected && exactly_once then "every record exactly once"
     else "LOG CORRUPTED")
    (if result.H.violations = [] then "ok" else "VIOLATED");
  result.H.ok && final_count = expected && exactly_once

let () =
  print_endline "NVRAM append-only log under crash storms:";
  print_endline "";
  let ok =
    List.for_all
      (fun (f : Rme_sim.Lock_intf.factory) -> run_with f.Rme_sim.Lock_intf.name f)
      Rme_locks.Registry.recoverable
  in
  print_newline ();
  if ok then print_endline "all recoverable locks preserved log integrity"
  else print_endline "FAILURE";
  exit (if ok then 0 else 1)
