(* Quickstart: run a recoverable lock through a crashy workload and read
   off its RMR complexity.

     dune exec examples/quickstart.exe

   Eight processes on a 16-bit-word machine compete for the
   Katzan-Morrison lock, each completing three super-passages, with a 3%
   chance of crashing before any protocol step (including inside the
   critical section). The harness checks mutual exclusion and
   deadlock-freedom as it goes, and accounts remote memory references
   per passage — the measure the paper's Theorem 1 is about. *)

module H = Rme_sim.Harness
module Rmr = Rme_memory.Rmr

let () =
  let config =
    {
      (H.default_config ~n:8 ~width:16 Rmr.Cc) with
      superpassages = 3;
      policy = H.Random_policy 2023;
      crashes = H.Crash_prob { prob = 0.03; seed = 7 };
      allow_cs_crash = true;
      max_crashes_per_process = 4;
    }
  in
  let result = H.run config Rme_locks.Katzan_morrison.factory in
  Printf.printf "completed:            %b\n" result.H.completed;
  Printf.printf "mutual exclusion:     %s\n"
    (if result.H.violations = [] then "preserved" else "VIOLATED");
  Printf.printf "total crashes:        %d\n" result.H.total_crashes;
  Printf.printf "scheduler steps:      %d\n" result.H.steps;
  Printf.printf "max RMRs per passage: %d\n" result.H.max_passage_rmr;
  Printf.printf "mean RMRs per passage:%.2f\n" result.H.mean_passage_rmr;
  print_newline ();
  print_endline "per process: passages / crashes / max passage RMRs";
  Array.iter
    (fun (p : H.proc_stats) ->
      Printf.printf "  p%d: %d passages, %d crashes, max %d RMRs\n" p.H.pid
        p.H.passages p.H.crashes p.H.max_passage_rmr)
    result.H.procs;
  print_newline ();
  (* The same workload in the DSM model. *)
  let dsm = H.run { config with model = Rmr.Dsm } Rme_locks.Katzan_morrison.factory in
  Printf.printf "same workload under DSM: max %d RMRs per passage (CC had %d)\n"
    dsm.H.max_passage_rmr result.H.max_passage_rmr;
  exit (if result.H.ok && dsm.H.ok then 0 else 1)
